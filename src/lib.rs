//! # skipflow
//!
//! Facade crate for the SkipFlow reproduction (Kozak et al., CGO 2025):
//! a predicated points-to analysis that tracks primitive constant values and
//! gates value propagation with *predicate edges*, implemented over a
//! predicated value propagation graph (PVPG).
//!
//! This crate re-exports the public APIs of the workspace members:
//!
//! * [`ir`] — the SSA base language, class hierarchy, builders, and the
//!   Java-like source frontend;
//! * [`analysis`] — the PVPG, the combined primitive/type lattice, and the
//!   fixpoint engine (SkipFlow and the baseline PTA are configurations of the
//!   same engine);
//! * [`baselines`] — CHA and RTA call-graph construction for comparison;
//! * [`synth`] — the deterministic benchmark corpus used by the evaluation
//!   harness;
//! * [`server`] — analysis-as-a-service: a concurrent multi-session server
//!   with lock-free epoch-based snapshot publication (`skipflow serve`).
//!
//! See the `examples/` directory for runnable scenarios, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use skipflow_baselines as baselines;
pub use skipflow_core as analysis;
pub use skipflow_ir as ir;
pub use skipflow_server as server;
pub use skipflow_synth as synth;
