//! The `skipflow` command-line tool: compile, analyze, interpret, and
//! visualize base-language programs.
//!
//! ```text
//! skipflow compile  <src.sf> -o <out.sfbc>          # frontend → binary format
//! skipflow analyze  <src.sf|prog.sfbc> [options]    # run the analysis, print a report
//! skipflow run      <src.sf|prog.sfbc> [--seed N]   # interpret the program
//! skipflow dot      <src.sf|prog.sfbc> --method Cls.m
//! skipflow print    <src.sf|prog.sfbc>              # SSA dump
//! skipflow serve    [--addr HOST:PORT]              # analysis-as-a-service
//! ```
//!
//! `analyze` options:
//!   --config skipflow|pta|predicates-only|primitives-only   (default skipflow)
//!   --root Cls.m          (repeatable; default: every static `main`)
//!   --compare             also run the PTA baseline and print deltas
//!   --metrics             print the Table 1 counter metrics
//!   --dead-code           print per-method dead-code reports
//!   --budget-steps N      stop after N worklist steps, report the partial state
//!   --budget-ms N         stop after N milliseconds, report the partial state
//!
//! A budgeted `analyze` that runs out prints the checkpoint tagged
//! `[partial]` and exits 0 — the partial state is a sound
//! under-approximation, not a failure.

use skipflow::analysis::{
    AnalysisConfig, AnalysisSession, AnalysisSnapshot, CallGraphQuery, Completeness,
};
use skipflow::ir::{encode, frontend, printer, MethodId, Program};
use std::process::ExitCode;
use std::time::Duration;

/// CLI failure modes: *usage* errors (bad subcommand / malformed
/// invocation) get the usage text; *run* errors — bad input files, unknown
/// root/method names, [`skipflow::analysis::AnalysisError`]s from the
/// session builder — are reported as exactly one `error:` line on stderr
/// with a non-zero exit, never a `Debug`-formatted panic and never a
/// usage dump the user did not ask for.
enum CliError {
    Usage(String),
    Run(String),
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Run(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(1)
        }
    }
}

const USAGE: &str = "usage:
  skipflow compile <src> -o <out.sfbc>
  skipflow analyze <src|sfbc> [--config skipflow|pta|predicates-only|primitives-only]
                              [--root Cls.m]... [--compare] [--metrics] [--dead-code]
                              [--budget-steps N] [--budget-ms N]
  skipflow shrink  <src|sfbc> -o <out.sfbc> [--root Cls.m]...
  skipflow run      <src|sfbc> [--seed N] [--max-steps N]
  skipflow dot      <src|sfbc> --method Cls.m
  skipflow callgraph <src|sfbc> [--root Cls.m]...
  skipflow print    <src|sfbc>
  skipflow serve    [--addr HOST:PORT] [--max-sessions N] [--memory-budget-mb N]
                    [--batch-steps N] [--batch-ms N]";

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage("missing subcommand".to_string()))?;
    let run = match cmd.as_str() {
        "compile" => cmd_compile(rest),
        "analyze" => cmd_analyze(rest),
        "shrink" => cmd_shrink(rest),
        "run" => cmd_run(rest),
        "dot" => cmd_dot(rest),
        "callgraph" => cmd_callgraph(rest),
        "print" => cmd_print(rest),
        "serve" => cmd_serve(rest),
        other => return Err(CliError::Usage(format!("unknown subcommand {other:?}"))),
    };
    run.map_err(CliError::Run)
}

fn cmd_callgraph(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("callgraph: missing input path")?;
    let program = load_program(input)?;
    let roots = resolve_roots(&program, &flag_values(args, "--root"))?;
    let mut session = session_for(&program, AnalysisConfig::skipflow(), &roots)?;
    let result = solve_cli(&mut session)?;
    println!("{}", result.call_graph_dot(&program));
    Ok(())
}

/// Runs a session's solver, mapping mid-solve capacity exhaustion
/// (`AnalysisError::TooManyFlows`) into a one-line CLI error instead of
/// the panicking `solve()` path.
fn solve_cli<'s>(session: &'s mut AnalysisSession<'_>) -> Result<AnalysisSnapshot<'s>, String> {
    session.try_solve().map_err(|e| format!("analysis failed: {e}"))
}

/// Builds a session over `program` with the given configuration and roots,
/// mapping builder validation failures into CLI errors.
fn session_for<'p>(
    program: &'p Program,
    config: AnalysisConfig,
    roots: &[MethodId],
) -> Result<AnalysisSession<'p>, String> {
    AnalysisSession::builder(program)
        .config(config)
        .roots(roots.iter().copied())
        .build()
        .map_err(|e| format!("invalid analysis input: {e}"))
}

/// Loads a program from either surface syntax (by extension or content
/// sniffing) or the binary `SFBC` format.
fn load_program(path: &str) -> Result<Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if bytes.starts_with(b"SFBC") {
        return encode::decode(&bytes).map_err(|e| format!("{path}: {e}"));
    }
    let src = String::from_utf8(bytes).map_err(|_| format!("{path}: not UTF-8 source"))?;
    frontend::compile(&src).map_err(|e| format!("{path}: {e}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.as_str());
                i += 1;
            }
        }
        i += 1;
    }
    out
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Resolves `Cls.method` names; with no names given, collects every static
/// method called `main`.
fn resolve_roots(program: &Program, names: &[&str]) -> Result<Vec<MethodId>, String> {
    if names.is_empty() {
        let mains: Vec<MethodId> = program
            .iter_methods()
            .filter(|&m| {
                let md = program.method(m);
                md.is_static && md.name == "main"
            })
            .collect();
        if mains.is_empty() {
            return Err("no static `main` method found; pass --root Cls.m".to_string());
        }
        return Ok(mains);
    }
    names
        .iter()
        .map(|n| {
            let (cls, m) = n
                .split_once('.')
                .ok_or_else(|| format!("root {n:?} must be Cls.method"))?;
            let c = program
                .type_by_name(cls)
                .ok_or_else(|| format!("unknown class {cls:?}"))?;
            program
                .method_by_name(c, m)
                .ok_or_else(|| format!("unknown method {n:?}"))
        })
        .collect()
}

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("compile: missing input path")?;
    let output = flag_value(args, "-o").ok_or("compile: missing -o <out>")?;
    let program = load_program(input)?;
    let bytes = encode::encode(&program);
    std::fs::write(output, &bytes).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "wrote {output}: {} bytes, {} types, {} methods",
        bytes.len(),
        program.type_count(),
        program.method_count()
    );
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("analyze: missing input path")?;
    let program = load_program(input)?;
    let roots = resolve_roots(&program, &flag_values(args, "--root"))?;

    let mut config = match flag_value(args, "--config").unwrap_or("skipflow") {
        "skipflow" => AnalysisConfig::skipflow(),
        "pta" => AnalysisConfig::baseline_pta(),
        "predicates-only" => AnalysisConfig::predicates_only(),
        "primitives-only" => AnalysisConfig::primitives_only(),
        other => return Err(format!("unknown config {other:?}")),
    };
    if let Some(n) = flag_value(args, "--budget-steps") {
        let n = n.parse::<u64>().map_err(|_| "bad --budget-steps (expected a step count)")?;
        config = config.with_step_budget(n);
    }
    if let Some(ms) = flag_value(args, "--budget-ms") {
        let ms = ms.parse::<u64>().map_err(|_| "bad --budget-ms (expected milliseconds)")?;
        config = config.with_wall_budget(Duration::from_millis(ms));
    }

    let mut session = session_for(&program, config.clone(), &roots)?;
    // Budgets stop the solve at a checkpoint; that is a reportable partial
    // state (exit 0), not a failure.
    let outcome = session
        .solve_interruptible(None)
        .map_err(|e| format!("analysis failed: {e}"))?;
    if let Some(reason) = outcome.interrupt_reason() {
        println!("analysis interrupted: {reason}; reporting the partial state");
    }
    let result = outcome.snapshot();
    print_analysis(&program, &result, args);

    if has_flag(args, "--compare") && config.label() != "PTA" {
        let mut baseline_session = session_for(&program, AnalysisConfig::baseline_pta(), &roots)?;
        let baseline = solve_cli(&mut baseline_session)?;
        let b = baseline.reachable_count();
        let s = result.reachable_count();
        println!();
        println!(
            "baseline PTA reaches {b} methods; {} reaches {s} ({:+.1}%)",
            config.label(),
            (s as f64 / b as f64 - 1.0) * 100.0
        );
        // The unified call-graph interface computes the difference directly.
        let delta = baseline.reachable_delta(&result);
        for m in delta.only_in_self {
            println!("  removed: {}", program.method_label(m));
        }
    }
    Ok(())
}

fn print_analysis(program: &Program, result: &AnalysisSnapshot<'_>, args: &[String]) {
    let stats = result.stats();
    let partial = match result.completeness() {
        Completeness::Partial => " [partial]",
        Completeness::Complete => "",
    };
    println!(
        "{}{partial}: {} reachable methods ({} flows, {} use / {} pred / {} observe edges, {} steps, {:?})",
        result.config().label(),
        result.reachable_methods().len(),
        stats.flows,
        stats.use_edges,
        stats.pred_edges,
        stats.obs_edges,
        stats.steps,
        stats.duration
    );
    if has_flag(args, "--metrics") {
        println!("metrics: {}", result.metrics(program));
    }
    if has_flag(args, "--dead-code") {
        for &m in result.reachable_methods() {
            if !result.dead_blocks(m).is_empty() {
                print!("{}", result.dead_code_report(program, m));
            }
        }
    }
}

fn cmd_shrink(args: &[String]) -> Result<(), String> {
    use skipflow::analysis::shrink::{encoded_sizes, shrink};
    let input = args.first().ok_or("shrink: missing input path")?;
    let output = flag_value(args, "-o").ok_or("shrink: missing -o <out>")?;
    let program = load_program(input)?;
    let roots = resolve_roots(&program, &flag_values(args, "--root"))?;
    // The session builder reports invalid inputs as one-line errors; the
    // `analyze` free function would panic with a Debug dump instead.
    let mut session = session_for(&program, AnalysisConfig::skipflow(), &roots)?;
    solve_cli(&mut session)?;
    let result = session.into_result();
    let shrunk = shrink(&program, &result).map_err(|e| format!("shrink produced invalid IR: {e}"))?;
    let (before, after) = encoded_sizes(&program, &shrunk);
    let bytes = skipflow::ir::encode::encode(&shrunk.program);
    std::fs::write(output, &bytes).map_err(|e| format!("cannot write {output}: {e}"))?;
    println!(
        "wrote {output}: methods {} -> {}, blocks stubbed {}, bytes {} -> {} ({:+.1}%)",
        shrunk.stats.methods_before,
        shrunk.stats.methods_after,
        shrunk.stats.blocks_stubbed,
        before,
        after,
        (after as f64 / before as f64 - 1.0) * 100.0
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    use skipflow::ir::interp::{run, InterpConfig};
    let input = args.first().ok_or("run: missing input path")?;
    let program = load_program(input)?;
    let roots = resolve_roots(&program, &flag_values(args, "--root"))?;
    let seed = flag_value(args, "--seed")
        .map(|s| s.parse::<u64>().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(0);
    let max_steps = flag_value(args, "--max-steps")
        .map(|s| s.parse::<u64>().map_err(|_| "bad --max-steps"))
        .transpose()?
        .unwrap_or(1_000_000);

    let root = roots[0];
    if program.method(root).param_count() != 0 {
        return Err("run: the root method must take no parameters".to_string());
    }
    let config = InterpConfig {
        seed,
        max_steps,
        ..Default::default()
    };
    let trace = run(&program, root, &[], &config);
    println!(
        "outcome: {:?} ({} steps, {} methods executed, {} types instantiated)",
        trace.outcome,
        trace.steps,
        trace.executed_methods.len(),
        trace.instantiated.len()
    );
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("dot: missing input path")?;
    let program = load_program(input)?;
    let method_name = flag_value(args, "--method").ok_or("dot: missing --method Cls.m")?;
    let roots = resolve_roots(&program, &flag_values(args, "--root"))?;
    let target = resolve_roots(&program, &[method_name])?[0];
    let mut session = session_for(&program, AnalysisConfig::skipflow(), &roots)?;
    let result = solve_cli(&mut session)?;
    match skipflow::analysis::dot::method_pvpg_dot(&result, &program, target) {
        Some(dot) => {
            println!("{dot}");
            Ok(())
        }
        None => Err(format!("{method_name} is not reachable; no PVPG fragment exists")),
    }
}

/// `skipflow serve`: run the analysis server until a client sends
/// `shutdown` (or the process is killed). Prints the bound address on
/// stdout — with `--addr host:0` the kernel picks the port, so scripted
/// clients read the `listening on <addr>` line to find it.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use skipflow::server::{Server, ServerConfig};
    use std::io::Write as _;

    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7411");
    let mut cfg = ServerConfig::default();
    if let Some(n) = flag_value(args, "--max-sessions") {
        cfg.max_sessions = n.parse().map_err(|_| "bad --max-sessions (expected a count)")?;
    }
    if let Some(mb) = flag_value(args, "--memory-budget-mb") {
        let mb: usize = mb.parse().map_err(|_| "bad --memory-budget-mb (expected megabytes)")?;
        cfg.memory_budget_bytes = mb << 20;
    }
    if let Some(n) = flag_value(args, "--batch-steps") {
        cfg.batch_step_budget =
            Some(n.parse().map_err(|_| "bad --batch-steps (expected a step count)")?);
    }
    if let Some(ms) = flag_value(args, "--batch-ms") {
        let ms: u64 = ms.parse().map_err(|_| "bad --batch-ms (expected milliseconds)")?;
        cfg.batch_wall_budget = Some(Duration::from_millis(ms));
    }

    let server = Server::bind(addr, cfg).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| format!("cannot read bound address: {e}"))?;
    // Stdout is block-buffered when piped; flush so wrappers that spawn the
    // server and scrape the port see this line before the first connection.
    println!("listening on {bound}");
    std::io::stdout().flush().map_err(|e| format!("cannot flush stdout: {e}"))?;
    server.run().map_err(|e| format!("server failed: {e}"))
}

fn cmd_print(args: &[String]) -> Result<(), String> {
    let input = args.first().ok_or("print: missing input path")?;
    let program = load_program(input)?;
    print!("{}", printer::print_program(&program));
    Ok(())
}
