//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the API subset the workspace uses: `StdRng` seeded
//! from a `u64`, and the `Rng` methods `gen`, `gen_bool`, and `gen_range`
//! over integer ranges. The generator is xoshiro256++ seeded via SplitMix64
//! — deterministic across platforms, which is all the synthetic-corpus
//! generator requires (it never promises rand-compatible streams).

use std::ops::Range;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value of a type with a canonical uniform distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from a half-open integer range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    /// Samples one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Samples uniformly from `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                // Modulo bias is negligible for the small spans used here.
                let off = rng.next_u64() % span;
                ((range.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(-5i64..20);
            assert!((-5..20).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
            let f = r.gen_range(0.0f64..0.5);
            assert!((0.0..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
