//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the API subset the workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`, `bench_function` /
//! `bench_with_input`, `Bencher::{iter, iter_batched}`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warm-up followed by a fixed
//! number of timed batches, reporting min/mean per iteration — which is
//! enough for trend-level comparisons. The serious perf record lives in the
//! `trajectory` binary, not here.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one routine call
/// per setup regardless; the variants exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One routine call per batch.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    samples: u64,
    /// Mean wall time per iteration over the timed samples.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
}

impl Bencher {
    fn new(samples: u64) -> Self {
        Bencher {
            samples,
            mean: Duration::ZERO,
            min: Duration::MAX,
        }
    }

    /// Times `routine` for the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let dt = start.elapsed();
            total += dt;
            self.min = self.min.min(dt);
        }
        self.mean = total / self.samples.max(1) as u32;
    }

    /// Times `routine` over fresh inputs from `setup` (setup not timed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let dt = start.elapsed();
            total += dt;
            self.min = self.min.min(dt);
        }
        self.mean = total / self.samples.max(1) as u32;
    }
}

fn report(group: &str, id: &str, b: &Bencher) {
    let name = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    println!(
        "bench {name:<60} mean {:>12.3?} min {:>12.3?} ({} samples)",
        b.mean, b.min, b.samples
    );
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: u64,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Ignored; exists for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.samples);
        f(&mut b);
        report(&self.name, &id.id, &b);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.samples);
        f(&mut b, input);
        report(&self.name, &id.id, &b);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    samples: u64,
}

impl Criterion {
    /// Begins a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = if self.samples == 0 { 10 } else { self.samples };
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let samples = if self.samples == 0 { 10 } else { self.samples };
        let mut b = Bencher::new(samples);
        f(&mut b);
        report("", &id.id, &b);
        self
    }
}

/// Declares a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("count", |b| b.iter(|| ran += 1));
        // warm-up + 3 samples
        assert_eq!(ran, 4);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput)
        });
        group.finish();
    }
}
