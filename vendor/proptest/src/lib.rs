//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the API subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, [`Just`], integer/float range
//! strategies, `collection::{vec, btree_set}`, tuple composition,
//! `prop_oneof!`, and the `proptest!` test macro with `ProptestConfig`.
//!
//! Semantics differ from real proptest in one deliberate way: there is no
//! shrinking. Failing inputs are reported verbatim via the panic message
//! (every generated argument is included), which is enough to reproduce —
//! generation is deterministic per test-function name and case index.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Test-runner configuration (subset of `proptest::test_runner`).

    /// Configuration for one `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test function.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// The deterministic generator handed to strategies.
pub struct TestRng(pub rand::rngs::StdRng);

impl TestRng {
    /// A generator for (test name, case index); fully deterministic.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(rand::rngs::StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($v,)+) = self;
                    ($($v.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A/a);
    impl_tuple_strategy!(A/a, B/b);
    impl_tuple_strategy!(A/a, B/b, C/c);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f, G/g);
    impl_tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f, G/g, H/h);
}

use strategy::Strategy;

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                let (start, end) = (*self.start(), *self.end());
                if end == <$t>::MAX {
                    if start == <$t>::MIN {
                        return rng.0.gen::<$t>();
                    }
                    // Shift down one to keep the half-open sampler usable.
                    rng.0.gen_range(start - 1..end) + 1
                } else {
                    rng.0.gen_range(start..end + 1)
                }
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        use rand::Rng;
        rng.0.gen_range(self.clone())
    }
}

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.0.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s; sizes are best-effort (duplicates collapse).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets of values from `element` with up to `size.end` members.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            use rand::Rng;
            let n = rng.0.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Type-erases a list of same-valued strategies (used by `prop_oneof!`).
pub fn union_of<T>(options: Vec<strategy::BoxedStrategy<T>>) -> strategy::Union<T> {
    strategy::Union::new(options)
}

pub mod prelude {
    //! The usual imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Marker for `prop_assume!`-style early exits (a skipped case).
pub struct CaseSkipped;

/// Asserts inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Ok(());
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::union_of(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The `proptest!` test macro: declares `#[test]` functions whose arguments
/// are drawn from strategies for a configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $( let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng); )+
                // One Result-returning closure per case, mirroring real
                // proptest: bodies may `return Ok(())` (and prop_assume!
                // skips that way); a trailing Ok(()) is appended.
                let run = || -> ::std::result::Result<(), ()> {
                    $( let $arg = $arg; )+
                    $body
                    Ok(())
                };
                let _ = run();
            }
        }
    )*};
}

// Re-exports so `proptest::collection::...` paths and prelude both work.
pub use strategy::{BoxedStrategy, Just};
pub use test_runner::ProptestConfig;

#[allow(unused_imports)]
use {BTreeSet as _BTreeSetUsed, Range as _RangeUsed, RangeInclusive as _RangeInclusiveUsed};

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn just_and_map_generate() {
        let s = Just(3usize).prop_map(|v| v * 2);
        let mut rng = TestRng::for_case("just_and_map", 0);
        assert_eq!(s.generate(&mut rng), 6);
    }

    #[test]
    fn oneof_picks_each_arm_eventually() {
        let s = prop_oneof![Just(1u32), Just(2u32), (5u32..7).prop_map(|v| v)];
        let mut seen = std::collections::BTreeSet::new();
        for case in 0..200 {
            let mut rng = TestRng::for_case("oneof", case);
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_draws_in_range(x in 0i64..10, v in crate::collection::vec(0u8..4, 1..5)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }
}
