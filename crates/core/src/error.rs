//! Structured analysis errors.
//!
//! The session builder validates every externally supplied input — root
//! methods, reflective roots/fields, unsafe fields, and the solver
//! configuration — against the program *before* the engine runs, so malformed
//! input surfaces as a typed [`AnalysisError`] instead of an index panic deep
//! inside the fixpoint iteration.

use skipflow_ir::{FieldId, MethodId};
use std::fmt;

/// An invalid analysis input, reported by
/// [`SessionBuilder::build`](crate::SessionBuilder::build) and
/// [`AnalysisSession::add_roots`](crate::AnalysisSession::add_roots).
///
/// Marked `#[non_exhaustive]`: future sessions may validate more inputs
/// without a breaking change, so downstream matches need a wildcard arm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A root (or reflective root) method id does not exist in the program.
    UnknownMethod {
        /// The offending id.
        method: MethodId,
        /// Methods in the program (valid ids are `0..method_count`).
        method_count: usize,
    },
    /// A reflective or unsafe field id does not exist in the program.
    UnknownField {
        /// The offending id.
        field: FieldId,
        /// Fields in the program (valid ids are `0..field_count`).
        field_count: usize,
    },
    /// `SolverKind::Parallel` was configured with zero worker threads.
    ZeroThreads,
    /// The PVPG grew to the `FlowId` capacity limit. Flow indices are stored
    /// as `u32` with `u32::MAX` reserved as the intrusive-list sentinel
    /// (`NO_FLOW`), so an analysis may create at most
    /// [`crate::MAX_FLOW_COUNT`] flows; at that point the engine stops
    /// building new fragments and reports this error instead of silently
    /// corrupting the scheduler's intrusive lists.
    TooManyFlows {
        /// Flows in the PVPG when the limit was hit.
        flows: usize,
        /// The hard flow-count capacity ([`crate::MAX_FLOW_COUNT`]).
        limit: usize,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownMethod { method, method_count } => write!(
                f,
                "root method {method:?} does not exist (program has {method_count} methods)"
            ),
            AnalysisError::UnknownField { field, field_count } => write!(
                f,
                "field {field:?} does not exist (program has {field_count} fields)"
            ),
            AnalysisError::ZeroThreads => {
                write!(f, "SolverKind::Parallel requires at least one worker thread")
            }
            AnalysisError::TooManyFlows { flows, limit } => write!(
                f,
                "the analysis graph reached {flows} flows, the FlowId capacity limit ({limit})"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AnalysisError::UnknownMethod {
            method: MethodId::from_index(7),
            method_count: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("does not exist") && msg.contains('3'), "{msg}");
        assert!(AnalysisError::ZeroThreads.to_string().contains("worker thread"));
        let e = AnalysisError::TooManyFlows {
            flows: 4_294_967_294,
            limit: 4_294_967_294,
        };
        assert!(e.to_string().contains("capacity limit"), "{e}");
    }
}
