//! Structured analysis errors.
//!
//! The session builder validates every externally supplied input — root
//! methods, reflective roots/fields, unsafe fields, and the solver
//! configuration — against the program *before* the engine runs, so malformed
//! input surfaces as a typed [`AnalysisError`] instead of an index panic deep
//! inside the fixpoint iteration. Mid-solve failures (graph capacity, a
//! panicked parallel worker) surface through the same type; every variant's
//! `Display` message states what happened *and* what the caller can do about
//! it, and [`std::error::Error::source`] exposes the wrapped panic payload
//! of [`AnalysisError::WorkerPanicked`] so `anyhow`-style chains print it.

use crate::flow::FlowId;
use crate::interrupt::InterruptReason;
use skipflow_ir::{FieldId, MethodId};
use std::fmt;

/// An analysis failure: invalid input reported by
/// [`SessionBuilder::build`](crate::SessionBuilder::build) and
/// [`AnalysisSession::add_roots`](crate::AnalysisSession::add_roots), or a
/// mid-solve condition reported by
/// [`AnalysisSession::try_solve`](crate::AnalysisSession::try_solve) /
/// [`AnalysisSession::solve_interruptible`](crate::AnalysisSession::solve_interruptible).
///
/// Marked `#[non_exhaustive]`: future sessions may validate more inputs
/// without a breaking change, so downstream matches need a wildcard arm.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// A root (or reflective root) method id does not exist in the program.
    ///
    /// ```
    /// use skipflow_core::AnalysisError;
    /// use skipflow_ir::MethodId;
    /// let e = AnalysisError::UnknownMethod { method: MethodId::from_index(7), method_count: 3 };
    /// assert_eq!(
    ///     e.to_string(),
    ///     "root method m7 does not exist (program has 3 methods; valid ids are 0..3)"
    /// );
    /// ```
    UnknownMethod {
        /// The offending id.
        method: MethodId,
        /// Methods in the program (valid ids are `0..method_count`).
        method_count: usize,
    },
    /// A reflective or unsafe field id does not exist in the program.
    ///
    /// ```
    /// use skipflow_core::AnalysisError;
    /// use skipflow_ir::FieldId;
    /// let e = AnalysisError::UnknownField { field: FieldId::from_index(4), field_count: 2 };
    /// assert_eq!(
    ///     e.to_string(),
    ///     "field f4 does not exist (program has 2 fields; valid ids are 0..2)"
    /// );
    /// ```
    UnknownField {
        /// The offending id.
        field: FieldId,
        /// Fields in the program (valid ids are `0..field_count`).
        field_count: usize,
    },
    /// `SolverKind::Parallel` was configured with zero worker threads.
    ///
    /// ```
    /// use skipflow_core::AnalysisError;
    /// assert_eq!(
    ///     AnalysisError::ZeroThreads.to_string(),
    ///     "SolverKind::Parallel requires at least one worker thread (use threads: 1 for a \
    ///      sequential-equivalent run)"
    /// );
    /// ```
    ZeroThreads,
    /// The PVPG grew to the `FlowId` capacity limit. Flow indices are stored
    /// as `u32` with `u32::MAX` reserved as the intrusive-list sentinel
    /// (`NO_FLOW`), so an analysis may create at most
    /// [`crate::MAX_FLOW_COUNT`] flows; at that point the engine stops
    /// building new fragments and reports this error instead of silently
    /// corrupting the scheduler's intrusive lists.
    ///
    /// ```
    /// use skipflow_core::AnalysisError;
    /// let e = AnalysisError::TooManyFlows { flows: 4_294_967_294, limit: 4_294_967_294 };
    /// assert_eq!(
    ///     e.to_string(),
    ///     "the analysis graph reached 4294967294 flows, the FlowId capacity limit \
    ///      (4294967294); shrink the program or split the analysis across sessions"
    /// );
    /// ```
    TooManyFlows {
        /// Flows in the PVPG when the limit was hit.
        flows: usize,
        /// The hard flow-count capacity ([`crate::MAX_FLOW_COUNT`]).
        limit: usize,
    },
    /// A budget (or a pre-tripped cancel token) stopped a solve that was
    /// driven through the completion-only API
    /// ([`AnalysisSession::try_solve`](crate::AnalysisSession::try_solve) /
    /// [`solve`](crate::AnalysisSession::solve)). The session is *not*
    /// poisoned: the checkpoint is retained and
    /// [`solve_interruptible`](crate::AnalysisSession::solve_interruptible)
    /// resumes it (and hands out the partial snapshot this API cannot).
    ///
    /// ```
    /// use skipflow_core::{AnalysisError, InterruptReason};
    /// let e = AnalysisError::Interrupted { reason: InterruptReason::StepBudget { budget: 64 } };
    /// assert_eq!(
    ///     e.to_string(),
    ///     "solve interrupted: step budget exhausted (64 steps); resume with \
    ///      solve_interruptible() to continue from the checkpoint"
    /// );
    /// ```
    Interrupted {
        /// What stopped the solve.
        reason: InterruptReason,
    },
    /// A phase-A worker of the parallel solver panicked. The round's
    /// uncommitted work was discarded and its flows re-enqueued (phase A is
    /// read-only, so the graph is untouched), and the session is marked
    /// degraded: it stays fully usable, but subsequent solves run
    /// sequentially. The panic payload is preserved and also exposed via
    /// [`std::error::Error::source`].
    ///
    /// ```
    /// use skipflow_core::{AnalysisError, FlowId, WorkerPanic};
    /// use std::error::Error as _;
    /// let e = AnalysisError::WorkerPanicked {
    ///     flow: FlowId::from_index(12),
    ///     payload: WorkerPanic::new("index out of bounds"),
    /// };
    /// assert_eq!(
    ///     e.to_string(),
    ///     "a parallel worker panicked while processing flow fl12; the round was \
    ///      rolled back and the session degraded to sequential solving — re-solve to \
    ///      continue (payload: index out of bounds)"
    /// );
    /// assert_eq!(e.source().unwrap().to_string(), "index out of bounds");
    /// ```
    WorkerPanicked {
        /// The flow whose phase-A step panicked.
        flow: FlowId,
        /// The stringified panic payload (the wrapped source error).
        payload: WorkerPanic,
    },
}

/// A parallel worker's panic payload, preserved as the source error behind
/// [`AnalysisError::WorkerPanicked`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    message: String,
}

impl WorkerPanic {
    /// Wraps a stringified panic payload.
    pub fn new(message: impl Into<String>) -> Self {
        WorkerPanic {
            message: message.into(),
        }
    }

    /// The panic message (`"non-string panic payload"` when the payload was
    /// not a string).
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WorkerPanic {}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::UnknownMethod { method, method_count } => write!(
                f,
                "root method {method:?} does not exist (program has {method_count} methods; \
                 valid ids are 0..{method_count})"
            ),
            AnalysisError::UnknownField { field, field_count } => write!(
                f,
                "field {field:?} does not exist (program has {field_count} fields; \
                 valid ids are 0..{field_count})"
            ),
            AnalysisError::ZeroThreads => write!(
                f,
                "SolverKind::Parallel requires at least one worker thread (use threads: 1 \
                 for a sequential-equivalent run)"
            ),
            AnalysisError::TooManyFlows { flows, limit } => write!(
                f,
                "the analysis graph reached {flows} flows, the FlowId capacity limit \
                 ({limit}); shrink the program or split the analysis across sessions"
            ),
            AnalysisError::Interrupted { reason } => write!(
                f,
                "solve interrupted: {reason}; resume with solve_interruptible() to \
                 continue from the checkpoint"
            ),
            AnalysisError::WorkerPanicked { flow, payload } => write!(
                f,
                "a parallel worker panicked while processing flow {flow:?}; the round was \
                 rolled back and the session degraded to sequential solving — re-solve to \
                 continue (payload: {payload})"
            ),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            // The only variant that wraps another error: the preserved
            // worker-panic payload.
            AnalysisError::WorkerPanicked { payload, .. } => Some(payload),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_informative() {
        let e = AnalysisError::UnknownMethod {
            method: MethodId::from_index(7),
            method_count: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("does not exist") && msg.contains('3'), "{msg}");
        assert!(AnalysisError::ZeroThreads.to_string().contains("worker thread"));
        let e = AnalysisError::TooManyFlows {
            flows: 4_294_967_294,
            limit: 4_294_967_294,
        };
        assert!(e.to_string().contains("capacity limit"), "{e}");
    }

    #[test]
    fn every_message_is_actionable_and_source_wraps_the_panic() {
        // Each variant names the remedy, not just the failure.
        let cases: Vec<(AnalysisError, &str)> = vec![
            (
                AnalysisError::UnknownMethod {
                    method: MethodId::from_index(1),
                    method_count: 1,
                },
                "valid ids are",
            ),
            (
                AnalysisError::UnknownField {
                    field: FieldId::from_index(1),
                    field_count: 1,
                },
                "valid ids are",
            ),
            (AnalysisError::ZeroThreads, "threads: 1"),
            (
                AnalysisError::TooManyFlows { flows: 9, limit: 9 },
                "split the analysis",
            ),
            (
                AnalysisError::Interrupted {
                    reason: InterruptReason::Cancelled,
                },
                "solve_interruptible",
            ),
            (
                AnalysisError::WorkerPanicked {
                    flow: FlowId::from_index(3),
                    payload: WorkerPanic::new("boom"),
                },
                "re-solve",
            ),
        ];
        for (e, remedy) in &cases {
            let msg = e.to_string();
            assert!(msg.contains(remedy), "{msg:?} lacks remedy {remedy:?}");
        }
        // `source` is None everywhere except the panic wrapper.
        for (e, _) in &cases {
            match e {
                AnalysisError::WorkerPanicked { .. } => {
                    assert_eq!(e.source().unwrap().to_string(), "boom");
                }
                _ => assert!(e.source().is_none(), "{e}"),
            }
        }
    }
}
