//! The predicated value propagation graph (PVPG): flow arena, the three
//! edge kinds, call sites, field sinks, and per-method graph summaries.
//!
//! Adjacency is stored CSR-style in graph-owned [`EdgePool`]s rather than in
//! per-flow `Vec`s: construction-time edges of one method fragment are
//! buffered and *sealed* into one shared `Vec<FlowId>` with per-flow ranges,
//! while edges discovered during solving (field wiring, invoke linking) go
//! to a linked spill arena. Worklist steps iterate successors through a
//! [`EdgeCursor`] — a `Copy` value that survives re-borrows — so the engine
//! never clones an edge list.

use crate::flow::{CallSite, Flow, FlowId, FlowKind, SiteId};
use skipflow_ir::{BlockId, FieldId, MethodId, TypeRef};
use std::collections::{BTreeMap, HashMap, HashSet};

const NO_SPILL: u32 = u32::MAX;

/// CSR-style adjacency shared by every flow for one edge kind.
#[derive(Clone, Debug, Default)]
pub struct EdgePool {
    /// Frozen edge targets, grouped contiguously per source flow.
    csr: Vec<FlowId>,
    /// Per-flow `(start, len)` range into `csr`, frozen at seal time.
    ranges: Vec<(u32, u32)>,
    /// Per-flow head index into `spill` (`NO_SPILL` = none).
    spill_head: Vec<u32>,
    /// `(target, next)` nodes for edges added after the source was sealed.
    spill: Vec<(FlowId, u32)>,
    /// Buffered `(src, dst)` pairs of the open construction batch.
    pending: Vec<(FlowId, FlowId)>,
    /// Reusable counting-sort scratch for [`EdgePool::seal`].
    scratch: Vec<u32>,
    /// Total materialized edges (csr + spill).
    count: usize,
}

/// Iteration state over one flow's successors; `Copy`, so the caller can
/// interleave `next` calls with arbitrary graph mutation (edges are never
/// removed and CSR ranges are frozen, so a cursor never dangles).
#[derive(Clone, Copy, Debug)]
pub struct EdgeCursor {
    csr_pos: u32,
    csr_end: u32,
    spill: u32,
}

impl EdgePool {
    fn ensure(&mut self, flow_count: usize) {
        if self.ranges.len() < flow_count {
            self.ranges.resize(flow_count, (0, 0));
            self.spill_head.resize(flow_count, NO_SPILL);
        }
    }

    /// Buffers a construction-time edge; materialized by [`EdgePool::seal`].
    fn push_pending(&mut self, s: FlowId, t: FlowId) {
        self.pending.push((s, t));
    }

    /// Adds an edge immediately to the spill arena (newest first).
    fn push_spill(&mut self, s: FlowId, t: FlowId, flow_count: usize) {
        self.ensure(flow_count);
        let idx = self.spill.len() as u32;
        assert!(idx != NO_SPILL, "spill arena overflow");
        self.spill.push((t, self.spill_head[s.index()]));
        self.spill_head[s.index()] = idx;
        self.count += 1;
    }

    /// Seals the open batch: pending edges whose source is `≥ first` (the
    /// fragment's own flows, each sealed exactly once) get contiguous CSR
    /// ranges via a counting sort; pending edges from older sources join
    /// their spill lists.
    fn seal(&mut self, first: usize, flow_count: usize) {
        self.ensure(flow_count);
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let base = self.csr.len();
        let mut batch_edges = 0u32;
        let mut counts = std::mem::take(&mut self.scratch);
        counts.clear();
        counts.resize(flow_count - first, 0);
        for &(s, _) in &pending {
            if s.index() >= first {
                counts[s.index() - first] += 1;
                batch_edges += 1;
            }
        }
        let mut offset = base as u32;
        for (i, &c) in counts.iter().enumerate() {
            debug_assert_eq!(self.ranges[first + i], (0, 0), "flows are sealed once");
            self.ranges[first + i] = (offset, c);
            offset += c;
        }
        self.csr.resize(base + batch_edges as usize, FlowId(0));
        // Reuse `counts` as per-flow write cursors.
        for c in counts.iter_mut() {
            *c = 0;
        }
        for &(s, t) in &pending {
            if s.index() >= first {
                let slot = s.index() - first;
                let pos = self.ranges[first + slot].0 + counts[slot];
                self.csr[pos as usize] = t;
                counts[slot] += 1;
            } else {
                let idx = self.spill.len() as u32;
                self.spill.push((t, self.spill_head[s.index()]));
                self.spill_head[s.index()] = idx;
            }
        }
        self.count += pending.len();
        self.scratch = counts;
        // Hand the drained buffer back so the next batch reuses it.
        self.pending = pending;
        self.pending.clear();
    }

    /// Starts iterating `f`'s successors. Must not be called while a
    /// construction batch is open.
    pub fn cursor(&self, f: FlowId) -> EdgeCursor {
        debug_assert!(self.pending.is_empty(), "cursor over unsealed pool");
        let (start, len) = self.ranges.get(f.index()).copied().unwrap_or((0, 0));
        let spill = self.spill_head.get(f.index()).copied().unwrap_or(NO_SPILL);
        EdgeCursor {
            csr_pos: start,
            csr_end: start + len,
            spill,
        }
    }

    /// Advances a cursor; CSR range first, then the spill list.
    pub fn next(&self, cur: &mut EdgeCursor) -> Option<FlowId> {
        if cur.csr_pos < cur.csr_end {
            let t = self.csr[cur.csr_pos as usize];
            cur.csr_pos += 1;
            return Some(t);
        }
        if cur.spill != NO_SPILL {
            let (t, next) = self.spill[cur.spill as usize];
            cur.spill = next;
            return Some(t);
        }
        None
    }

    /// Iterates `f`'s successors (read-only contexts: reports, dot export).
    pub fn targets(&self, f: FlowId) -> impl Iterator<Item = FlowId> + '_ {
        let mut cur = self.cursor(f);
        std::iter::from_fn(move || self.next(&mut cur))
    }

    /// Total number of materialized edges.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the pool holds no edges. (`len`'s conventional companion;
    /// only tests exercise it today, hence the lint allowance.)
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// The condensation of the PVPG: per-flow strongly-connected-component ids
/// and scheduling priorities, computed by [`Pvpg::compute_sccs`].
///
/// Priorities are the topological index of the flow's SCC in the
/// condensation over the *value-carrying* edge kinds (use and observe):
/// every such edge `s → t` with `comp[s] ≠ comp[t]` satisfies
/// `priority[s] < priority[t]`, so draining the lowest-priority bucket to
/// exhaustion iterates each SCC to local fixpoint before any successor SCC
/// is touched.
///
/// Predicate edges are deliberately *excluded*: enabling is one-shot and
/// idempotent (a disabled flow is never queued, and an enabled flow never
/// re-processes because of its predicate), so predicate edges impose no
/// re-processing order — but they routinely close cycles through a
/// method's statement chain (invoke-as-predicate) that would glue large
/// acyclic value-flow regions into one SCC and erase the ordering.
#[derive(Clone, Debug, Default)]
pub struct SccInfo {
    /// Per-flow SCC id (dense; ids are assigned in completion order, which
    /// is *reverse* topological).
    pub comp: Vec<u32>,
    /// Per-flow condensation-topological priority (sources first).
    pub priority: Vec<u32>,
    /// Per-flow flag: the flow sits in an SCC of size ≥ 2 (a genuine value
    /// cycle — loop φs, recursion, `pred_on → φ_pred` predicate loops).
    pub cyclic: Vec<bool>,
    /// Number of SCCs.
    pub count: u32,
    /// Size of the largest SCC.
    pub max_size: u32,
    /// Total flows sitting in SCCs of size ≥ 2.
    pub cyclic_flows: u32,
}

/// The classification of a branching instruction, used by the paper's
/// counter metrics (Type Checks / Null Checks / Prim Checks).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckCategory {
    /// `instanceof` conditions.
    Type,
    /// Comparisons against a `null` literal (and reference equality).
    Null,
    /// Primitive comparisons.
    Prim,
}

/// Metrics/reporting record for one `if` instruction: the filtering flows
/// whose emptiness decides whether each branch is dead.
#[derive(Clone, Debug)]
pub struct IfRecord {
    /// Block ending with the `if`.
    pub block: BlockId,
    /// Metric category of the check.
    pub category: CheckCategory,
    /// Entry predicate of the then branch (last filter in its chain).
    pub then_pred: FlowId,
    /// Entry predicate of the else branch.
    pub else_pred: FlowId,
}

/// The PVPG fragment of one method, plus reporting metadata.
#[derive(Clone, Debug, Default)]
pub struct MethodGraph {
    /// Parameter flows, receiver first for instance methods.
    pub params: Vec<FlowId>,
    /// The method-return flow (joins all return sites).
    pub ret: Option<FlowId>,
    /// Call sites in source order.
    pub sites: Vec<SiteId>,
    /// All flows created for the method.
    pub flows: Vec<FlowId>,
    /// Per-`if` records for the counter metrics.
    pub ifs: Vec<IfRecord>,
    /// Entry predicate of each basic block (indexed by block id);
    /// block-level liveness = that flow is active.
    pub block_preds: Vec<FlowId>,
    /// One flow per (block, statement) pair for instruction-level liveness,
    /// aligned with the body's statement enumeration.
    pub stmt_flows: Vec<Vec<FlowId>>,
}

/// The whole-program PVPG.
#[derive(Clone, Debug)]
pub struct Pvpg {
    /// Flow arena.
    pub flows: Vec<Flow>,
    /// Call-site arena.
    pub sites: Vec<CallSite>,
    /// Use-edge adjacency.
    pub(crate) uses: EdgePool,
    /// Predicate-edge adjacency.
    pub(crate) preds: EdgePool,
    /// Observe-edge adjacency.
    pub(crate) observes: EdgePool,
    /// The always-enabled predicate.
    pub pred_on: FlowId,
    /// Global pool of thrown exception values.
    pub thrown_sink: FlowId,
    /// Global pool of unsafe-accessed field values.
    pub unsafe_sink: FlowId,
    /// Per-method graphs, created when a method becomes reachable.
    pub methods: BTreeMap<MethodId, MethodGraph>,
    /// Per-field sinks, created on first access.
    field_sinks: HashMap<FieldId, FlowId>,
    /// Dedup set for dynamically added use edges (field/invoke linking).
    dynamic_use_edges: HashSet<(FlowId, FlowId)>,
}

impl Pvpg {
    /// Creates a PVPG containing only the global flows.
    pub fn new() -> Self {
        let mut g = Pvpg {
            flows: Vec::new(),
            sites: Vec::new(),
            uses: EdgePool::default(),
            preds: EdgePool::default(),
            observes: EdgePool::default(),
            pred_on: FlowId(0),
            thrown_sink: FlowId(0),
            unsafe_sink: FlowId(0),
            methods: BTreeMap::new(),
            field_sinks: HashMap::new(),
            dynamic_use_edges: HashSet::new(),
        };
        g.pred_on = g.add_flow(Flow::new(FlowKind::PredOn, None, None));
        g.thrown_sink = g.add_flow(Flow::new(FlowKind::ThrownSink, None, None));
        g.unsafe_sink = g.add_flow(Flow::new(FlowKind::UnsafeSink, None, None));
        g
    }

    /// Adds a flow and returns its id.
    pub fn add_flow(&mut self, flow: Flow) -> FlowId {
        let id = FlowId::from_index(self.flows.len());
        self.flows.push(flow);
        id
    }

    /// Immutable access to a flow.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.index()]
    }

    /// Mutable access to a flow.
    pub fn flow_mut(&mut self, id: FlowId) -> &mut Flow {
        &mut self.flows[id.index()]
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Adds a call site and returns its id.
    pub fn add_site(&mut self, site: CallSite) -> SiteId {
        let id = SiteId::from_index(self.sites.len());
        self.sites.push(site);
        id
    }

    /// Immutable access to a call site.
    pub fn site(&self, id: SiteId) -> &CallSite {
        &self.sites[id.index()]
    }

    /// Mutable access to a call site.
    pub fn site_mut(&mut self, id: SiteId) -> &mut CallSite {
        &mut self.sites[id.index()]
    }

    /// Adds a use edge `s ⇝use t` (construction-time; caller guarantees no
    /// duplicates). Buffered until [`Pvpg::seal_batch`].
    pub fn add_use(&mut self, s: FlowId, t: FlowId) {
        self.uses.push_pending(s, t);
    }

    /// Adds a use edge with deduplication (for edges discovered during
    /// solving: field accesses and invoke linking); goes straight to the
    /// spill arena. Returns `true` if the edge is new.
    pub fn add_use_dedup(&mut self, s: FlowId, t: FlowId) -> bool {
        if self.dynamic_use_edges.insert((s, t)) {
            let n = self.flows.len();
            self.uses.push_spill(s, t, n);
            true
        } else {
            false
        }
    }

    /// Adds a predicate edge `s ⇝pred t` (construction-time, buffered).
    pub fn add_pred(&mut self, s: FlowId, t: FlowId) {
        self.preds.push_pending(s, t);
    }

    /// Adds an observe edge `s ⇝obs t` (construction-time, buffered).
    pub fn add_observe(&mut self, s: FlowId, t: FlowId) {
        self.observes.push_pending(s, t);
    }

    /// Seals a construction batch: every pending edge whose source is one of
    /// the flows created since `first_flow` is frozen into CSR storage.
    /// Called once per method fragment, right after construction.
    pub fn seal_batch(&mut self, first_flow: usize) {
        let n = self.flows.len();
        self.uses.seal(first_flow, n);
        self.preds.seal(first_flow, n);
        self.observes.seal(first_flow, n);
    }

    /// Iterates `f`'s use-edge successors.
    pub fn use_targets(&self, f: FlowId) -> impl Iterator<Item = FlowId> + '_ {
        self.uses.targets(f)
    }

    /// Iterates `f`'s predicate-edge successors.
    pub fn pred_targets(&self, f: FlowId) -> impl Iterator<Item = FlowId> + '_ {
        self.preds.targets(f)
    }

    /// Iterates `f`'s observe-edge successors.
    pub fn observe_targets(&self, f: FlowId) -> impl Iterator<Item = FlowId> + '_ {
        self.observes.targets(f)
    }

    /// The field sink for `field`, created on first request (always enabled:
    /// field state exists independently of any one access site).
    pub fn field_sink(&mut self, field: FieldId) -> FlowId {
        if let Some(&f) = self.field_sinks.get(&field) {
            return f;
        }
        let mut flow = Flow::new(FlowKind::FieldSink { field }, None, None);
        flow.enabled = true;
        let id = self.add_flow(flow);
        self.field_sinks.insert(field, id);
        id
    }

    /// The field sink for `field` if it was ever accessed.
    pub fn field_sink_opt(&self, field: FieldId) -> Option<FlowId> {
        self.field_sinks.get(&field).copied()
    }

    /// The method graph of `m`, if the method has become reachable.
    pub fn method_graph(&self, m: MethodId) -> Option<&MethodGraph> {
        self.methods.get(&m)
    }

    /// Creates an always-enabled injection source bounded by `declared`.
    pub fn add_root_source(&mut self, declared: TypeRef) -> FlowId {
        let mut flow = Flow::new(FlowKind::RootSource { declared }, None, None);
        flow.enabled = true;
        self.add_flow(flow)
    }

    /// Total number of edges of each kind `(use, pred, observe)` — used by
    /// statistics and sanity tests. Counts sealed and spill edges; a batch
    /// must not be open.
    pub fn edge_counts(&self) -> (usize, usize, usize) {
        (self.uses.len(), self.preds.len(), self.observes.len())
    }

    /// The inter-bucket edges of the PVPG under a given per-flow priority
    /// assignment, packed as sorted deduplicated
    /// `(target_priority << 32) | source_priority` pairs — the predecessor
    /// relation backing the parallel solver's antichain rounds. Extracted
    /// *lazily* (only when a round could actually batch, at most once per
    /// condensation epoch): folding this O(E) pass into every recompute
    /// was measured to double recompute cost and dominate fan-out
    /// parallel wall time. Flows beyond `priority` use `fallback` (the
    /// provisional priority of flows created since the last recompute).
    pub fn bucket_pred_edges(&self, priority: &[u32], fallback: u32) -> Vec<u64> {
        let mut edges: Vec<u64> = Vec::new();
        let prio_of =
            |i: usize| priority.get(i).copied().unwrap_or(fallback) as u64;
        for v in 0..self.flows.len() {
            let from = FlowId(v as u32);
            let p = prio_of(v);
            for pool in [&self.uses, &self.observes] {
                let mut cur = pool.cursor(from);
                while let Some(t) = pool.next(&mut cur) {
                    let q = prio_of(t.index());
                    if p != q {
                        edges.push((q << 32) | p);
                    }
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        edges
    }

    /// Computes the strongly connected components of the PVPG over the use
    /// and observe edges with an iterative Tarjan walk, and derives the
    /// condensation-topological priority of every flow (see [`SccInfo`] for
    /// why predicate edges are excluded).
    ///
    /// Implicit engine dependencies that are *not* materialized as edges
    /// (type-subscriber injections, saturated-site re-dispatch) are absent
    /// here by design: scheduling is a heuristic and missing edges only cost
    /// re-processing, never correctness.
    ///
    /// Must not be called while a construction batch is open.
    pub fn compute_sccs(&self) -> SccInfo {
        const UNVISITED: u32 = u32::MAX;
        let n = self.flows.len();
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![UNVISITED; n];
        let mut scc_stack: Vec<u32> = Vec::new();
        // DFS frame: (flow, pool 0..=2, cursor into that pool).
        let mut frames: Vec<(u32, u8, EdgeCursor)> = Vec::new();
        let mut next_index = 0u32;
        let mut comp_count = 0u32;
        let mut comp_sizes: Vec<u32> = Vec::new();

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            scc_stack.push(root as u32);
            on_stack[root] = true;
            frames.push((root as u32, 0, self.uses.cursor(FlowId(root as u32))));
            while let Some(frame) = frames.last_mut() {
                let v = frame.0 as usize;
                // Advance to the next successor, falling through the pools
                // in use → observe order (predicate edges excluded; see SccInfo).
                let mut succ = None;
                loop {
                    let pool = match frame.1 {
                        0 => &self.uses,
                        1 => &self.observes,
                        _ => break,
                    };
                    if let Some(t) = pool.next(&mut frame.2) {
                        succ = Some(t);
                        break;
                    }
                    frame.1 += 1;
                    if frame.1 == 1 {
                        frame.2 = self.observes.cursor(FlowId(v as u32));
                    }
                }
                match succ {
                    Some(w) => {
                        let w = w.index();
                        if index[w] == UNVISITED {
                            index[w] = next_index;
                            lowlink[w] = next_index;
                            next_index += 1;
                            scc_stack.push(w as u32);
                            on_stack[w] = true;
                            frames.push((w as u32, 0, self.uses.cursor(FlowId(w as u32))));
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    None => {
                        frames.pop();
                        if let Some(parent) = frames.last() {
                            let p = parent.0 as usize;
                            lowlink[p] = lowlink[p].min(lowlink[v]);
                        }
                        if lowlink[v] == index[v] {
                            let mut size = 0u32;
                            loop {
                                let w = scc_stack.pop().expect("SCC stack underflow") as usize;
                                on_stack[w] = false;
                                comp[w] = comp_count;
                                size += 1;
                                if w == v {
                                    break;
                                }
                            }
                            comp_sizes.push(size);
                            comp_count += 1;
                        }
                    }
                }
            }
        }

        // Tarjan completes an SCC only after every SCC reachable from it, so
        // completion order is reverse topological; flip it into a priority.
        let mut priority = vec![0u32; n];
        let mut cyclic = vec![false; n];
        let mut cyclic_flows = 0u32;
        for f in 0..n {
            priority[f] = comp_count - 1 - comp[f];
            if comp_sizes[comp[f] as usize] >= 2 {
                cyclic[f] = true;
                cyclic_flows += 1;
            }
        }
        SccInfo {
            comp,
            priority,
            cyclic,
            count: comp_count,
            max_size: comp_sizes.iter().copied().max().unwrap_or(0),
            cyclic_flows,
        }
    }
}

impl Default for Pvpg {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_has_global_flows() {
        let g = Pvpg::new();
        assert_eq!(g.flow_count(), 3);
        assert!(matches!(g.flow(g.pred_on).kind, FlowKind::PredOn));
        assert!(matches!(g.flow(g.thrown_sink).kind, FlowKind::ThrownSink));
        assert!(matches!(g.flow(g.unsafe_sink).kind, FlowKind::UnsafeSink));
    }

    #[test]
    fn field_sinks_are_created_once() {
        let mut g = Pvpg::new();
        let f = FieldId::from_index(0);
        let a = g.field_sink(f);
        let b = g.field_sink(f);
        assert_eq!(a, b);
        assert!(g.flow(a).enabled);
        assert_eq!(g.field_sink_opt(FieldId::from_index(1)), None);
    }

    #[test]
    fn dynamic_use_edges_deduplicate() {
        let mut g = Pvpg::new();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        assert!(g.add_use_dedup(a, b));
        assert!(!g.add_use_dedup(a, b));
        assert_eq!(g.use_targets(a).count(), 1);
    }

    #[test]
    fn edge_counts_sum_all_kinds() {
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        assert!(g.uses.is_empty());
        g.add_use(a, b);
        g.add_pred(a, b);
        g.add_pred(b, a);
        g.add_observe(a, b);
        g.seal_batch(first);
        assert_eq!(g.edge_counts(), (1, 2, 1));
        assert!(!g.uses.is_empty());
    }

    #[test]
    fn sealed_and_spill_edges_iterate_in_order() {
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let c = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.add_use(a, b);
        g.add_use(a, c);
        g.seal_batch(first);
        // Dynamic edges land in the spill list after the CSR range.
        assert!(g.add_use_dedup(a, a));
        let targets: Vec<FlowId> = g.use_targets(a).collect();
        assert_eq!(targets, vec![b, c, a]);
        // A second sealed batch for new flows leaves old ranges intact.
        let first2 = g.flow_count();
        let d = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.add_use(d, a);
        g.seal_batch(first2);
        assert_eq!(g.use_targets(a).collect::<Vec<_>>(), vec![b, c, a]);
        assert_eq!(g.use_targets(d).collect::<Vec<_>>(), vec![a]);
        assert_eq!(g.edge_counts(), (4, 0, 0));
    }

    #[test]
    fn sccs_follow_topological_priorities() {
        // a → b → c with a back edge c → b: {a} and {b, c} are the SCCs and
        // a's priority is strictly lower.
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let c = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.add_use(a, b);
        g.add_use(b, c);
        g.add_observe(c, b); // cycles may span use and observe edges
        g.seal_batch(first);
        let info = g.compute_sccs();
        assert_eq!(info.comp[b.index()], info.comp[c.index()]);
        assert_ne!(info.comp[a.index()], info.comp[b.index()]);
        assert!(info.priority[a.index()] < info.priority[b.index()]);
        assert_eq!(info.priority[b.index()], info.priority[c.index()]);
        assert!(info.cyclic[b.index()] && info.cyclic[c.index()]);
        assert!(!info.cyclic[a.index()]);
        assert_eq!(info.cyclic_flows, 2);
        assert_eq!(info.max_size, 2);
    }

    #[test]
    fn scc_priorities_respect_spill_edges() {
        // An edge added after sealing (the dynamic-linking path) must still
        // order its endpoints.
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.seal_batch(first);
        assert!(g.add_use_dedup(a, b));
        let info = g.compute_sccs();
        assert!(info.priority[a.index()] < info.priority[b.index()]);
        assert_eq!(info.count as usize, g.flow_count());
    }

    #[test]
    fn cursor_survives_concurrent_spill_growth() {
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.add_use(a, b);
        g.seal_batch(first);
        g.add_use_dedup(a, b);
        let mut cur = g.uses.cursor(a);
        let mut seen = Vec::new();
        while let Some(t) = g.uses.next(&mut cur) {
            seen.push(t);
            // New edges appended mid-iteration must not invalidate the
            // cursor (they prepend to the spill head, before the snapshot).
            let n = g.flow_count();
            g.uses.push_spill(a, a, n);
        }
        assert_eq!(seen, vec![b, b]);
    }
}
