//! The predicated value propagation graph (PVPG): flow arena, the three
//! edge kinds, call sites, field sinks, and per-method graph summaries.
//!
//! Adjacency is stored CSR-style in graph-owned [`EdgePool`]s rather than in
//! per-flow `Vec`s: construction-time edges of one method fragment are
//! buffered and *sealed* into one shared `Vec<FlowId>` with per-flow ranges,
//! while edges discovered during solving (field wiring, invoke linking) go
//! to a linked spill arena. Worklist steps iterate successors through a
//! [`EdgeCursor`] — a `Copy` value that survives re-borrows — so the engine
//! never clones an edge list.

use crate::flow::{CallSite, Flow, FlowId, FlowKind, SiteId};
use skipflow_ir::{BitSet, BlockId, FieldId, MethodId, TypeRef};
use std::collections::{BTreeMap, HashMap, HashSet};

const NO_SPILL: u32 = u32::MAX;

/// Linked-list sentinel of the online order structure.
const NO_NODE: u32 = u32::MAX;

/// Initial label spacing of the online order: appended components are this
/// far apart, so midpoint insertion has ~32 levels of headroom before a
/// local relabel is needed.
const LABEL_STRIDE: u64 = 1 << 32;

/// Target minimum gap a local relabel re-establishes between neighbours.
const RELABEL_MIN_GAP: u64 = 1 << 16;

/// CSR-style adjacency shared by every flow for one edge kind.
#[derive(Clone, Debug, Default)]
pub struct EdgePool {
    /// Frozen edge targets, grouped contiguously per source flow.
    csr: Vec<FlowId>,
    /// Per-flow `(start, len)` range into `csr`, frozen at seal time.
    ranges: Vec<(u32, u32)>,
    /// Per-flow head index into `spill` (`NO_SPILL` = none).
    spill_head: Vec<u32>,
    /// `(target, next)` nodes for edges added after the source was sealed.
    spill: Vec<(FlowId, u32)>,
    /// Buffered `(src, dst)` pairs of the open construction batch.
    pending: Vec<(FlowId, FlowId)>,
    /// Reusable counting-sort scratch for [`EdgePool::seal`].
    scratch: Vec<u32>,
    /// Total materialized edges (csr + spill).
    count: usize,
}

/// Iteration state over one flow's successors; `Copy`, so the caller can
/// interleave `next` calls with arbitrary graph mutation (edges are never
/// removed and CSR ranges are frozen, so a cursor never dangles).
#[derive(Clone, Copy, Debug)]
pub struct EdgeCursor {
    csr_pos: u32,
    csr_end: u32,
    spill: u32,
}

impl EdgePool {
    fn ensure(&mut self, flow_count: usize) {
        if self.ranges.len() < flow_count {
            self.ranges.resize(flow_count, (0, 0));
            self.spill_head.resize(flow_count, NO_SPILL);
        }
    }

    /// Buffers a construction-time edge; materialized by [`EdgePool::seal`].
    fn push_pending(&mut self, s: FlowId, t: FlowId) {
        self.pending.push((s, t));
    }

    /// Adds an edge immediately to the spill arena (newest first).
    fn push_spill(&mut self, s: FlowId, t: FlowId, flow_count: usize) {
        self.ensure(flow_count);
        let idx = self.spill.len() as u32;
        assert!(idx != NO_SPILL, "spill arena overflow");
        self.spill.push((t, self.spill_head[s.index()]));
        self.spill_head[s.index()] = idx;
        self.count += 1;
    }

    /// Seals the open batch: pending edges whose source is `≥ first` (the
    /// fragment's own flows, each sealed exactly once) get contiguous CSR
    /// ranges via a counting sort; pending edges from older sources join
    /// their spill lists.
    fn seal(&mut self, first: usize, flow_count: usize) {
        self.ensure(flow_count);
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let base = self.csr.len();
        let mut batch_edges = 0u32;
        let mut counts = std::mem::take(&mut self.scratch);
        counts.clear();
        counts.resize(flow_count - first, 0);
        for &(s, _) in &pending {
            if s.index() >= first {
                counts[s.index() - first] += 1;
                batch_edges += 1;
            }
        }
        let mut offset = base as u32;
        for (i, &c) in counts.iter().enumerate() {
            debug_assert_eq!(self.ranges[first + i], (0, 0), "flows are sealed once");
            self.ranges[first + i] = (offset, c);
            offset += c;
        }
        self.csr.resize(base + batch_edges as usize, FlowId(0));
        // Reuse `counts` as per-flow write cursors.
        for c in counts.iter_mut() {
            *c = 0;
        }
        for &(s, t) in &pending {
            if s.index() >= first {
                let slot = s.index() - first;
                let pos = self.ranges[first + slot].0 + counts[slot];
                self.csr[pos as usize] = t;
                counts[slot] += 1;
            } else {
                let idx = self.spill.len() as u32;
                self.spill.push((t, self.spill_head[s.index()]));
                self.spill_head[s.index()] = idx;
            }
        }
        self.count += pending.len();
        self.scratch = counts;
        // Hand the drained buffer back so the next batch reuses it.
        self.pending = pending;
        self.pending.clear();
    }

    /// Starts iterating `f`'s successors. Must not be called while a
    /// construction batch is open.
    pub fn cursor(&self, f: FlowId) -> EdgeCursor {
        debug_assert!(self.pending.is_empty(), "cursor over unsealed pool");
        let (start, len) = self.ranges.get(f.index()).copied().unwrap_or((0, 0));
        let spill = self.spill_head.get(f.index()).copied().unwrap_or(NO_SPILL);
        EdgeCursor {
            csr_pos: start,
            csr_end: start + len,
            spill,
        }
    }

    /// Advances a cursor; CSR range first, then the spill list.
    pub fn next(&self, cur: &mut EdgeCursor) -> Option<FlowId> {
        if cur.csr_pos < cur.csr_end {
            let t = self.csr[cur.csr_pos as usize];
            cur.csr_pos += 1;
            return Some(t);
        }
        if cur.spill != NO_SPILL {
            let (t, next) = self.spill[cur.spill as usize];
            cur.spill = next;
            return Some(t);
        }
        None
    }

    /// Iterates `f`'s successors (read-only contexts: reports, dot export).
    pub fn targets(&self, f: FlowId) -> impl Iterator<Item = FlowId> + '_ {
        let mut cur = self.cursor(f);
        std::iter::from_fn(move || self.next(&mut cur))
    }

    /// Total number of materialized edges.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the pool holds no edges. (`len`'s conventional companion;
    /// only tests exercise it today, hence the lint allowance.)
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// The condensation of the PVPG: per-flow strongly-connected-component ids
/// and scheduling priorities, computed by [`Pvpg::compute_sccs`].
///
/// Priorities are the topological index of the flow's SCC in the
/// condensation over the *value-carrying* edge kinds (use and observe):
/// every such edge `s → t` with `comp[s] ≠ comp[t]` satisfies
/// `priority[s] < priority[t]`, so draining the lowest-priority bucket to
/// exhaustion iterates each SCC to local fixpoint before any successor SCC
/// is touched.
///
/// Predicate edges are deliberately *excluded*: enabling is one-shot and
/// idempotent (a disabled flow is never queued, and an enabled flow never
/// re-processes because of its predicate), so predicate edges impose no
/// re-processing order — but they routinely close cycles through a
/// method's statement chain (invoke-as-predicate) that would glue large
/// acyclic value-flow regions into one SCC and erase the ordering.
#[derive(Clone, Debug, Default)]
pub struct SccInfo {
    /// Per-flow SCC id (dense; ids are assigned in completion order, which
    /// is *reverse* topological).
    pub comp: Vec<u32>,
    /// Per-flow condensation-topological priority (sources first).
    pub priority: Vec<u32>,
    /// Per-flow flag: the flow sits in an SCC of size ≥ 2 (a genuine value
    /// cycle — loop φs, recursion, `pred_on → φ_pred` predicate loops).
    pub cyclic: Vec<bool>,
    /// Number of SCCs.
    pub count: u32,
    /// Size of the largest SCC.
    pub max_size: u32,
    /// Total flows sitting in SCCs of size ≥ 2.
    pub cyclic_flows: u32,
}

/// Cumulative maintenance counters of the online order structure —
/// the bounded order-repair work that replaced the PR 2 batch condensation
/// recomputes (surfaced through [`crate::SchedulerStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OrderStats {
    /// Live strongly connected components (including singletons).
    pub comps: usize,
    /// Live flows sitting in components of size ≥ 2.
    pub cyclic_flows: usize,
    /// Size of the largest component.
    pub max_scc_size: usize,
    /// Order-violating edge insertions repaired in place.
    pub repairs: u64,
    /// Components relocated by those repairs (the affected-region mass).
    pub comps_moved: u64,
    /// Component unions performed by cycle collapses.
    pub merges: u64,
    /// Components whose label was rewritten by a local/global relabel
    /// (gap exhaustion of the list-labeling scheme).
    pub relabels: u64,
    /// Lazy in-edge dedup passes triggered by readiness-budget exhaustion
    /// (see [`crate::SchedulerStats::in_edge_dedups`]).
    pub in_dedups: u64,
    /// In-edge entries pruned by those passes (duplicates of an already
    /// seen predecessor component, plus intra-component entries).
    pub in_edges_pruned: u64,
}

/// Online topological order and SCC maintenance over the PVPG's
/// value-carrying (use + observe) edges — the Pearce–Kelly style
/// replacement for the PR 2 batch condensation recomputes.
///
/// Every flow is assigned an exact order position the moment it is created
/// (mid-solve fragments are *anchored* just below the invoke flow that
/// discovered them, which makes the argument/return linking edges
/// order-consistent by construction), and every inserted value edge either
/// already respects the order (one comparison) or triggers an in-place
/// repair of the affected region:
///
/// * components are union-find sets; the current order is a doubly-linked
///   list of component representatives carrying sparse `u64` labels
///   (list-labeling: midpoint insertion, local respacing on gap
///   exhaustion), so "s before t" is one label comparison at any time;
/// * a violating edge `s → t` (`label(s) ≥ label(t)`) starts a *bounded
///   bidirectional* search — forward from `t` and backward from `s`,
///   expanded in lockstep and restricted to the `[label(t), label(s)]`
///   window — and relocates whichever side exhausts first (the smaller
///   affected region), Pearce–Kelly style;
/// * when the searches meet, the edge closes a cycle: the nodes on the
///   `t ⇝ s` paths are collapsed into one component, and the remaining
///   upstream/downstream region is re-packed into the vacated label slots
///   (upstream, merged component, downstream — the PK pooled reorder
///   extended with contraction).
///
/// The structure therefore exposes, at *all* times: an exact
/// condensation-topological priority per flow (`label_of`), exact SCC
/// membership (`same_component` / `component_size`), and the current
/// condensation predecessors of any component (`component_blocked`) — which
/// is what lets the scheduler give mid-solve fragments exact priorities,
/// the adaptive flip start from a current condensation, and the parallel
/// solver batch antichains while fragments instantiate.
///
/// Out-edges are *not* duplicated here: forward searches walk the graph's
/// own CSR pools through the component member lists. Only the in-edge
/// adjacency (needed by the backward search and the readiness queries) is
/// kept, as an intrusive arena.
#[derive(Clone, Debug)]
pub struct OnlineTopo {
    /// Union-find parent per flow (path-halved in mutating contexts).
    parent: Vec<u32>,
    /// Component size, valid at representatives.
    csize: Vec<u32>,
    /// Order label, valid at representatives; strictly increasing along
    /// every cross-component value edge.
    label: Vec<u64>,
    /// Doubly-linked list of representatives in ascending label order.
    ord_next: Vec<u32>,
    ord_prev: Vec<u32>,
    ord_head: u32,
    ord_tail: u32,
    /// Circular list threading the member flows of each component
    /// (singletons self-loop; unions splice in O(1)).
    member_next: Vec<u32>,
    /// Per-flow head into `in_arena` (value-edge predecessors).
    in_head: Vec<u32>,
    /// `(source flow, next)` in-edge nodes.
    in_arena: Vec<(u32, u32)>,
    /// Lazy in-edge dedup skip-guard, valid at representatives: the
    /// `in_arena` length as of the component's last dedup pass. The arena
    /// only grows (dedup orphans nodes, never removes them), so equality
    /// means *no edge was inserted anywhere* since that pass — the list
    /// cannot have gained duplicates and a re-dedup would be wasted work.
    in_scan_clean: Vec<u32>,
    /// Anchor flow: when set, new flows are placed immediately before the
    /// anchor's component instead of at the end of the order.
    anchor: u32,
    /// Search stamps (per flow; compared against `stamp`).
    fwd_mark: Vec<u32>,
    bwd_mark: Vec<u32>,
    stamp: u32,
    /// Scratch buffers reused across repairs.
    fwd_stack: Vec<u32>,
    bwd_stack: Vec<u32>,
    fwd_seen: Vec<u32>,
    bwd_seen: Vec<u32>,
    /// Live component count.
    comps: usize,
    /// Live flows in components of size ≥ 2.
    cyclic_flows: usize,
    /// Largest component seen.
    max_scc_size: usize,
    repairs: u64,
    comps_moved: u64,
    merges: u64,
    relabels: u64,
    in_dedups: u64,
    in_edges_pruned: u64,
}

impl OnlineTopo {
    fn new() -> Self {
        OnlineTopo {
            parent: Vec::new(),
            csize: Vec::new(),
            label: Vec::new(),
            ord_next: Vec::new(),
            ord_prev: Vec::new(),
            ord_head: NO_NODE,
            ord_tail: NO_NODE,
            member_next: Vec::new(),
            in_head: Vec::new(),
            in_arena: Vec::new(),
            in_scan_clean: Vec::new(),
            anchor: NO_NODE,
            fwd_mark: Vec::new(),
            bwd_mark: Vec::new(),
            stamp: 0,
            fwd_stack: Vec::new(),
            bwd_stack: Vec::new(),
            fwd_seen: Vec::new(),
            bwd_seen: Vec::new(),
            comps: 0,
            cyclic_flows: 0,
            max_scc_size: 0,
            repairs: 0,
            comps_moved: 0,
            merges: 0,
            relabels: 0,
            in_dedups: 0,
            in_edges_pruned: 0,
        }
    }

    /// Representative of `x`'s component, with path halving.
    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let p = self.parent[x as usize];
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Read-only representative lookup (shared contexts: priority queries,
    /// readiness checks). Trees stay shallow — unions are by size and the
    /// mutating paths compress.
    fn find_ro(&self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x
    }

    /// The live order label of `f`'s component.
    pub(crate) fn label_of(&self, f: FlowId) -> u64 {
        self.label[self.find_ro(f.0) as usize]
    }

    /// Whether `f` sits in a component of size ≥ 2 (a genuine value cycle).
    pub(crate) fn in_cycle(&self, f: FlowId) -> bool {
        self.csize[self.find_ro(f.0) as usize] >= 2
    }

    /// Whether `a` and `b` share a strongly connected component.
    pub(crate) fn same_component(&self, a: FlowId, b: FlowId) -> bool {
        self.find_ro(a.0) == self.find_ro(b.0)
    }

    /// Size of `f`'s component.
    pub(crate) fn component_size(&self, f: FlowId) -> usize {
        self.csize[self.find_ro(f.0) as usize] as usize
    }

    /// The maintenance counters (see [`OrderStats`]).
    pub(crate) fn stats(&self) -> OrderStats {
        OrderStats {
            comps: self.comps,
            cyclic_flows: self.cyclic_flows,
            max_scc_size: self.max_scc_size,
            repairs: self.repairs,
            comps_moved: self.comps_moved,
            merges: self.merges,
            relabels: self.relabels,
            in_dedups: self.in_dedups,
            in_edges_pruned: self.in_edges_pruned,
        }
    }

    /// Whether any live condensation predecessor of the component holding
    /// `member` satisfies `blocked` (applied to the predecessor's label).
    /// Predecessors are read off the member flows' in-edge lists, so the
    /// answer reflects every edge inserted so far — including ones added
    /// since any queue snapshot. At most `budget` in-edge entries are
    /// examined per scan; when the budget runs out, the component's lists
    /// are *deduplicated in place* (one entry per live predecessor
    /// component; intra-component entries dropped — cycle collapses and
    /// fan-in wiring accumulate both without bound, and both are permanent:
    /// components only ever merge, so a duplicate today is a duplicate
    /// forever) and the scan retried once. Only if the deduplicated list
    /// *still* exceeds the budget does the component conservatively report
    /// blocked — so duplicate accumulation alone can no longer starve
    /// readiness detection.
    pub(crate) fn component_blocked(
        &mut self,
        member: FlowId,
        budget: usize,
        mut blocked: impl FnMut(u64) -> bool,
    ) -> bool {
        let rep = self.find(member.0);
        match self.scan_blocked(rep, budget, &mut blocked) {
            Some(b) => b,
            None => {
                if !self.dedup_in_edges(rep) {
                    // Nothing inserted since the last dedup: the list is
                    // genuinely larger than the budget.
                    return true;
                }
                self.scan_blocked(rep, budget, &mut blocked).unwrap_or(true)
            }
        }
    }

    /// One bounded scan of `rep`'s in-edge lists: `Some(blocked?)` within
    /// budget, `None` when the budget ran out.
    fn scan_blocked(
        &self,
        rep: u32,
        budget: usize,
        blocked: &mut impl FnMut(u64) -> bool,
    ) -> Option<bool> {
        let own = self.label[rep as usize];
        let mut examined = 0usize;
        let mut m = rep;
        loop {
            let mut e = self.in_head[m as usize];
            while e != NO_NODE {
                let (src, next) = self.in_arena[e as usize];
                examined += 1;
                if examined > budget {
                    return None;
                }
                let l = self.label[self.find_ro(src) as usize];
                if l != own && blocked(l) {
                    return Some(true);
                }
                e = next;
            }
            m = self.member_next[m as usize];
            if m == rep {
                break;
            }
        }
        Some(false)
    }

    /// Deduplicates the in-edge lists of `rep`'s component: keeps one arena
    /// entry per distinct live predecessor component, drops intra-component
    /// entries, and re-threads the kept entries onto the representative's
    /// chain (clearing every member head — the lists' per-flow split
    /// carries no information; every consumer walks the member union).
    /// Sound because the condensation only ever coarsens: components merge
    /// and never split, so an entry that is intra-component or redundant
    /// today stays so forever. Returns `false` (and does nothing) when no
    /// edge was inserted anywhere since this component's last dedup — the
    /// skip-guard that keeps a genuinely high-in-degree component from
    /// paying a full relink on every readiness probe.
    fn dedup_in_edges(&mut self, rep: u32) -> bool {
        let arena_len = self.in_arena.len() as u32;
        if self.in_scan_clean[rep as usize] == arena_len {
            return false;
        }
        self.in_scan_clean[rep as usize] = arena_len;
        self.in_dedups += 1;
        // Mark seen predecessor components with a fresh search stamp (the
        // repair searches bump the stamp again before trusting the marks).
        self.stamp += 1;
        let stamp = self.stamp;
        let mut kept: Vec<u32> = Vec::new();
        let mut pruned = 0u64;
        let mut m = rep;
        loop {
            let mut e = self.in_head[m as usize];
            self.in_head[m as usize] = NO_NODE;
            while e != NO_NODE {
                let (src, next) = self.in_arena[e as usize];
                let rs = self.find(src);
                if rs == rep || self.fwd_mark[rs as usize] == stamp {
                    pruned += 1;
                } else {
                    self.fwd_mark[rs as usize] = stamp;
                    kept.push(e);
                }
                e = next;
            }
            m = self.member_next[m as usize];
            if m == rep {
                break;
            }
        }
        // Re-thread the survivors onto the representative's chain (reverse
        // push preserves the scan order, not that any consumer needs it).
        for &e in kept.iter().rev() {
            self.in_arena[e as usize].1 = self.in_head[rep as usize];
            self.in_head[rep as usize] = e;
        }
        self.in_edges_pruned += pruned;
        true
    }

    /// Appends a new singleton component for the next flow index: at the
    /// end of the order, or — when an anchor is set — immediately before
    /// the anchor's component (the exact position a fragment discovered by
    /// an invoke belongs: after the arguments, before the invoke).
    fn add_flow(&mut self) {
        let i = self.parent.len() as u32;
        self.parent.push(i);
        self.csize.push(1);
        self.label.push(0);
        self.ord_next.push(NO_NODE);
        self.ord_prev.push(NO_NODE);
        self.member_next.push(i);
        self.in_head.push(NO_NODE);
        self.in_scan_clean.push(0);
        self.fwd_mark.push(0);
        self.bwd_mark.push(0);
        self.comps += 1;
        self.max_scc_size = self.max_scc_size.max(1);
        if self.anchor != NO_NODE {
            let ra = self.find(self.anchor);
            let prev = self.ord_prev[ra as usize];
            self.place_after(prev, i);
        } else {
            self.place_after(self.ord_tail, i);
        }
    }

    /// Links the unlinked node `x` directly after `a` (`NO_NODE` = at the
    /// head) and assigns it a label strictly between its new neighbours,
    /// making room via a local relabel when the gap is exhausted.
    fn place_after(&mut self, a: u32, x: u32) {
        loop {
            let (lo, b) = if a == NO_NODE {
                (0u64, self.ord_head)
            } else {
                (self.label[a as usize], self.ord_next[a as usize])
            };
            if b == NO_NODE {
                if lo > u64::MAX - LABEL_STRIDE {
                    self.global_relabel();
                    continue;
                }
                self.link_with_label(a, b, x, lo + LABEL_STRIDE);
                return;
            }
            let hi = self.label[b as usize];
            if hi - lo >= 2 {
                self.link_with_label(a, b, x, lo + (hi - lo) / 2);
                return;
            }
            self.make_room_after(a);
        }
    }

    fn link_with_label(&mut self, a: u32, b: u32, x: u32, label: u64) {
        self.label[x as usize] = label;
        self.ord_prev[x as usize] = a;
        self.ord_next[x as usize] = b;
        if a == NO_NODE {
            self.ord_head = x;
        } else {
            self.ord_next[a as usize] = x;
        }
        if b == NO_NODE {
            self.ord_tail = x;
        } else {
            self.ord_prev[b as usize] = x;
        }
    }

    fn unlink(&mut self, x: u32) {
        let p = self.ord_prev[x as usize];
        let n = self.ord_next[x as usize];
        if p == NO_NODE {
            self.ord_head = n;
        } else {
            self.ord_next[p as usize] = n;
        }
        if n == NO_NODE {
            self.ord_tail = p;
        } else {
            self.ord_prev[n as usize] = p;
        }
        self.ord_prev[x as usize] = NO_NODE;
        self.ord_next[x as usize] = NO_NODE;
    }

    /// Re-establishes a usable gap after `a` by respacing a doubling window
    /// of its successors (the list-labeling relabel step); falls back to a
    /// global renumber near the label-space ceiling.
    ///
    /// The window is respaced with **exponential gap spreading** rather than
    /// an even stride: the first gap gets half the reclaimed span, the
    /// second a quarter, and so on (floored at [`RELABEL_MIN_GAP`]). The
    /// pressure that triggered this relabel is always in the gap
    /// immediately after `a` — `place_after(a, _)` bisects exactly there,
    /// and repair chains land every moved component in it — so giving that
    /// gap `span/2` instead of `span/(window+1)` buys
    /// `log2(window+1) − 1` extra insertions per relabeled window, which
    /// compounds into far fewer relabeled components on the
    /// repeatedly-subdivided gaps the fan-out workloads produce.
    fn make_room_after(&mut self, a: u32) {
        let base = if a == NO_NODE { 0 } else { self.label[a as usize] };
        let mut nodes: Vec<u32> = Vec::with_capacity(16);
        let mut cur = if a == NO_NODE {
            self.ord_head
        } else {
            self.ord_next[a as usize]
        };
        let mut want = 8usize;
        loop {
            while nodes.len() < want && cur != NO_NODE {
                nodes.push(cur);
                cur = self.ord_next[cur as usize];
            }
            if cur == NO_NODE {
                // The window reaches the tail: unbounded space above.
                let needed = (nodes.len() as u64 + 2).saturating_mul(LABEL_STRIDE);
                if base > u64::MAX - needed {
                    self.global_relabel();
                    return;
                }
                for (i, &nd) in nodes.iter().enumerate() {
                    self.label[nd as usize] = base + (i as u64 + 1) * LABEL_STRIDE;
                }
                self.relabels += nodes.len() as u64;
                return;
            }
            let span = self.label[cur as usize] - base;
            if span >= (nodes.len() as u64 + 1) * RELABEL_MIN_GAP {
                // Geometric spreading: each gap takes half the remaining
                // span, clamped so every node still to place (and the final
                // gap up to `cur`) keeps at least RELABEL_MIN_GAP. The
                // guard above guarantees `remaining >= (n - i + 1) * MIN`
                // at every iteration, so the clamp bounds are well-formed
                // and the last label lands strictly below `label[cur]`.
                let n = nodes.len() as u64;
                let mut lab = base;
                let mut remaining = span;
                for (i, &nd) in nodes.iter().enumerate() {
                    let after = n - 1 - i as u64;
                    let gap = (remaining / 2)
                        .max(RELABEL_MIN_GAP)
                        .min(remaining - after * RELABEL_MIN_GAP - RELABEL_MIN_GAP);
                    lab += gap;
                    remaining -= gap;
                    self.label[nd as usize] = lab;
                }
                self.relabels += nodes.len() as u64;
                return;
            }
            want *= 2;
        }
    }

    /// Renumbers every live component at [`LABEL_STRIDE`] spacing (rare:
    /// label-space exhaustion only).
    fn global_relabel(&mut self) {
        let mut lab = 0u64;
        let mut cur = self.ord_head;
        while cur != NO_NODE {
            lab += LABEL_STRIDE;
            self.label[cur as usize] = lab;
            self.relabels += 1;
            cur = self.ord_next[cur as usize];
        }
    }

    /// Records the value edge `s → t` and repairs the order if it violates
    /// it (see the type docs for the algorithm).
    fn insert_edge(&mut self, s: FlowId, t: FlowId, uses: &EdgePool, observes: &EdgePool) {
        // In-edge first, so the backward searches and readiness queries of
        // this very repair (and everything after) see it.
        let idx = self.in_arena.len() as u32;
        assert!(idx != NO_NODE, "in-edge arena overflow");
        self.in_arena.push((s.0, self.in_head[t.0 as usize]));
        self.in_head[t.0 as usize] = idx;
        let rs = self.find(s.0);
        let rt = self.find(t.0);
        if rs == rt || self.label[rs as usize] < self.label[rt as usize] {
            return;
        }
        self.repair(rs, rt, uses, observes);
    }

    /// Expands one forward node: pushes every unvisited successor component
    /// of `x` within the window onto `stack`/`seen`. Returns `true` if a
    /// cycle was detected (the search touched `rs` or a backward-marked
    /// component).
    fn expand_fwd(
        &mut self,
        x: u32,
        hi: u64,
        uses: &EdgePool,
        observes: &EdgePool,
        stack: &mut Vec<u32>,
        seen: &mut Vec<u32>,
    ) -> bool {
        let stamp = self.stamp;
        let mut cycle = false;
        let mut m = x;
        loop {
            for pool in [uses, observes] {
                let mut cur = pool.cursor(FlowId(m));
                while let Some(w) = pool.next(&mut cur) {
                    let rw = self.find(w.0);
                    if self.fwd_mark[rw as usize] == stamp || self.label[rw as usize] > hi {
                        continue;
                    }
                    if self.bwd_mark[rw as usize] == stamp {
                        cycle = true;
                    }
                    self.fwd_mark[rw as usize] = stamp;
                    stack.push(rw);
                    seen.push(rw);
                }
            }
            m = self.member_next[m as usize];
            if m == x {
                break;
            }
        }
        cycle
    }

    /// Expands one backward node: pushes every unvisited predecessor
    /// component of `x` within the window. Returns `true` on cycle.
    fn expand_bwd(
        &mut self,
        x: u32,
        lo: u64,
        stack: &mut Vec<u32>,
        seen: &mut Vec<u32>,
    ) -> bool {
        let stamp = self.stamp;
        let mut cycle = false;
        let mut m = x;
        loop {
            let mut e = self.in_head[m as usize];
            while e != NO_NODE {
                let (src, next) = self.in_arena[e as usize];
                e = next;
                let ru = self.find(src);
                if self.bwd_mark[ru as usize] == stamp || self.label[ru as usize] < lo {
                    continue;
                }
                if self.fwd_mark[ru as usize] == stamp {
                    cycle = true;
                }
                self.bwd_mark[ru as usize] = stamp;
                stack.push(ru);
                seen.push(ru);
            }
            m = self.member_next[m as usize];
            if m == x {
                break;
            }
        }
        cycle
    }

    /// Repairs the order after inserting a violating edge whose endpoints'
    /// components are `rs → rt` with `label(rs) ≥ label(rt)`.
    fn repair(&mut self, rs: u32, rt: u32, uses: &EdgePool, observes: &EdgePool) {
        self.repairs += 1;
        let hi = self.label[rs as usize];
        let lo = self.label[rt as usize];
        self.stamp += 1;
        let stamp = self.stamp;
        let mut fwd_stack = std::mem::take(&mut self.fwd_stack);
        let mut bwd_stack = std::mem::take(&mut self.bwd_stack);
        let mut fwd_seen = std::mem::take(&mut self.fwd_seen);
        let mut bwd_seen = std::mem::take(&mut self.bwd_seen);
        fwd_stack.clear();
        bwd_stack.clear();
        fwd_seen.clear();
        bwd_seen.clear();
        self.fwd_mark[rt as usize] = stamp;
        fwd_stack.push(rt);
        fwd_seen.push(rt);
        self.bwd_mark[rs as usize] = stamp;
        bwd_stack.push(rs);
        bwd_seen.push(rs);
        // Lockstep bidirectional expansion: the side that exhausts first is
        // the smaller affected region and the one that moves. Once a cycle
        // is detected both searches run to completion (the collapse needs
        // the full forward and backward regions; both stay bounded by the
        // label window).
        let mut cycle = false;
        let move_fwd = loop {
            if !cycle && fwd_stack.is_empty() {
                break true;
            }
            if !cycle && bwd_stack.is_empty() {
                break false;
            }
            if cycle && fwd_stack.is_empty() && bwd_stack.is_empty() {
                break true; // unused in the cycle case
            }
            if let Some(x) = fwd_stack.pop() {
                cycle |= self.expand_fwd(x, hi, uses, observes, &mut fwd_stack, &mut fwd_seen);
            }
            if !cycle && fwd_stack.is_empty() {
                break true;
            }
            if let Some(x) = bwd_stack.pop() {
                cycle |= self.expand_bwd(x, lo, &mut bwd_stack, &mut bwd_seen);
            }
        };
        if cycle {
            self.collapse(&fwd_seen, &bwd_seen);
        } else if move_fwd {
            // Forward region complete and s unreachable: shift it (in
            // relative order) to directly after rs. Every node of it moves
            // strictly *up*, above label(rs), so edges from unvisited
            // in-window nodes stay satisfied.
            fwd_seen.sort_unstable_by_key(|&x| self.label[x as usize]);
            for &x in &fwd_seen {
                self.unlink(x);
            }
            let mut cursor = rs;
            for &x in &fwd_seen {
                self.place_after(cursor, x);
                cursor = x;
            }
            self.comps_moved += fwd_seen.len() as u64;
        } else {
            // Backward region complete: shift it (in relative order) to
            // directly before rt — strictly *down*, below label(rt).
            bwd_seen.sort_unstable_by_key(|&x| self.label[x as usize]);
            for &x in &bwd_seen {
                self.unlink(x);
            }
            let mut cursor = self.ord_prev[rt as usize];
            for &x in &bwd_seen {
                self.place_after(cursor, x);
                cursor = x;
            }
            self.comps_moved += bwd_seen.len() as u64;
        }
        self.fwd_stack = fwd_stack;
        self.bwd_stack = bwd_stack;
        self.fwd_seen = fwd_seen;
        self.bwd_seen = bwd_seen;
    }

    /// Collapses the cycle the searches found. Components marked by *both*
    /// searches lie on a `t ⇝ s` path and merge into one; the vacated
    /// label slots are re-occupied in the PK pooled style extended with
    /// contraction: the strictly-upstream components take the *lowest*
    /// slots (they only ever move down — safe, because any unvisited
    /// predecessor of them sits below the window), the strictly-downstream
    /// components take the *highest* slots (they only move up — safe
    /// symmetrically), and the merged component takes the slot just below
    /// the downstream block (its unvisited predecessors are below the
    /// window and its unvisited successors above it, so any slot between
    /// the blocks is valid). Slots left over from the contraction simply
    /// fall out of use.
    fn collapse(&mut self, fwd_seen: &[u32], bwd_seen: &[u32]) {
        let stamp = self.stamp;
        // Slots: every visited component, in ascending label order.
        let mut slots: Vec<u32> = Vec::with_capacity(fwd_seen.len() + bwd_seen.len());
        slots.extend_from_slice(fwd_seen);
        slots.extend(
            bwd_seen
                .iter()
                .copied()
                .filter(|&x| self.fwd_mark[x as usize] != stamp),
        );
        slots.sort_unstable_by_key(|&x| self.label[x as usize]);
        let slot_labels: Vec<u64> = slots.iter().map(|&x| self.label[x as usize]).collect();
        // For each slot, the first non-moved list node after it (computed
        // before any unlinking; a moved node's list successor is either a
        // stable node or the next slot in label order).
        let mut stable_next = vec![NO_NODE; slots.len()];
        for i in (0..slots.len()).rev() {
            let nx = self.ord_next[slots[i] as usize];
            stable_next[i] = if i + 1 < slots.len() && nx == slots[i + 1] {
                stable_next[i + 1]
            } else {
                nx
            };
        }
        // Merge the both-marked components (union by size; the circular
        // member lists splice in O(1)).
        let cycle_comps: Vec<u32> = slots
            .iter()
            .copied()
            .filter(|&x| self.fwd_mark[x as usize] == stamp && self.bwd_mark[x as usize] == stamp)
            .collect();
        debug_assert!(cycle_comps.len() >= 2, "a collapse merges at least two components");
        let mut c = cycle_comps[0];
        let mut singleton_flows = 0usize;
        let mut total = 0u32;
        for &x in &cycle_comps {
            if self.csize[x as usize] == 1 {
                singleton_flows += 1;
            }
            total += self.csize[x as usize];
        }
        for &x in &cycle_comps[1..] {
            let (big, small) = if self.csize[c as usize] >= self.csize[x as usize] {
                (c, x)
            } else {
                (x, c)
            };
            self.parent[small as usize] = big;
            self.csize[big as usize] += self.csize[small as usize];
            self.member_next.swap(big as usize, small as usize);
            c = big;
        }
        self.merges += cycle_comps.len() as u64 - 1;
        self.comps -= cycle_comps.len() - 1;
        self.cyclic_flows += singleton_flows;
        self.max_scc_size = self.max_scc_size.max(total as usize);
        // Slot assignment: upstream block at the bottom, downstream block
        // at the top, the merged component directly below the downstream
        // block. `(slot index, occupant)`, ascending by construction.
        let mut upstream: Vec<u32> = bwd_seen
            .iter()
            .copied()
            .filter(|&x| self.fwd_mark[x as usize] != stamp)
            .collect();
        upstream.sort_unstable_by_key(|&x| self.label[x as usize]);
        let mut downstream: Vec<u32> = fwd_seen
            .iter()
            .copied()
            .filter(|&x| self.bwd_mark[x as usize] != stamp)
            .collect();
        downstream.sort_unstable_by_key(|&x| self.label[x as usize]);
        let total_slots = slots.len();
        let down_base = total_slots - downstream.len();
        let mut assignments: Vec<(usize, u32)> = Vec::with_capacity(upstream.len() + 1 + downstream.len());
        assignments.extend(upstream.iter().copied().enumerate());
        assignments.push((down_base - 1, c));
        assignments.extend(
            downstream
                .iter()
                .copied()
                .enumerate()
                .map(|(k, x)| (down_base + k, x)),
        );
        for &x in slots.iter() {
            self.unlink(x);
        }
        for &(i, x) in &assignments {
            let before = stable_next[i];
            let prev = if before == NO_NODE {
                self.ord_tail
            } else {
                self.ord_prev[before as usize]
            };
            self.link_with_label(prev, before, x, slot_labels[i]);
        }
        self.comps_moved += assignments.len() as u64;
    }

    /// Asserts the full order invariant: along every cross-component value
    /// edge the source's label is strictly below the target's, and the
    /// order list is label-sorted. Test/diagnostic helper — O(V + E).
    fn validate(&self, flow_count: usize, uses: &EdgePool, observes: &EdgePool) {
        let mut cur = self.ord_head;
        let mut last = 0u64;
        let mut listed = 0usize;
        while cur != NO_NODE {
            assert!(
                self.label[cur as usize] > last || listed == 0,
                "order list is not label-sorted"
            );
            last = self.label[cur as usize];
            listed += 1;
            cur = self.ord_next[cur as usize];
        }
        assert_eq!(listed, self.comps, "order list out of sync with component count");
        for v in 0..flow_count {
            let f = FlowId(v as u32);
            let lf = self.label_of(f);
            for pool in [uses, observes] {
                let mut cur = pool.cursor(f);
                while let Some(t) = pool.next(&mut cur) {
                    if self.find_ro(f.0) != self.find_ro(t.0) {
                        assert!(
                            lf < self.label_of(t),
                            "value edge {f:?} -> {t:?} violates the online order"
                        );
                    }
                }
            }
        }
    }
}

/// The classification of a branching instruction, used by the paper's
/// counter metrics (Type Checks / Null Checks / Prim Checks).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckCategory {
    /// `instanceof` conditions.
    Type,
    /// Comparisons against a `null` literal (and reference equality).
    Null,
    /// Primitive comparisons.
    Prim,
}

/// Metrics/reporting record for one `if` instruction: the filtering flows
/// whose emptiness decides whether each branch is dead.
#[derive(Clone, Debug)]
pub struct IfRecord {
    /// Block ending with the `if`.
    pub block: BlockId,
    /// Metric category of the check.
    pub category: CheckCategory,
    /// Entry predicate of the then branch (last filter in its chain).
    pub then_pred: FlowId,
    /// Entry predicate of the else branch.
    pub else_pred: FlowId,
}

/// The PVPG fragment of one method, plus reporting metadata.
#[derive(Clone, Debug, Default)]
pub struct MethodGraph {
    /// Parameter flows, receiver first for instance methods.
    pub params: Vec<FlowId>,
    /// The method-return flow (joins all return sites).
    pub ret: Option<FlowId>,
    /// Call sites in source order.
    pub sites: Vec<SiteId>,
    /// All flows created for the method.
    pub flows: Vec<FlowId>,
    /// Per-`if` records for the counter metrics.
    pub ifs: Vec<IfRecord>,
    /// Entry predicate of each basic block (indexed by block id);
    /// block-level liveness = that flow is active.
    pub block_preds: Vec<FlowId>,
    /// One flow per (block, statement) pair for instruction-level liveness,
    /// aligned with the body's statement enumeration.
    pub stmt_flows: Vec<Vec<FlowId>>,
}

/// The whole-program PVPG.
#[derive(Clone, Debug)]
pub struct Pvpg {
    /// Flow arena.
    pub flows: Vec<Flow>,
    /// Call-site arena.
    pub sites: Vec<CallSite>,
    /// Use-edge adjacency.
    pub(crate) uses: EdgePool,
    /// Predicate-edge adjacency.
    pub(crate) preds: EdgePool,
    /// Observe-edge adjacency.
    pub(crate) observes: EdgePool,
    /// The always-enabled predicate.
    pub pred_on: FlowId,
    /// Global pool of thrown exception values.
    pub thrown_sink: FlowId,
    /// Global pool of unsafe-accessed field values.
    pub unsafe_sink: FlowId,
    /// Per-method graphs, created when a method becomes reachable.
    pub methods: BTreeMap<MethodId, MethodGraph>,
    /// Per-field sinks, created on first access.
    field_sinks: HashMap<FieldId, FlowId>,
    /// Dedup set for dynamically added use edges (field/invoke linking).
    dynamic_use_edges: HashSet<(FlowId, FlowId)>,
    /// Online topological order / SCC maintenance over the value-carrying
    /// edges, kept current through every flow and edge mutation. Enabled by
    /// the engine for the schedulers that read priorities
    /// ([`Pvpg::enable_online_order`]); `None` for the FIFO oracle and the
    /// reference solver, which must not pay for it.
    topo: Option<OnlineTopo>,
    /// Value edges added while a construction batch was open (static-field
    /// and unsafe-sink wiring): the online order absorbs them at
    /// [`Pvpg::seal_batch`], when its searches can walk the sealed pools.
    topo_deferred: Vec<(FlowId, FlowId)>,
}

impl Pvpg {
    /// Creates a PVPG containing only the global flows.
    pub fn new() -> Self {
        let mut g = Pvpg {
            flows: Vec::new(),
            sites: Vec::new(),
            uses: EdgePool::default(),
            preds: EdgePool::default(),
            observes: EdgePool::default(),
            pred_on: FlowId(0),
            thrown_sink: FlowId(0),
            unsafe_sink: FlowId(0),
            methods: BTreeMap::new(),
            field_sinks: HashMap::new(),
            dynamic_use_edges: HashSet::new(),
            topo: None,
            topo_deferred: Vec::new(),
        };
        g.pred_on = g.add_flow(Flow::new(FlowKind::PredOn, None, None));
        g.thrown_sink = g.add_flow(Flow::new(FlowKind::ThrownSink, None, None));
        g.unsafe_sink = g.add_flow(Flow::new(FlowKind::UnsafeSink, None, None));
        g
    }

    /// Adds a flow and returns its id. Under the online order the flow is
    /// assigned an exact order position immediately: at the end of the
    /// order, or at the current fragment anchor (see
    /// [`Pvpg::set_fragment_anchor`]).
    pub fn add_flow(&mut self, flow: Flow) -> FlowId {
        let id = FlowId::from_index(self.flows.len());
        self.flows.push(flow);
        if let Some(topo) = self.topo.as_mut() {
            topo.add_flow();
        }
        id
    }

    /// Immutable access to a flow.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.index()]
    }

    /// Mutable access to a flow.
    pub fn flow_mut(&mut self, id: FlowId) -> &mut Flow {
        &mut self.flows[id.index()]
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Adds a call site and returns its id.
    pub fn add_site(&mut self, site: CallSite) -> SiteId {
        let id = SiteId::from_index(self.sites.len());
        self.sites.push(site);
        id
    }

    /// Immutable access to a call site.
    pub fn site(&self, id: SiteId) -> &CallSite {
        &self.sites[id.index()]
    }

    /// Mutable access to a call site.
    pub fn site_mut(&mut self, id: SiteId) -> &mut CallSite {
        &mut self.sites[id.index()]
    }

    /// Adds a use edge `s ⇝use t` (construction-time; caller guarantees no
    /// duplicates). Buffered until [`Pvpg::seal_batch`].
    pub fn add_use(&mut self, s: FlowId, t: FlowId) {
        self.uses.push_pending(s, t);
    }

    /// Adds a use edge with deduplication (for edges discovered during
    /// solving: field accesses and invoke linking); goes straight to the
    /// spill arena. Returns `true` if the edge is new.
    pub fn add_use_dedup(&mut self, s: FlowId, t: FlowId) -> bool {
        if self.dynamic_use_edges.insert((s, t)) {
            let n = self.flows.len();
            self.uses.push_spill(s, t, n);
            if self.uses.pending.is_empty() && self.observes.pending.is_empty() {
                if let Some(topo) = self.topo.as_mut() {
                    topo.insert_edge(s, t, &self.uses, &self.observes);
                }
            } else if self.topo.is_some() {
                // A construction batch is open (static-field / unsafe
                // wiring happens mid-build): the order absorbs the edge
                // at seal time, together with the batch.
                self.topo_deferred.push((s, t));
            }
            true
        } else {
            false
        }
    }

    /// Drops every dynamically discovered use edge with an endpoint in
    /// `invalidated` from the dedup set, so invalidated wiring is
    /// re-discoverable: the next `add_use_dedup` for such a pair reports it
    /// as new again and the caller re-runs its edge-added action
    /// (`push_state`). The physical CSR/spill edges are append-only and stay
    /// — a re-added pair stores a duplicate edge, which is harmless (joins
    /// deduplicate state; the order repair of an existing direction is a
    /// no-op) and bounded by the number of retraction/edit events. Returns
    /// how many pairs were dropped.
    pub fn purge_dynamic_use_edges(&mut self, invalidated: &BitSet) -> usize {
        let before = self.dynamic_use_edges.len();
        self.dynamic_use_edges
            .retain(|&(s, t)| !invalidated.contains(s.index()) && !invalidated.contains(t.index()));
        before - self.dynamic_use_edges.len()
    }

    /// Adds a predicate edge `s ⇝pred t` (construction-time, buffered).
    pub fn add_pred(&mut self, s: FlowId, t: FlowId) {
        self.preds.push_pending(s, t);
    }

    /// Adds an observe edge `s ⇝obs t` (construction-time, buffered).
    pub fn add_observe(&mut self, s: FlowId, t: FlowId) {
        self.observes.push_pending(s, t);
    }

    /// Seals a construction batch: every pending edge whose source is one of
    /// the flows created since `first_flow` is frozen into CSR storage.
    /// Called once per method fragment, right after construction. The online
    /// order (when enabled) absorbs the batch's value edges here — after the
    /// seal, so its searches can walk the CSR pools.
    pub fn seal_batch(&mut self, first_flow: usize) {
        let n = self.flows.len();
        let feed = self
            .topo
            .is_some()
            .then(|| (self.uses.pending.clone(), self.observes.pending.clone()));
        self.uses.seal(first_flow, n);
        self.preds.seal(first_flow, n);
        self.observes.seal(first_flow, n);
        if let (Some(topo), Some((u, o))) = (self.topo.as_mut(), feed) {
            let deferred = std::mem::take(&mut self.topo_deferred);
            for (s, t) in deferred.into_iter().chain(u).chain(o) {
                topo.insert_edge(s, t, &self.uses, &self.observes);
            }
        }
    }

    /// Iterates `f`'s use-edge successors.
    pub fn use_targets(&self, f: FlowId) -> impl Iterator<Item = FlowId> + '_ {
        self.uses.targets(f)
    }

    /// Iterates `f`'s predicate-edge successors.
    pub fn pred_targets(&self, f: FlowId) -> impl Iterator<Item = FlowId> + '_ {
        self.preds.targets(f)
    }

    /// Iterates `f`'s observe-edge successors.
    pub fn observe_targets(&self, f: FlowId) -> impl Iterator<Item = FlowId> + '_ {
        self.observes.targets(f)
    }

    /// The field sink for `field`, created on first request (always enabled:
    /// field state exists independently of any one access site).
    pub fn field_sink(&mut self, field: FieldId) -> FlowId {
        if let Some(&f) = self.field_sinks.get(&field) {
            return f;
        }
        let mut flow = Flow::new(FlowKind::FieldSink { field }, None, None);
        flow.enabled = true;
        let id = self.add_flow(flow);
        self.field_sinks.insert(field, id);
        id
    }

    /// The field sink for `field` if it was ever accessed.
    pub fn field_sink_opt(&self, field: FieldId) -> Option<FlowId> {
        self.field_sinks.get(&field).copied()
    }

    /// The method graph of `m`, if the method has become reachable.
    pub fn method_graph(&self, m: MethodId) -> Option<&MethodGraph> {
        self.methods.get(&m)
    }

    /// Creates an always-enabled injection source bounded by `declared`.
    pub fn add_root_source(&mut self, declared: TypeRef) -> FlowId {
        let mut flow = Flow::new(FlowKind::RootSource { declared }, None, None);
        flow.enabled = true;
        self.add_flow(flow)
    }

    /// Total number of edges of each kind `(use, pred, observe)` — used by
    /// statistics and sanity tests. Counts sealed and spill edges; a batch
    /// must not be open.
    pub fn edge_counts(&self) -> (usize, usize, usize) {
        (self.uses.len(), self.preds.len(), self.observes.len())
    }

    /// Switches on online topological order maintenance (see the
    /// `OnlineTopo` type in this module): every existing flow is appended
    /// in index order,
    /// every existing value edge is absorbed, and from here on each
    /// `add_flow` / edge insertion keeps the order and the SCC partition
    /// exact. Idempotent. Must not be called while a construction batch is
    /// open. Costs a few nanoseconds per subsequent edge insertion, so the
    /// engine only enables it for the schedulers that read priorities — the
    /// FIFO oracle and the reference solver skip it.
    pub fn enable_online_order(&mut self) {
        if self.topo.is_some() {
            return;
        }
        // Absorb the existing graph in one pass: a single Tarjan
        // condensation seeds the union-find, member lists, and labels
        // (priority-spaced, so incremental insertion has full headroom),
        // and one edge sweep builds the in-edge arena. This is the same
        // O(V + E) the adaptive flip used to pay for its lazy priority
        // computation — feeding the edges through `insert_edge` instead
        // would re-discover every back edge with a repair cascade.
        let n = self.flows.len();
        let mut topo = OnlineTopo::new();
        if n > 0 {
            let info = self.compute_sccs();
            // One representative per component: the first member seen.
            let mut rep_of_comp = vec![NO_NODE; info.count as usize];
            topo.parent = vec![0; n];
            topo.csize = vec![0; n];
            topo.label = vec![0; n];
            topo.ord_next = vec![NO_NODE; n];
            topo.ord_prev = vec![NO_NODE; n];
            topo.member_next = vec![NO_NODE; n];
            topo.in_head = vec![NO_NODE; n];
            topo.in_scan_clean = vec![0; n];
            topo.fwd_mark = vec![0; n];
            topo.bwd_mark = vec![0; n];
            for v in 0..n {
                let comp = info.comp[v] as usize;
                let rep = rep_of_comp[comp];
                if rep == NO_NODE {
                    rep_of_comp[comp] = v as u32;
                    topo.parent[v] = v as u32;
                    topo.csize[v] = 1;
                    topo.member_next[v] = v as u32;
                } else {
                    topo.parent[v] = rep;
                    topo.csize[rep as usize] += 1;
                    // Splice v into the rep's circular member list.
                    topo.member_next[v] = topo.member_next[rep as usize];
                    topo.member_next[rep as usize] = v as u32;
                }
            }
            // Link the representatives in priority order with spaced labels.
            let mut order: Vec<u32> = rep_of_comp;
            order.sort_unstable_by_key(|&r| info.priority[r as usize]);
            let mut prev = NO_NODE;
            for (i, &rep) in order.iter().enumerate() {
                topo.label[rep as usize] = (i as u64 + 1) * LABEL_STRIDE;
                topo.ord_prev[rep as usize] = prev;
                if prev == NO_NODE {
                    topo.ord_head = rep;
                } else {
                    topo.ord_next[prev as usize] = rep;
                }
                prev = rep;
            }
            topo.ord_tail = prev;
            topo.comps = info.count as usize;
            topo.cyclic_flows = info.cyclic_flows as usize;
            topo.max_scc_size = (info.max_size as usize).max(usize::from(n > 0));
            for v in 0..n {
                let f = FlowId(v as u32);
                for pool in [&self.uses, &self.observes] {
                    let mut cur = pool.cursor(f);
                    while let Some(t) = pool.next(&mut cur) {
                        let idx = topo.in_arena.len() as u32;
                        assert!(idx != NO_NODE, "in-edge arena overflow");
                        topo.in_arena.push((v as u32, topo.in_head[t.index()]));
                        topo.in_head[t.index()] = idx;
                    }
                }
            }
        }
        self.topo = Some(topo);
    }

    /// Whether the online order is being maintained.
    pub fn online_order_enabled(&self) -> bool {
        self.topo.is_some()
    }

    /// Sets (or clears) the fragment anchor of the online order: while set,
    /// new flows are placed immediately *before* the anchor flow's
    /// component instead of at the end of the order. The engine anchors
    /// mid-solve fragment construction at the discovering invoke flow, so a
    /// callee lands exactly between the call's arguments and its invoke —
    /// the position where the argument/return linking edges are
    /// order-consistent without any repair. No-op when the online order is
    /// disabled.
    pub fn set_fragment_anchor(&mut self, anchor: Option<FlowId>) {
        if let Some(topo) = self.topo.as_mut() {
            topo.anchor = anchor.map_or(NO_NODE, |f| f.0);
        }
    }

    /// The live scheduling priority of `f`: its component's current order
    /// label. Exact at all times — this is what replaced the provisional
    /// bucket adoption of the batch-recompute scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the online order is not enabled.
    pub fn live_label(&self, f: FlowId) -> u64 {
        self.topo
            .as_ref()
            .expect("online order not enabled")
            .label_of(f)
    }

    /// The current order label of `f`, if the online order is enabled.
    pub fn order_key(&self, f: FlowId) -> Option<u64> {
        self.topo.as_ref().map(|t| t.label_of(f))
    }

    /// Whether `f` currently sits in a strongly connected component of
    /// size ≥ 2 (`false` when the online order is disabled).
    pub fn flow_in_cycle(&self, f: FlowId) -> bool {
        self.topo.as_ref().is_some_and(|t| t.in_cycle(f))
    }

    /// Whether `a` and `b` currently share a strongly connected component
    /// (`None` when the online order is disabled).
    pub fn same_component(&self, a: FlowId, b: FlowId) -> Option<bool> {
        self.topo.as_ref().map(|t| t.same_component(a, b))
    }

    /// The current size of `f`'s strongly connected component (`None` when
    /// the online order is disabled).
    pub fn component_size(&self, f: FlowId) -> Option<usize> {
        self.topo.as_ref().map(|t| t.component_size(f))
    }

    /// The online order's maintenance counters (`None` when disabled).
    pub fn order_stats(&self) -> Option<OrderStats> {
        self.topo.as_ref().map(|t| t.stats())
    }

    /// Whether any live condensation predecessor of `member`'s component
    /// satisfies `blocked` — the parallel solver's antichain readiness
    /// query, answered from the in-edge lists the online order maintains
    /// (exact as of the last inserted edge; no extraction step, no
    /// staleness window). At most `budget` in-edge entries are examined per
    /// scan; an exhausted budget triggers a lazy in-place dedup of the
    /// component's lists and one retry (hence `&mut self`), and only a
    /// still-over-budget *deduplicated* list conservatively reports
    /// blocked (the dedup itself is `OnlineTopo::component_blocked`).
    ///
    /// # Panics
    ///
    /// Panics if the online order is not enabled.
    pub fn component_blocked(
        &mut self,
        member: FlowId,
        budget: usize,
        blocked: impl FnMut(u64) -> bool,
    ) -> bool {
        self.topo
            .as_mut()
            .expect("online order not enabled")
            .component_blocked(member, budget, blocked)
    }

    /// Asserts the online order invariant over the whole graph (label-sorted
    /// order list; every cross-component value edge goes label-upward).
    /// O(V + E) — a test and diagnostics helper, also the "exact priorities
    /// at all times" regression oracle. No-op when the online order is
    /// disabled; must not be called while a construction batch is open.
    pub fn assert_valid_order(&self) {
        if let Some(topo) = &self.topo {
            topo.validate(self.flows.len(), &self.uses, &self.observes);
        }
    }

    /// Computes the strongly connected components of the PVPG over the use
    /// and observe edges with an iterative Tarjan walk, and derives the
    /// condensation-topological priority of every flow (see [`SccInfo`] for
    /// why predicate edges are excluded).
    ///
    /// Implicit engine dependencies that are *not* materialized as edges
    /// (type-subscriber injections, saturated-site re-dispatch) are absent
    /// here by design: scheduling is a heuristic and missing edges only cost
    /// re-processing, never correctness.
    ///
    /// Must not be called while a construction batch is open.
    pub fn compute_sccs(&self) -> SccInfo {
        const UNVISITED: u32 = u32::MAX;
        let n = self.flows.len();
        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut comp = vec![UNVISITED; n];
        let mut scc_stack: Vec<u32> = Vec::new();
        // DFS frame: (flow, pool 0..=2, cursor into that pool).
        let mut frames: Vec<(u32, u8, EdgeCursor)> = Vec::new();
        let mut next_index = 0u32;
        let mut comp_count = 0u32;
        let mut comp_sizes: Vec<u32> = Vec::new();

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            scc_stack.push(root as u32);
            on_stack[root] = true;
            frames.push((root as u32, 0, self.uses.cursor(FlowId(root as u32))));
            while let Some(frame) = frames.last_mut() {
                let v = frame.0 as usize;
                // Advance to the next successor, falling through the pools
                // in use → observe order (predicate edges excluded; see SccInfo).
                let mut succ = None;
                loop {
                    let pool = match frame.1 {
                        0 => &self.uses,
                        1 => &self.observes,
                        _ => break,
                    };
                    if let Some(t) = pool.next(&mut frame.2) {
                        succ = Some(t);
                        break;
                    }
                    frame.1 += 1;
                    if frame.1 == 1 {
                        frame.2 = self.observes.cursor(FlowId(v as u32));
                    }
                }
                match succ {
                    Some(w) => {
                        let w = w.index();
                        if index[w] == UNVISITED {
                            index[w] = next_index;
                            lowlink[w] = next_index;
                            next_index += 1;
                            scc_stack.push(w as u32);
                            on_stack[w] = true;
                            frames.push((w as u32, 0, self.uses.cursor(FlowId(w as u32))));
                        } else if on_stack[w] {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    None => {
                        frames.pop();
                        if let Some(parent) = frames.last() {
                            let p = parent.0 as usize;
                            lowlink[p] = lowlink[p].min(lowlink[v]);
                        }
                        if lowlink[v] == index[v] {
                            let mut size = 0u32;
                            loop {
                                let w = scc_stack.pop().expect("SCC stack underflow") as usize;
                                on_stack[w] = false;
                                comp[w] = comp_count;
                                size += 1;
                                if w == v {
                                    break;
                                }
                            }
                            comp_sizes.push(size);
                            comp_count += 1;
                        }
                    }
                }
            }
        }

        // Tarjan completes an SCC only after every SCC reachable from it, so
        // completion order is reverse topological; flip it into a priority.
        let mut priority = vec![0u32; n];
        let mut cyclic = vec![false; n];
        let mut cyclic_flows = 0u32;
        for f in 0..n {
            priority[f] = comp_count - 1 - comp[f];
            if comp_sizes[comp[f] as usize] >= 2 {
                cyclic[f] = true;
                cyclic_flows += 1;
            }
        }
        SccInfo {
            comp,
            priority,
            cyclic,
            count: comp_count,
            max_size: comp_sizes.iter().copied().max().unwrap_or(0),
            cyclic_flows,
        }
    }
}

impl Default for Pvpg {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_has_global_flows() {
        let g = Pvpg::new();
        assert_eq!(g.flow_count(), 3);
        assert!(matches!(g.flow(g.pred_on).kind, FlowKind::PredOn));
        assert!(matches!(g.flow(g.thrown_sink).kind, FlowKind::ThrownSink));
        assert!(matches!(g.flow(g.unsafe_sink).kind, FlowKind::UnsafeSink));
    }

    #[test]
    fn field_sinks_are_created_once() {
        let mut g = Pvpg::new();
        let f = FieldId::from_index(0);
        let a = g.field_sink(f);
        let b = g.field_sink(f);
        assert_eq!(a, b);
        assert!(g.flow(a).enabled);
        assert_eq!(g.field_sink_opt(FieldId::from_index(1)), None);
    }

    #[test]
    fn dynamic_use_edges_deduplicate() {
        let mut g = Pvpg::new();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        assert!(g.add_use_dedup(a, b));
        assert!(!g.add_use_dedup(a, b));
        assert_eq!(g.use_targets(a).count(), 1);
    }

    #[test]
    fn edge_counts_sum_all_kinds() {
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        assert!(g.uses.is_empty());
        g.add_use(a, b);
        g.add_pred(a, b);
        g.add_pred(b, a);
        g.add_observe(a, b);
        g.seal_batch(first);
        assert_eq!(g.edge_counts(), (1, 2, 1));
        assert!(!g.uses.is_empty());
    }

    #[test]
    fn sealed_and_spill_edges_iterate_in_order() {
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let c = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.add_use(a, b);
        g.add_use(a, c);
        g.seal_batch(first);
        // Dynamic edges land in the spill list after the CSR range.
        assert!(g.add_use_dedup(a, a));
        let targets: Vec<FlowId> = g.use_targets(a).collect();
        assert_eq!(targets, vec![b, c, a]);
        // A second sealed batch for new flows leaves old ranges intact.
        let first2 = g.flow_count();
        let d = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.add_use(d, a);
        g.seal_batch(first2);
        assert_eq!(g.use_targets(a).collect::<Vec<_>>(), vec![b, c, a]);
        assert_eq!(g.use_targets(d).collect::<Vec<_>>(), vec![a]);
        assert_eq!(g.edge_counts(), (4, 0, 0));
    }

    #[test]
    fn sccs_follow_topological_priorities() {
        // a → b → c with a back edge c → b: {a} and {b, c} are the SCCs and
        // a's priority is strictly lower.
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let c = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.add_use(a, b);
        g.add_use(b, c);
        g.add_observe(c, b); // cycles may span use and observe edges
        g.seal_batch(first);
        let info = g.compute_sccs();
        assert_eq!(info.comp[b.index()], info.comp[c.index()]);
        assert_ne!(info.comp[a.index()], info.comp[b.index()]);
        assert!(info.priority[a.index()] < info.priority[b.index()]);
        assert_eq!(info.priority[b.index()], info.priority[c.index()]);
        assert!(info.cyclic[b.index()] && info.cyclic[c.index()]);
        assert!(!info.cyclic[a.index()]);
        assert_eq!(info.cyclic_flows, 2);
        assert_eq!(info.max_size, 2);
    }

    #[test]
    fn scc_priorities_respect_spill_edges() {
        // An edge added after sealing (the dynamic-linking path) must still
        // order its endpoints.
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.seal_batch(first);
        assert!(g.add_use_dedup(a, b));
        let info = g.compute_sccs();
        assert!(info.priority[a.index()] < info.priority[b.index()]);
        assert_eq!(info.count as usize, g.flow_count());
    }

    fn phi(g: &mut Pvpg) -> FlowId {
        g.add_flow(Flow::new(FlowKind::Phi, None, None))
    }

    #[test]
    fn online_order_labels_ascend_along_edges() {
        let mut g = Pvpg::new();
        g.enable_online_order();
        let first = g.flow_count();
        let a = phi(&mut g);
        let b = phi(&mut g);
        let c = phi(&mut g);
        g.add_use(a, b);
        g.add_observe(b, c);
        g.seal_batch(first);
        assert!(g.order_key(a) < g.order_key(b));
        assert!(g.order_key(b) < g.order_key(c));
        g.assert_valid_order();
        let stats = g.order_stats().unwrap();
        assert_eq!(stats.comps, g.flow_count());
        assert_eq!(stats.repairs, 0, "creation-order edges need no repair");
    }

    #[test]
    fn online_order_repairs_violating_dynamic_edges() {
        // Flows in creation order a, b with the edge b → a inserted
        // dynamically: the repair must reorder them, exactly.
        let mut g = Pvpg::new();
        g.enable_online_order();
        let first = g.flow_count();
        let a = phi(&mut g);
        let b = phi(&mut g);
        g.seal_batch(first);
        assert!(g.order_key(a) < g.order_key(b));
        assert!(g.add_use_dedup(b, a));
        assert!(g.order_key(b) < g.order_key(a), "the repair reordered b before a");
        g.assert_valid_order();
        let stats = g.order_stats().unwrap();
        assert_eq!(stats.repairs, 1);
        assert!(stats.comps_moved >= 1);
        assert_eq!(stats.merges, 0);
    }

    #[test]
    fn online_order_collapses_cycles_into_one_component() {
        // a → b → c sealed, then c → a dynamically: one 3-flow SCC, with
        // an upstream u → a and downstream c → d staying ordered around it.
        let mut g = Pvpg::new();
        g.enable_online_order();
        let first = g.flow_count();
        let u = phi(&mut g);
        let a = phi(&mut g);
        let b = phi(&mut g);
        let c = phi(&mut g);
        let d = phi(&mut g);
        g.add_use(u, a);
        g.add_use(a, b);
        g.add_observe(b, c); // cycles may span use and observe edges
        g.add_use(c, d);
        g.seal_batch(first);
        assert!(g.add_use_dedup(c, a));
        for (x, y) in [(a, b), (b, c), (a, c)] {
            assert_eq!(g.same_component(x, y), Some(true));
        }
        assert_eq!(g.same_component(u, a), Some(false));
        assert_eq!(g.same_component(c, d), Some(false));
        assert_eq!(g.component_size(a), Some(3));
        assert!(g.flow_in_cycle(b) && !g.flow_in_cycle(u) && !g.flow_in_cycle(d));
        assert!(g.order_key(u) < g.order_key(a));
        assert!(g.order_key(c) < g.order_key(d));
        g.assert_valid_order();
        let stats = g.order_stats().unwrap();
        assert_eq!(stats.merges, 2, "three components united");
        assert_eq!(stats.cyclic_flows, 3);
        assert_eq!(stats.max_scc_size, 3);
        assert_eq!(stats.comps, g.flow_count() - 2);
        // Growing the SCC later keeps membership and order exact.
        assert!(g.add_use_dedup(d, b));
        assert_eq!(g.component_size(d), Some(4));
        assert!(g.flow_in_cycle(d));
        g.assert_valid_order();
    }

    #[test]
    fn online_order_anchored_flows_sit_before_their_anchor() {
        // The engine anchors mid-solve fragments at the discovering invoke:
        // new flows must land directly below the anchor, so the fragment's
        // argument/return wiring is order-consistent without repairs.
        let mut g = Pvpg::new();
        g.enable_online_order();
        let first = g.flow_count();
        let arg = phi(&mut g);
        let invoke = phi(&mut g);
        g.add_use(arg, invoke);
        g.seal_batch(first);
        g.set_fragment_anchor(Some(invoke));
        let param = phi(&mut g);
        let ret = phi(&mut g);
        g.set_fragment_anchor(None);
        assert!(g.order_key(arg) < g.order_key(param));
        assert!(g.order_key(param) < g.order_key(ret));
        assert!(g.order_key(ret) < g.order_key(invoke));
        // The canonical linking edges are forward — no repairs needed.
        assert!(g.add_use_dedup(arg, param));
        assert!(g.add_use_dedup(ret, invoke));
        assert_eq!(g.order_stats().unwrap().repairs, 0);
        g.assert_valid_order();
    }

    #[test]
    fn online_order_survives_dense_insertions_at_one_gap() {
        // Hammer one gap (every flow anchored before the same target) until
        // the list-labeling scheme must relabel; the order stays exact.
        let mut g = Pvpg::new();
        g.enable_online_order();
        let anchor = phi(&mut g);
        let mut prev = None;
        for _ in 0..200 {
            g.set_fragment_anchor(Some(anchor));
            let f = phi(&mut g);
            g.set_fragment_anchor(None);
            assert!(g.order_key(f) < g.order_key(anchor));
            if let Some(p) = prev {
                // Later insertions land closer to the anchor.
                assert!(g.order_key(p) < g.order_key(f));
            }
            prev = Some(f);
        }
        assert!(
            g.order_stats().unwrap().relabels > 0,
            "200 insertions into one gap must exhaust midpoints"
        );
        g.assert_valid_order();
    }

    #[test]
    fn windowed_relabel_spreads_gaps_geometrically() {
        // The bounded-window branch of `make_room_after`: the anchor has
        // enough successors that relabels respace a window *between* nodes
        // (span clamped by `cur`'s label) instead of walking off the tail.
        // The geometric spreading must keep every label strictly ordered,
        // keep the window's successors above the insertion point, and never
        // disturb nodes beyond the window's clamp. (The churn *drop* is
        // asserted at workload scale in
        // `tests/delta_vs_reference.rs::windowed_relabel_churn_stays_low_on_the_fanout_corpus`,
        // where repair chains produce the repeatedly-subdivided gaps.)
        let mut g = Pvpg::new();
        g.enable_online_order();
        let anchor = phi(&mut g);
        let tail: Vec<FlowId> = (0..16).map(|_| phi(&mut g)).collect();
        let mut prev = None;
        for _ in 0..600 {
            g.set_fragment_anchor(Some(anchor));
            let f = phi(&mut g);
            g.set_fragment_anchor(None);
            assert!(g.order_key(f) < g.order_key(anchor));
            if let Some(p) = prev {
                assert!(g.order_key(p) < g.order_key(f));
            }
            prev = Some(f);
        }
        assert!(g.order_key(anchor) < g.order_key(tail[0]));
        for w in tail.windows(2) {
            assert!(g.order_key(w[0]) < g.order_key(w[1]), "tail order preserved");
        }
        let relabels = g.order_stats().unwrap().relabels;
        assert!(relabels > 0, "600 insertions into one gap must relabel");
        g.assert_valid_order();
    }

    #[test]
    fn enable_online_order_absorbs_an_existing_graph() {
        // Enabling on an already-built graph (the engine enables before
        // bootstrap, but the structure must not depend on that).
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = phi(&mut g);
        let b = phi(&mut g);
        let c = phi(&mut g);
        g.add_use(b, c);
        g.add_use(c, b); // pre-existing cycle
        g.add_use(c, a); // pre-existing violation of creation order
        g.seal_batch(first);
        assert!(g.order_key(a).is_none(), "disabled until requested");
        g.enable_online_order();
        assert_eq!(g.same_component(b, c), Some(true));
        assert!(g.order_key(c) < g.order_key(a));
        g.assert_valid_order();
        // Idempotent.
        let stats = g.order_stats().unwrap();
        g.enable_online_order();
        assert_eq!(g.order_stats().unwrap(), stats);
    }

    #[test]
    fn cursor_survives_concurrent_spill_growth() {
        let mut g = Pvpg::new();
        let first = g.flow_count();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.add_use(a, b);
        g.seal_batch(first);
        g.add_use_dedup(a, b);
        let mut cur = g.uses.cursor(a);
        let mut seen = Vec::new();
        while let Some(t) = g.uses.next(&mut cur) {
            seen.push(t);
            // New edges appended mid-iteration must not invalidate the
            // cursor (they prepend to the spill head, before the snapshot).
            let n = g.flow_count();
            g.uses.push_spill(a, a, n);
        }
        assert_eq!(seen, vec![b, b]);
    }
}
