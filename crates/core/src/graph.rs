//! The predicated value propagation graph (PVPG): flow arena, the three
//! edge kinds, call sites, field sinks, and per-method graph summaries.

use crate::flow::{CallSite, Flow, FlowId, FlowKind, SiteId};
use skipflow_ir::{BlockId, FieldId, MethodId, TypeRef};
use std::collections::{BTreeMap, HashMap, HashSet};

/// The classification of a branching instruction, used by the paper's
/// counter metrics (Type Checks / Null Checks / Prim Checks).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckCategory {
    /// `instanceof` conditions.
    Type,
    /// Comparisons against a `null` literal (and reference equality).
    Null,
    /// Primitive comparisons.
    Prim,
}

/// Metrics/reporting record for one `if` instruction: the filtering flows
/// whose emptiness decides whether each branch is dead.
#[derive(Clone, Debug)]
pub struct IfRecord {
    /// Block ending with the `if`.
    pub block: BlockId,
    /// Metric category of the check.
    pub category: CheckCategory,
    /// Entry predicate of the then branch (last filter in its chain).
    pub then_pred: FlowId,
    /// Entry predicate of the else branch.
    pub else_pred: FlowId,
}

/// The PVPG fragment of one method, plus reporting metadata.
#[derive(Clone, Debug, Default)]
pub struct MethodGraph {
    /// Parameter flows, receiver first for instance methods.
    pub params: Vec<FlowId>,
    /// The method-return flow (joins all return sites).
    pub ret: Option<FlowId>,
    /// Call sites in source order.
    pub sites: Vec<SiteId>,
    /// All flows created for the method.
    pub flows: Vec<FlowId>,
    /// Per-`if` records for the counter metrics.
    pub ifs: Vec<IfRecord>,
    /// Entry predicate of each basic block (indexed by block id);
    /// block-level liveness = that flow is active.
    pub block_preds: Vec<FlowId>,
    /// One flow per (block, statement) pair for instruction-level liveness,
    /// aligned with the body's statement enumeration.
    pub stmt_flows: Vec<Vec<FlowId>>,
}

/// The whole-program PVPG.
#[derive(Clone, Debug)]
pub struct Pvpg {
    /// Flow arena.
    pub flows: Vec<Flow>,
    /// Call-site arena.
    pub sites: Vec<CallSite>,
    /// The always-enabled predicate.
    pub pred_on: FlowId,
    /// Global pool of thrown exception values.
    pub thrown_sink: FlowId,
    /// Global pool of unsafe-accessed field values.
    pub unsafe_sink: FlowId,
    /// Per-method graphs, created when a method becomes reachable.
    pub methods: BTreeMap<MethodId, MethodGraph>,
    /// Per-field sinks, created on first access.
    field_sinks: HashMap<FieldId, FlowId>,
    /// Dedup set for dynamically added use edges (field/invoke linking).
    dynamic_use_edges: HashSet<(FlowId, FlowId)>,
}

impl Pvpg {
    /// Creates a PVPG containing only the global flows.
    pub fn new() -> Self {
        let mut g = Pvpg {
            flows: Vec::new(),
            sites: Vec::new(),
            pred_on: FlowId(0),
            thrown_sink: FlowId(0),
            unsafe_sink: FlowId(0),
            methods: BTreeMap::new(),
            field_sinks: HashMap::new(),
            dynamic_use_edges: HashSet::new(),
        };
        g.pred_on = g.add_flow(Flow::new(FlowKind::PredOn, None, None));
        g.thrown_sink = g.add_flow(Flow::new(FlowKind::ThrownSink, None, None));
        g.unsafe_sink = g.add_flow(Flow::new(FlowKind::UnsafeSink, None, None));
        g
    }

    /// Adds a flow and returns its id.
    pub fn add_flow(&mut self, flow: Flow) -> FlowId {
        let id = FlowId::from_index(self.flows.len());
        self.flows.push(flow);
        id
    }

    /// Immutable access to a flow.
    pub fn flow(&self, id: FlowId) -> &Flow {
        &self.flows[id.index()]
    }

    /// Mutable access to a flow.
    pub fn flow_mut(&mut self, id: FlowId) -> &mut Flow {
        &mut self.flows[id.index()]
    }

    /// Number of flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Adds a call site and returns its id.
    pub fn add_site(&mut self, site: CallSite) -> SiteId {
        let id = SiteId::from_index(self.sites.len());
        self.sites.push(site);
        id
    }

    /// Immutable access to a call site.
    pub fn site(&self, id: SiteId) -> &CallSite {
        &self.sites[id.index()]
    }

    /// Mutable access to a call site.
    pub fn site_mut(&mut self, id: SiteId) -> &mut CallSite {
        &mut self.sites[id.index()]
    }

    /// Adds a use edge `s ⇝use t` (construction-time; caller guarantees
    /// no duplicates).
    pub fn add_use(&mut self, s: FlowId, t: FlowId) {
        self.flows[s.index()].uses.push(t);
    }

    /// Adds a use edge with deduplication (for edges discovered during
    /// solving: field accesses and invoke linking). Returns `true` if the
    /// edge is new.
    pub fn add_use_dedup(&mut self, s: FlowId, t: FlowId) -> bool {
        if self.dynamic_use_edges.insert((s, t)) {
            self.flows[s.index()].uses.push(t);
            true
        } else {
            false
        }
    }

    /// Adds a predicate edge `s ⇝pred t`.
    pub fn add_pred(&mut self, s: FlowId, t: FlowId) {
        self.flows[s.index()].pred_out.push(t);
    }

    /// Adds an observe edge `s ⇝obs t`.
    pub fn add_observe(&mut self, s: FlowId, t: FlowId) {
        self.flows[s.index()].observers.push(t);
    }

    /// The field sink for `field`, created on first request (always enabled:
    /// field state exists independently of any one access site).
    pub fn field_sink(&mut self, field: FieldId) -> FlowId {
        if let Some(&f) = self.field_sinks.get(&field) {
            return f;
        }
        let mut flow = Flow::new(FlowKind::FieldSink { field }, None, None);
        flow.enabled = true;
        let id = self.add_flow(flow);
        self.field_sinks.insert(field, id);
        id
    }

    /// The field sink for `field` if it was ever accessed.
    pub fn field_sink_opt(&self, field: FieldId) -> Option<FlowId> {
        self.field_sinks.get(&field).copied()
    }

    /// The method graph of `m`, if the method has become reachable.
    pub fn method_graph(&self, m: MethodId) -> Option<&MethodGraph> {
        self.methods.get(&m)
    }

    /// Creates an always-enabled injection source bounded by `declared`.
    pub fn add_root_source(&mut self, declared: TypeRef) -> FlowId {
        let mut flow = Flow::new(FlowKind::RootSource { declared }, None, None);
        flow.enabled = true;
        self.add_flow(flow)
    }

    /// Total number of edges of each kind `(use, pred, observe)` — used by
    /// statistics and sanity tests.
    pub fn edge_counts(&self) -> (usize, usize, usize) {
        let mut u = 0;
        let mut p = 0;
        let mut o = 0;
        for f in &self.flows {
            u += f.uses.len();
            p += f.pred_out.len();
            o += f.observers.len();
        }
        (u, p, o)
    }
}

impl Default for Pvpg {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_graph_has_global_flows() {
        let g = Pvpg::new();
        assert_eq!(g.flow_count(), 3);
        assert!(matches!(g.flow(g.pred_on).kind, FlowKind::PredOn));
        assert!(matches!(g.flow(g.thrown_sink).kind, FlowKind::ThrownSink));
        assert!(matches!(g.flow(g.unsafe_sink).kind, FlowKind::UnsafeSink));
    }

    #[test]
    fn field_sinks_are_created_once() {
        let mut g = Pvpg::new();
        let f = FieldId::from_index(0);
        let a = g.field_sink(f);
        let b = g.field_sink(f);
        assert_eq!(a, b);
        assert!(g.flow(a).enabled);
        assert_eq!(g.field_sink_opt(FieldId::from_index(1)), None);
    }

    #[test]
    fn dynamic_use_edges_deduplicate() {
        let mut g = Pvpg::new();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        assert!(g.add_use_dedup(a, b));
        assert!(!g.add_use_dedup(a, b));
        assert_eq!(g.flow(a).uses.len(), 1);
    }

    #[test]
    fn edge_counts_sum_all_kinds() {
        let mut g = Pvpg::new();
        let a = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        let b = g.add_flow(Flow::new(FlowKind::Phi, None, None));
        g.add_use(a, b);
        g.add_pred(a, b);
        g.add_pred(b, a);
        g.add_observe(a, b);
        assert_eq!(g.edge_counts(), (1, 2, 1));
    }
}
