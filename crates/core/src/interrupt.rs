//! Interruptible solves: budgets, cooperative cancellation, and the
//! partial-result vocabulary.
//!
//! A solve no longer has to run to completion: [`crate::AnalysisConfig`]
//! carries optional step/wall/memory budgets, and
//! [`crate::AnalysisSession::solve_interruptible`] additionally accepts a
//! [`CancelToken`] that another thread may trip at any time. The engine
//! checks both at a bounded stride between worklist steps (including inside
//! parallel antichain rounds), and an exhausted budget or a tripped token
//! surfaces as [`SolveOutcome::Interrupted`] — *not* an error: the partial
//! snapshot it carries is a sound under-approximation of the final fixpoint
//! (every propagated fact is a fact of the least fixpoint; monotonicity
//! means nothing ever has to be retracted), queries on it are answerable and
//! tagged [`Completeness::Partial`], and the next solve resumes from exactly
//! where the interrupt stopped via the ordinary resume machinery — see the
//! "Interrupt safety" notes at the top of `engine.rs`.

use crate::report::AnalysisSnapshot;
use skipflow_modelcheck::sync::atomic::{AtomicBool, Ordering};
use skipflow_modelcheck::sync::Arc;
use std::fmt;
use std::time::Duration;

/// A cooperative cancellation token: a shared flag the solver polls at a
/// bounded stride. Cloning is cheap (an `Arc<AtomicBool>` handle); trip it
/// from any thread with [`CancelToken::cancel`] and the in-flight
/// [`solve_interruptible`](crate::AnalysisSession::solve_interruptible)
/// returns [`SolveOutcome::Interrupted`] with
/// [`InterruptReason::Cancelled`] within one check stride.
///
/// The token is level-triggered, not an event: it stays tripped until
/// [`CancelToken::reset`], so a token tripped *before* the first step
/// interrupts immediately, and re-using a tripped token keeps interrupting.
///
/// # Threading
///
/// `CancelToken` is `Clone + Send + Sync`, and every clone shares one flag.
/// The server-grade pattern is one token per solving thread: the solver
/// thread passes `Some(&token)` to
/// [`solve_interruptible`](crate::AnalysisSession::solve_interruptible)
/// while request handlers hold clones and call [`CancelToken::cancel`] from
/// their own threads; the solve observes the trip within one check stride.
/// Because the token is level-triggered, the *solving* thread should own the
/// [`CancelToken::reset`] (typically just before each solve) — resetting
/// from a requester's thread races a concurrent cancel of the in-flight
/// solve. All flag accesses are relaxed atomics: the token orders nothing
/// but itself, which is all cancellation needs.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token: the next stride check of any solve polling it
    /// returns [`InterruptReason::Cancelled`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Clears the token so it can gate another solve.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }

    /// Whether the token is currently tripped.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The shared flag itself, for callers that already coordinate on a raw
    /// `Arc<AtomicBool>`.
    pub fn as_flag(&self) -> &Arc<AtomicBool> {
        &self.flag
    }
}

impl From<Arc<AtomicBool>> for CancelToken {
    fn from(flag: Arc<AtomicBool>) -> Self {
        CancelToken { flag }
    }
}

/// Why a solve stopped before reaching the fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterruptReason {
    /// The [`CancelToken`] passed to the solve was tripped.
    Cancelled,
    /// The solve executed its configured per-solve step budget
    /// ([`crate::AnalysisConfig::with_step_budget`]).
    StepBudget {
        /// The configured budget (worklist steps per solve).
        budget: u64,
    },
    /// The solve ran longer than its configured wall-clock budget
    /// ([`crate::AnalysisConfig::with_wall_budget`]). Checked at the stride,
    /// so the overshoot is bounded by one stride of steps.
    WallBudget {
        /// The configured budget.
        budget: Duration,
    },
    /// The engine's estimated memory footprint exceeded the configured
    /// budget ([`crate::AnalysisConfig::with_memory_budget`]).
    MemoryBudget {
        /// The configured budget in bytes.
        budget_bytes: usize,
        /// The estimate that tripped it.
        estimated_bytes: usize,
    },
}

impl fmt::Display for InterruptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterruptReason::Cancelled => write!(f, "cancel token tripped"),
            InterruptReason::StepBudget { budget } => {
                write!(f, "step budget exhausted ({budget} steps)")
            }
            InterruptReason::WallBudget { budget } => {
                write!(f, "wall-clock budget exhausted ({budget:?})")
            }
            InterruptReason::MemoryBudget {
                budget_bytes,
                estimated_bytes,
            } => write!(
                f,
                "memory budget exhausted (estimated {estimated_bytes} bytes > budget {budget_bytes})"
            ),
        }
    }
}

/// How a [`solve_interruptible`](crate::AnalysisSession::solve_interruptible)
/// call ended.
///
/// Both arms carry a queryable [`AnalysisSnapshot`]; an interrupted solve is
/// a checkpoint, not a failure. Match on it, or use
/// [`SolveOutcome::snapshot`] when only the (possibly partial) view matters.
#[derive(Debug)]
pub enum SolveOutcome<'s> {
    /// The fixpoint was reached; the snapshot is the complete result.
    Completed(AnalysisSnapshot<'s>),
    /// A budget or the cancel token stopped the solve between worklist
    /// steps. The partial snapshot is a sound under-approximation of the
    /// final fixpoint (its queries answer [`Completeness::Partial`]), and
    /// the next solve on the same session resumes from this exact point.
    Interrupted {
        /// What stopped the solve.
        reason: InterruptReason,
        /// The checkpointed state, queryable like any snapshot.
        partial: AnalysisSnapshot<'s>,
    },
}

impl<'s> SolveOutcome<'s> {
    /// The snapshot either way (partial when interrupted).
    pub fn snapshot(&self) -> AnalysisSnapshot<'s> {
        match self {
            SolveOutcome::Completed(s) => *s,
            SolveOutcome::Interrupted { partial, .. } => *partial,
        }
    }

    /// Whether the solve was interrupted before reaching the fixpoint.
    pub fn is_interrupted(&self) -> bool {
        matches!(self, SolveOutcome::Interrupted { .. })
    }

    /// The interrupt reason, if the solve was interrupted.
    pub fn interrupt_reason(&self) -> Option<InterruptReason> {
        match self {
            SolveOutcome::Completed(_) => None,
            SolveOutcome::Interrupted { reason, .. } => Some(*reason),
        }
    }
}

/// Whether a result view reflects the full fixpoint or an interrupted
/// checkpoint — reported by
/// [`CallGraphQuery::completeness`](crate::CallGraphQuery::completeness) and
/// by [`AnalysisSnapshot::completeness`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Completeness {
    /// The least fixpoint over every accepted root was reached; queries are
    /// exact (for the configured abstraction).
    #[default]
    Complete,
    /// The view is a checkpoint of an unfinished solve: everything it
    /// reports (reachable methods, value states, call edges) is true of the
    /// final fixpoint, but more may be discovered by resuming — a sound
    /// under-approximation.
    Partial,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_trips_and_resets() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        let clone = t.clone();
        clone.cancel();
        assert!(t.is_cancelled(), "clones share the flag");
        t.reset();
        assert!(!clone.is_cancelled());
        let raw: Arc<AtomicBool> = Arc::new(AtomicBool::new(true));
        let from_raw = CancelToken::from(raw);
        assert!(from_raw.is_cancelled());
    }

    /// The server-grade contract: a token crosses threads freely, a clone
    /// tripped on one thread is observed as cancelled on another, and the
    /// solving thread can reset it for the next solve.
    #[test]
    fn cancel_token_cross_thread_trip_and_reset() {
        fn assert_send_sync<T: Send + Sync + Clone + 'static>() {}
        assert_send_sync::<CancelToken>();

        let token = CancelToken::new();
        let remote = token.clone();
        std::thread::spawn(move || remote.cancel())
            .join()
            .expect("cancelling thread");
        assert!(token.is_cancelled(), "trip from another thread is visible");

        let solver_side = token.clone();
        std::thread::spawn(move || {
            assert!(solver_side.is_cancelled(), "cancelled state crosses threads");
            solver_side.reset();
        })
        .join()
        .expect("resetting thread");
        assert!(!token.is_cancelled(), "reset from another thread is visible");
    }

    #[test]
    fn interrupt_reasons_display() {
        assert!(InterruptReason::Cancelled.to_string().contains("cancel"));
        assert!(InterruptReason::StepBudget { budget: 7 }.to_string().contains('7'));
        let w = InterruptReason::WallBudget {
            budget: Duration::from_millis(5),
        };
        assert!(w.to_string().contains("wall"));
        let m = InterruptReason::MemoryBudget {
            budget_bytes: 10,
            estimated_bytes: 99,
        };
        let msg = m.to_string();
        assert!(msg.contains("99") && msg.contains("10"), "{msg}");
    }
}
