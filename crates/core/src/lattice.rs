//! The value lattice of SkipFlow (paper §3 Figure 6, Appendix B.2 Figure 11).
//!
//! Value states combine two abstractions:
//!
//! * **primitive values** from the lattice `P`: `Empty ⊑ {c} ⊑ Any` — only
//!   concrete constants, no intervals or sets (the join of two distinct
//!   constants is immediately `Any`);
//! * **objects** from the subset lattice over program types, with `null`
//!   modelled as a pseudo-type ([`TypeId::NULL`]) that may be part of any
//!   object state.
//!
//! The combined lattice `L` shares one bottom (`Empty`) and one top (`Any`);
//! every object set sits below `Any` (Figure 11). Joins of a primitive and an
//! object state also widen to `Any` (such joins only arise in ill-typed
//! corners like unsafe accesses, where `Any` is the sound answer).

use skipflow_ir::{BitSet, TypeId};
use std::fmt;

/// A set of runtime types (possibly including the `null` pseudo-type).
///
/// Wrapper around [`BitSet`] indexed by [`TypeId`]. The `null` pseudo-type
/// ([`TypeId::NULL`], index 0) is stored as a separate flag rather than as
/// bit 0: null accompanies types from anywhere in the id space, and keeping
/// it out of the bitset keeps the banded storage narrow (a set holding
/// `{null, T}` would otherwise span every word from 0 to `T`).
#[derive(Clone, Default, PartialEq, Eq)]
pub struct TypeSet {
    has_null: bool,
    bits: BitSet,
}

impl TypeSet {
    /// The empty type set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A singleton set.
    pub fn singleton(t: TypeId) -> Self {
        let mut s = Self::new();
        s.insert(t);
        s
    }

    /// The set `{null}`.
    pub fn null_only() -> Self {
        Self::singleton(TypeId::NULL)
    }

    /// Inserts a type; returns `true` if newly inserted.
    pub fn insert(&mut self, t: TypeId) -> bool {
        if t.is_null() {
            let newly = !self.has_null;
            self.has_null = true;
            newly
        } else {
            self.bits.insert(t.index())
        }
    }

    /// Membership test.
    pub fn contains(&self, t: TypeId) -> bool {
        if t.is_null() {
            self.has_null
        } else {
            self.bits.contains(t.index())
        }
    }

    /// Whether `null` is a member.
    pub fn contains_null(&self) -> bool {
        self.has_null
    }

    /// Number of member types (including `null` if present).
    pub fn len(&self) -> usize {
        self.has_null as usize + self.bits.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        !self.has_null && self.bits.is_empty()
    }

    /// Unions `other` into `self`; returns `true` on change.
    pub fn union_with(&mut self, other: &TypeSet) -> bool {
        let mut changed = other.has_null && !self.has_null;
        self.has_null |= other.has_null;
        changed |= self.bits.union_with(&other.bits);
        changed
    }

    /// Unions `other` into `self`, accumulating the newly inserted types
    /// into `delta` (word-level); returns `true` on change.
    pub fn union_with_delta(&mut self, other: &TypeSet, delta: &mut TypeSet) -> bool {
        let mut changed = false;
        if other.has_null && !self.has_null {
            self.has_null = true;
            delta.has_null = true;
            changed = true;
        }
        changed |= self.bits.union_with_delta(&other.bits, &mut delta.bits);
        changed
    }

    /// Removes every member of `other` from `self`; returns `true` on change.
    pub fn remove_all(&mut self, other: &TypeSet) -> bool {
        let mut changed = other.has_null && self.has_null;
        if other.has_null {
            self.has_null = false;
        }
        changed |= self.bits.difference_with(&other.bits);
        changed
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &TypeSet) -> bool {
        (!self.has_null || other.has_null) && self.bits.is_subset(&other.bits)
    }

    /// Intersection with a raw subtype mask (masks never contain `null`).
    /// `keep_null` retains a `null` member through the filter — used by
    /// declared-type filtering, where `null` inhabits every reference type.
    pub fn intersect_mask(&self, mask: &BitSet, keep_null: bool) -> TypeSet {
        let mut bits = self.bits.clone();
        bits.intersect_with(mask);
        TypeSet {
            has_null: keep_null && self.has_null,
            bits,
        }
    }

    /// Set difference with a raw subtype mask (`null` always survives, since
    /// masks never include it).
    pub fn difference_mask(&self, mask: &BitSet) -> TypeSet {
        let mut bits = self.bits.clone();
        bits.difference_with(mask);
        TypeSet {
            has_null: self.has_null,
            bits,
        }
    }

    /// Intersection with another type set.
    pub fn intersection(&self, other: &TypeSet) -> TypeSet {
        let mut bits = self.bits.clone();
        bits.intersect_with(&other.bits);
        TypeSet {
            has_null: self.has_null && other.has_null,
            bits,
        }
    }

    /// Set difference with another type set.
    pub fn difference(&self, other: &TypeSet) -> TypeSet {
        let mut bits = self.bits.clone();
        bits.difference_with(&other.bits);
        TypeSet {
            has_null: self.has_null && !other.has_null,
            bits,
        }
    }

    /// Storage width of the set in 64-bit words (the banded bitset's band
    /// length; the `null` flag is free). The engine's width-adaptive fast
    /// path treats states below a configured word width as "narrow".
    pub fn width_words(&self) -> usize {
        self.bits.word_width()
    }

    /// Iterates member types in ascending id order (`null` first — its id
    /// is 0).
    pub fn iter(&self) -> impl Iterator<Item = TypeId> + '_ {
        self.has_null
            .then_some(TypeId::NULL)
            .into_iter()
            .chain(self.bits.iter().map(TypeId::from_index))
    }
}

impl FromIterator<TypeId> for TypeSet {
    fn from_iter<I: IntoIterator<Item = TypeId>>(iter: I) -> Self {
        let mut s = TypeSet::new();
        for t in iter {
            s.insert(t);
        }
        s
    }
}

impl fmt::Debug for TypeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A value state: an element of the combined lattice `L`.
///
/// # Examples
///
/// The join of two distinct constants widens immediately to `Any`
/// (paper §3: no sets or intervals of primitives):
///
/// ```
/// use skipflow_core::ValueState;
///
/// let mut state = ValueState::Const(1);
/// state.join(&ValueState::Const(1));
/// assert_eq!(state, ValueState::Const(1));
/// state.join(&ValueState::Const(0));
/// assert_eq!(state, ValueState::Any);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum ValueState {
    /// `⊥` — no value can reach this flow (yet).
    #[default]
    Empty,
    /// A single primitive constant `{c}`. Booleans are the constants 0 and 1.
    Const(i64),
    /// A non-empty set of runtime types (`null` included as a pseudo-type).
    Types(TypeSet),
    /// `⊤` — any value (primitive `Any`, and the top of the object sets).
    Any,
}

impl ValueState {
    /// A state holding exactly the type `t`.
    pub fn of_type(t: TypeId) -> Self {
        ValueState::Types(TypeSet::singleton(t))
    }

    /// The state `{null}`.
    pub fn null() -> Self {
        ValueState::Types(TypeSet::null_only())
    }

    /// Normalizing constructor: an empty type set becomes [`ValueState::Empty`].
    pub fn from_types(set: TypeSet) -> Self {
        if set.is_empty() {
            ValueState::Empty
        } else {
            ValueState::Types(set)
        }
    }

    /// `⊥`?
    pub fn is_empty(&self) -> bool {
        matches!(self, ValueState::Empty)
    }

    /// Non-`⊥`? (This is the condition that triggers predicate edges —
    /// note that `Const(0)`, i.e. `false`, is non-empty; paper §5.)
    pub fn is_non_empty(&self) -> bool {
        !self.is_empty()
    }

    /// Joins `other` into `self`; returns `true` on change.
    pub fn join(&mut self, other: &ValueState) -> bool {
        match (&mut *self, other) {
            (_, ValueState::Empty) => false,
            (ValueState::Empty, o) => {
                *self = o.clone();
                true
            }
            (ValueState::Any, _) => false,
            (s, ValueState::Any) => {
                *s = ValueState::Any;
                true
            }
            (ValueState::Const(a), ValueState::Const(b)) => {
                if *a == *b {
                    false
                } else {
                    // Join of two distinct constants is immediately Any
                    // (paper §3: no sets or intervals of primitives).
                    *self = ValueState::Any;
                    true
                }
            }
            (ValueState::Types(s), ValueState::Types(o)) => s.union_with(o),
            // Mixed primitive/object joins widen to top.
            _ => {
                *self = ValueState::Any;
                true
            }
        }
    }

    /// Takes the state out, leaving `Empty` — used to drain a flow's pending
    /// delta without cloning.
    pub fn take(&mut self) -> ValueState {
        std::mem::take(self)
    }

    /// Joins `other` into `self` like [`ValueState::join`], additionally
    /// accumulating the *new information* into `acc` (the pending delta of a
    /// flow). The invariant maintained is `acc ⊑ self` afterwards: `acc`
    /// only ever receives values that are genuinely part of `self`, so
    /// propagating `acc` can never invent values.
    ///
    /// Widenings (distinct constants, mixed kinds, joins with `Any`) push
    /// `Any` into `acc` — the new information is "everything".
    pub fn join_tracking(&mut self, other: &ValueState, acc: &mut ValueState) -> bool {
        use ValueState::*;
        match (&mut *self, other) {
            (_, Empty) => false,
            (Any, _) => false,
            (Empty, o) => {
                *self = o.clone();
                acc.join(o);
                true
            }
            (s, Any) => {
                *s = Any;
                *acc = Any;
                true
            }
            (Const(a), Const(b)) if *a == *b => false,
            (Const(_), Const(_)) => {
                *self = Any;
                *acc = Any;
                true
            }
            (Types(s), Types(o)) => match acc {
                Types(acc_set) => s.union_with_delta(o, acc_set),
                Empty => {
                    let mut acc_set = TypeSet::new();
                    let changed = s.union_with_delta(o, &mut acc_set);
                    if changed {
                        *acc = Types(acc_set);
                    }
                    changed
                }
                // `acc` already saturated (or of mixed kind): a plain union
                // suffices — `acc ⊒` anything we could add is preserved by
                // joining `other` wholesale (still ⊑ self).
                _ => {
                    let changed = s.union_with(o);
                    if changed {
                        acc.join(other);
                    }
                    changed
                }
            },
            // Mixed primitive/object joins widen to top.
            _ => {
                *self = Any;
                *acc = Any;
                true
            }
        }
    }

    /// [`ValueState::join_tracking`] over an owned right-hand side: the
    /// common first-touch case (`self` still `Empty`) moves `other` into
    /// place instead of cloning it, and only the tracking copy remains.
    pub fn join_tracking_owned(&mut self, other: ValueState, acc: &mut ValueState) -> bool {
        if let ValueState::Empty = self {
            if other.is_empty() {
                return false;
            }
            acc.join(&other);
            *self = other;
            return true;
        }
        self.join_tracking(&other, acc)
    }

    /// Removes from `self` (a pending delta) the portion a solver step
    /// already consumed. Deliberately conservative: when in doubt the value
    /// is *kept*, so the flow is re-processed rather than under-propagated.
    pub fn remove(&mut self, consumed: &ValueState) {
        use ValueState::*;
        match (&mut *self, consumed) {
            (_, Empty) => {}
            (Empty, _) => {}
            // A consumed `Any` covered everything the flow will ever see.
            (s, Any) => *s = Empty,
            (Const(a), Const(b)) if *a == *b => *self = Empty,
            (Types(s), Types(o)) => {
                s.remove_all(o);
                if s.is_empty() {
                    *self = Empty;
                }
            }
            // `Any` minus anything smaller, or mismatched kinds: keep.
            _ => {}
        }
    }

    /// The partial order `self ≤ other` of lattice `L`.
    pub fn le(&self, other: &ValueState) -> bool {
        match (self, other) {
            (ValueState::Empty, _) => true,
            (_, ValueState::Any) => true,
            (ValueState::Const(a), ValueState::Const(b)) => a == b,
            (ValueState::Types(a), ValueState::Types(b)) => a.is_subset(b),
            _ => false,
        }
    }

    /// The member types, if this is an object state.
    pub fn types(&self) -> Option<&TypeSet> {
        match self {
            ValueState::Types(s) => Some(s),
            _ => None,
        }
    }

    /// The constant, if this is a primitive singleton.
    pub fn constant(&self) -> Option<i64> {
        match self {
            ValueState::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Representation width of the state in 64-bit words. `Empty`, `Const`,
    /// and `Any` are single-tag states of width 0; a type set is as wide as
    /// its bitset band. This is the measure the width-adaptive join fast
    /// path compares against [`crate::AnalysisConfig::narrow_join_width`]:
    /// below the threshold, a plain monotone full join beats the per-word
    /// delta bookkeeping of [`ValueState::join_tracking`].
    pub fn width_words(&self) -> usize {
        match self {
            ValueState::Types(s) => s.width_words(),
            _ => 0,
        }
    }

    /// Whether the state is a singleton (one constant, one type, or only
    /// `null`) — the precondition under which `≠`-filtering is sound.
    pub fn is_singleton(&self) -> bool {
        match self {
            ValueState::Const(_) => true,
            ValueState::Types(s) => s.len() == 1,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> TypeId {
        TypeId::from_index(i)
    }

    #[test]
    fn join_constants() {
        let mut s = ValueState::Const(5);
        assert!(!s.join(&ValueState::Const(5)));
        assert!(s.join(&ValueState::Const(7)));
        assert_eq!(s, ValueState::Any);
    }

    #[test]
    fn join_with_bottom_and_top() {
        let mut s = ValueState::Empty;
        assert!(!s.join(&ValueState::Empty));
        assert!(s.join(&ValueState::Const(0)));
        assert_eq!(s, ValueState::Const(0));
        assert!(s.join(&ValueState::Any));
        assert_eq!(s, ValueState::Any);
        assert!(!s.join(&ValueState::Const(3)));
    }

    #[test]
    fn join_type_sets_unions() {
        let mut s = ValueState::of_type(t(1));
        assert!(s.join(&ValueState::of_type(t(2))));
        let types = s.types().unwrap();
        assert!(types.contains(t(1)) && types.contains(t(2)));
        assert!(!s.join(&ValueState::of_type(t(1))));
    }

    #[test]
    fn join_mixed_widens_to_any() {
        let mut s = ValueState::Const(1);
        assert!(s.join(&ValueState::of_type(t(1))));
        assert_eq!(s, ValueState::Any);
    }

    #[test]
    fn le_matches_figure_11() {
        let a = ValueState::of_type(t(1));
        let mut ab = a.clone();
        ab.join(&ValueState::of_type(t(2)));
        assert!(ValueState::Empty.le(&a));
        assert!(a.le(&ab));
        assert!(!ab.le(&a));
        assert!(ab.le(&ValueState::Any));
        assert!(ValueState::Const(5).le(&ValueState::Any));
        assert!(!ValueState::Const(5).le(&ValueState::Const(6)));
        assert!(!ValueState::Const(5).le(&a));
        assert!(!a.le(&ValueState::Const(5)));
    }

    #[test]
    fn false_is_non_empty() {
        // Paper §5: a state holding the constant 0 (false) still triggers
        // predicate edges.
        assert!(ValueState::Const(0).is_non_empty());
        assert!(!ValueState::Empty.is_non_empty());
    }

    #[test]
    fn from_types_normalizes_empty() {
        assert_eq!(ValueState::from_types(TypeSet::new()), ValueState::Empty);
    }

    #[test]
    fn typeset_mask_operations() {
        let mut s = TypeSet::null_only();
        s.insert(t(3));
        s.insert(t(4));
        let mask: BitSet = [3].into_iter().collect();
        // instanceof-style: intersect with mask drops null.
        let kept = s.intersect_mask(&mask, false);
        assert_eq!(kept.iter().collect::<Vec<_>>(), vec![t(3)]);
        // declared-type-style: keep null.
        let kept_null = s.intersect_mask(&mask, true);
        assert!(kept_null.contains_null());
        // negated instanceof: difference keeps null.
        let dropped = s.difference_mask(&mask);
        assert!(dropped.contains_null());
        assert!(dropped.contains(t(4)));
        assert!(!dropped.contains(t(3)));
    }

    #[test]
    fn singleton_detection() {
        assert!(ValueState::Const(3).is_singleton());
        assert!(ValueState::null().is_singleton());
        assert!(ValueState::of_type(t(2)).is_singleton());
        let mut two = ValueState::of_type(t(1));
        two.join(&ValueState::of_type(t(2)));
        assert!(!two.is_singleton());
        assert!(!ValueState::Any.is_singleton());
        assert!(!ValueState::Empty.is_singleton());
    }

    #[test]
    fn join_tracking_accumulates_exactly_the_new_information() {
        // Types ∨ Types: only the genuinely new members reach the delta.
        let mut s = ValueState::of_type(t(1));
        let mut acc = ValueState::Empty;
        let mut incoming = ValueState::of_type(t(1));
        incoming.join(&ValueState::of_type(t(2)));
        assert!(s.join_tracking(&incoming, &mut acc));
        assert_eq!(acc, ValueState::of_type(t(2)), "only T2 is new");
        // A second identical join changes nothing and leaves acc alone.
        assert!(!s.join_tracking(&incoming, &mut acc));
        assert_eq!(acc, ValueState::of_type(t(2)));
        // Accumulation across joins.
        assert!(s.join_tracking(&ValueState::of_type(t(3)), &mut acc));
        let types = acc.types().unwrap();
        assert!(types.contains(t(2)) && types.contains(t(3)) && !types.contains(t(1)));

        // First touch: the whole incoming state is new.
        let mut empty = ValueState::Empty;
        let mut acc2 = ValueState::Empty;
        assert!(empty.join_tracking(&ValueState::Const(5), &mut acc2));
        assert_eq!(acc2, ValueState::Const(5));

        // Widenings push Any into the delta.
        let mut c = ValueState::Const(5);
        let mut acc3 = ValueState::Empty;
        assert!(c.join_tracking(&ValueState::Const(6), &mut acc3));
        assert_eq!(c, ValueState::Any);
        assert_eq!(acc3, ValueState::Any);
    }

    #[test]
    fn join_tracking_agrees_with_join_and_keeps_acc_below_self() {
        let states = [
            ValueState::Empty,
            ValueState::Const(0),
            ValueState::Const(1),
            ValueState::of_type(t(1)),
            ValueState::null(),
            ValueState::Any,
        ];
        for a in &states {
            for b in &states {
                let mut plain = a.clone();
                let plain_changed = plain.join(b);
                let mut tracked = a.clone();
                let mut acc = ValueState::Empty;
                let tracked_changed = tracked.join_tracking(b, &mut acc);
                assert_eq!(plain, tracked, "join({a:?}, {b:?})");
                assert_eq!(plain_changed, tracked_changed);
                assert!(acc.le(&tracked), "acc {acc:?} escapes state {tracked:?}");
                // Owned variant agrees too.
                let mut owned = a.clone();
                let mut acc2 = ValueState::Empty;
                assert_eq!(owned.join_tracking_owned(b.clone(), &mut acc2), plain_changed);
                assert_eq!(owned, plain);
                assert_eq!(acc2, acc);
            }
        }
    }

    #[test]
    fn remove_is_conservative() {
        // Exact removals empty the delta.
        let mut d = ValueState::Const(3);
        d.remove(&ValueState::Const(3));
        assert_eq!(d, ValueState::Empty);
        let mut d = ValueState::of_type(t(1));
        d.join(&ValueState::of_type(t(2)));
        d.remove(&ValueState::of_type(t(1)));
        assert_eq!(d, ValueState::of_type(t(2)));
        // Removing everything normalizes to Empty.
        let mut d = ValueState::of_type(t(2));
        d.remove(&ValueState::of_type(t(2)));
        assert_eq!(d, ValueState::Empty);
        // A consumed Any covered everything.
        let mut d = ValueState::of_type(t(1));
        d.remove(&ValueState::Any);
        assert_eq!(d, ValueState::Empty);
        // Mismatched kinds and Any-minus-smaller keep the delta (re-process
        // rather than under-propagate).
        let mut d = ValueState::Any;
        d.remove(&ValueState::Const(1));
        assert_eq!(d, ValueState::Any);
        let mut d = ValueState::Const(1);
        d.remove(&ValueState::of_type(t(1)));
        assert_eq!(d, ValueState::Const(1));
    }

    #[test]
    fn typeset_null_flag_behaves_like_a_member() {
        let mut s = TypeSet::null_only();
        assert!(s.contains_null() && s.len() == 1 && !s.is_empty());
        assert!(!s.insert(TypeId::NULL), "already present");
        s.insert(t(70_000));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![TypeId::NULL, t(70_000)]);
        // union_with_delta carries the null flag into the delta exactly once.
        let mut target = TypeSet::singleton(t(3));
        let mut delta = TypeSet::new();
        assert!(target.union_with_delta(&s, &mut delta));
        assert!(delta.contains_null() && delta.contains(t(70_000)) && !delta.contains(t(3)));
        let mut delta2 = TypeSet::new();
        assert!(!target.union_with_delta(&s, &mut delta2));
        assert!(delta2.is_empty());
        // remove_all strips null.
        assert!(target.remove_all(&TypeSet::null_only()));
        assert!(!target.contains_null());
        // Subset accounts for null.
        assert!(TypeSet::null_only().is_subset(&s));
        assert!(!s.is_subset(&TypeSet::singleton(t(70_000))));
    }

    #[test]
    fn join_is_monotone_and_idempotent() {
        let states = [
            ValueState::Empty,
            ValueState::Const(0),
            ValueState::Const(1),
            ValueState::of_type(t(1)),
            ValueState::null(),
            ValueState::Any,
        ];
        for a in &states {
            for b in &states {
                let mut j = a.clone();
                j.join(b);
                assert!(a.le(&j), "{a:?} ≤ {a:?}∨{b:?}");
                assert!(b.le(&j), "{b:?} ≤ {a:?}∨{b:?}");
                let mut jj = j.clone();
                assert!(!jj.join(b), "idempotent second join");
                // Commutativity.
                let mut k = b.clone();
                k.join(a);
                assert_eq!(j, k);
            }
        }
    }
}
