//! Analysis configuration.
//!
//! SkipFlow is the baseline type-based points-to analysis *plus* two
//! features — predicate edges and primitive tracking (paper §1) — so one
//! engine serves every configuration in the evaluation: the `PTA` baseline,
//! full SkipFlow, and the two single-feature ablations.

use skipflow_ir::{FieldId, MethodId};

/// How the delta solvers order their worklist.
///
/// Scheduling is a pure performance heuristic: every order reaches the same
/// least fixpoint (all joins are monotone), so both schedulers are proven
/// result-identical by `tests/delta_vs_reference.rs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Plain FIFO worklist (the PR 1 behaviour). Kept as the scheduling
    /// oracle for differential tests and pre-change benchmark captures.
    Fifo,
    /// SCC-aware bucketed priority scheduling (the default): flows are
    /// prioritized by the condensation-topological index of their strongly
    /// connected component in the PVPG, and each SCC is iterated to local
    /// fixpoint before any flow of a later SCC is dequeued. The SCC
    /// structure is recomputed in batches behind a dirty counter as new
    /// fragments are instantiated mid-solve.
    SccPriority,
}

/// Which fixpoint solver drives the analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Single-threaded delta-propagation worklist solver (the default).
    Sequential,
    /// Deterministic bulk-synchronous parallel solver with the given number
    /// of worker threads (results are bit-identical to sequential).
    Parallel {
        /// Worker thread count (≥ 1).
        threads: usize,
    },
    /// The full-join reference solver: recomputes and re-joins a flow's
    /// entire output on every step. Slow by design — it is the oracle the
    /// differential tests and the perf-trajectory harness compare the delta
    /// solvers against.
    Reference,
}

/// Configuration of one analysis run.
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Enable predicate edges: flows start disabled and only propagate once
    /// their predicate has a non-empty state (paper §3 "Control Flow
    /// Predicates"). Disabled for the baseline PTA, where every flow is
    /// enabled at creation.
    pub predicates: bool,
    /// Track primitive constants through the lattice `P`. When disabled,
    /// every primitive source evaluates to `Any` (the baseline PTA behaviour:
    /// primitives are invisible).
    pub primitives: bool,
    /// Filter method parameters by their declared types during
    /// interprocedural linking (the Native Image behaviour inherited from
    /// Wimmer et al. \[60\]). On for all evaluated configurations; exposed for
    /// ablation.
    pub declared_type_filtering: bool,
    /// Optional saturation threshold (Wimmer et al. \[60\]): an object value
    /// state whose type set grows beyond the limit widens to `Any`, trading
    /// precision for bounded state size. `None` disables saturation.
    pub saturation_threshold: Option<usize>,
    /// The paper's coarse exception policy (§5): any *instantiated* exception
    /// subtype of a handler's type flows out of the handler. When `false`,
    /// only actually-thrown values reach handlers (a more precise variant,
    /// kept for ablation).
    pub coarse_exceptions: bool,
    /// Methods invokable via Reflection/JNI (§5): treated as additional
    /// roots whose parameters receive every instantiated subtype of their
    /// declared types.
    pub reflective_roots: Vec<MethodId>,
    /// Fields accessible via Reflection/JNI (§5): their value states receive
    /// every instantiated subtype of their declared types.
    pub reflective_fields: Vec<FieldId>,
    /// Fields accessed via `Unsafe` (§5): every write into any such field may
    /// flow out of every read of any such field.
    pub unsafe_fields: Vec<FieldId>,
    /// Solver selection.
    pub solver: SolverKind,
    /// Worklist scheduling for the delta solvers ([`SolverKind::Sequential`]
    /// and [`SolverKind::Parallel`]). The reference solver always runs FIFO —
    /// it is the oracle and must stay byte-for-byte the PR 1 algorithm.
    pub scheduler: SchedulerKind,
    /// Safety valve for the fixpoint iteration; `None` means unbounded.
    /// The lattice has finite height so the analysis always terminates, but
    /// tests use a bound to fail fast on engine bugs.
    pub max_steps: Option<u64>,
}

impl AnalysisConfig {
    /// Full SkipFlow: predicate edges + primitive tracking (the paper's
    /// `SkipFlow` configuration of Table 1).
    pub fn skipflow() -> Self {
        AnalysisConfig {
            predicates: true,
            primitives: true,
            declared_type_filtering: true,
            saturation_threshold: None,
            coarse_exceptions: true,
            reflective_roots: Vec::new(),
            reflective_fields: Vec::new(),
            unsafe_fields: Vec::new(),
            solver: SolverKind::Sequential,
            scheduler: SchedulerKind::SccPriority,
            max_steps: None,
        }
    }

    /// The baseline: flow-insensitive, context-insensitive, type-based
    /// points-to analysis (the paper's `PTA` configuration of Table 1 —
    /// the Native Image default of Wimmer et al. \[60\]).
    pub fn baseline_pta() -> Self {
        AnalysisConfig {
            predicates: false,
            primitives: false,
            ..Self::skipflow()
        }
    }

    /// Ablation: predicate edges without primitive tracking.
    pub fn predicates_only() -> Self {
        AnalysisConfig {
            primitives: false,
            ..Self::skipflow()
        }
    }

    /// Ablation: primitive tracking without predicate edges.
    pub fn primitives_only() -> Self {
        AnalysisConfig {
            predicates: false,
            ..Self::skipflow()
        }
    }

    /// Builder-style: sets the solver.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Builder-style: sets the saturation threshold.
    pub fn with_saturation(mut self, threshold: usize) -> Self {
        self.saturation_threshold = Some(threshold);
        self
    }

    /// Builder-style: sets the worklist scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// A short human-readable label (used by the bench harness).
    pub fn label(&self) -> &'static str {
        match (self.predicates, self.primitives) {
            (true, true) => "SkipFlow",
            (false, false) => "PTA",
            (true, false) => "SkipFlow-predicates-only",
            (false, true) => "SkipFlow-primitives-only",
        }
    }
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self::skipflow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1_configurations() {
        let sf = AnalysisConfig::skipflow();
        assert!(sf.predicates && sf.primitives);
        assert_eq!(sf.label(), "SkipFlow");

        let pta = AnalysisConfig::baseline_pta();
        assert!(!pta.predicates && !pta.primitives);
        assert!(pta.declared_type_filtering, "baseline keeps type filtering on use edges");
        assert_eq!(pta.label(), "PTA");
    }

    #[test]
    fn ablation_labels() {
        assert_eq!(AnalysisConfig::predicates_only().label(), "SkipFlow-predicates-only");
        assert_eq!(AnalysisConfig::primitives_only().label(), "SkipFlow-primitives-only");
    }

    #[test]
    fn builder_helpers() {
        let c = AnalysisConfig::skipflow()
            .with_solver(SolverKind::Parallel { threads: 4 })
            .with_saturation(32);
        assert_eq!(c.solver, SolverKind::Parallel { threads: 4 });
        assert_eq!(c.saturation_threshold, Some(32));
        assert_eq!(c.scheduler, SchedulerKind::SccPriority, "SCC is the default");
        let c = c.with_scheduler(SchedulerKind::Fifo);
        assert_eq!(c.scheduler, SchedulerKind::Fifo);
    }
}
