//! Analysis configuration.
//!
//! SkipFlow is the baseline type-based points-to analysis *plus* two
//! features — predicate edges and primitive tracking (paper §1) — so one
//! engine serves every configuration in the evaluation: the `PTA` baseline,
//! full SkipFlow, and the two single-feature ablations.
//!
//! Since the session API redesign the fields are private: configurations are
//! assembled from a preset ([`AnalysisConfig::skipflow`],
//! [`AnalysisConfig::baseline_pta`], …) refined through the `with_*` builder
//! methods, and validated once when an
//! [`AnalysisSession`](crate::AnalysisSession) is built (invalid inputs
//! surface as [`AnalysisError`](crate::AnalysisError) instead of panics deep
//! inside the engine).

use skipflow_ir::{FieldId, MethodId};
use std::time::Duration;

/// How the delta solvers order their worklist.
///
/// Scheduling is a pure performance heuristic: every order reaches the same
/// least fixpoint (all joins are monotone), so both schedulers are proven
/// result-identical by `tests/delta_vs_reference.rs`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Plain FIFO worklist (the PR 1 behaviour). Kept as the scheduling
    /// oracle for differential tests and pre-change benchmark captures.
    Fifo,
    /// SCC-aware priority scheduling, forced from solve start: flows are
    /// prioritized by the *live* topological order of their strongly
    /// connected component in the PVPG — maintained online
    /// (Pearce–Kelly-style in-place repairs as edges are inserted, cycle
    /// collapse on merge), so every flow carries an exact priority from the
    /// moment it is created — and each SCC is iterated to local fixpoint
    /// before any flow of a later SCC is re-processed (first-time flows
    /// drain frontier-first; see the scheduling invariants in `engine.rs`).
    /// Pays the per-edge order maintenance + bucket-indirection overhead
    /// even on workloads that never re-process (use
    /// [`SchedulerKind::Adaptive`] unless benchmarking the forced mode).
    SccPriority,
    /// Adaptive FIFO→SCC scheduling (the default): every solve starts on
    /// the plain FIFO worklist, the engine tracks the re-enqueue rate
    /// (`re_pops / pops` over a sliding window), and only when the rate
    /// shows that flows are genuinely being re-processed does it *flip* to
    /// the SCC priority queue. The session's first flip absorbs the graph
    /// into the online order once; afterwards the condensation stays
    /// current through every mutation (and across resumes), so later flips
    /// of resumed solves never recompute anything. Re-processing
    /// heavy workloads (shared-sink fan-out, big value cycles) get the full
    /// SCC step win minus a small detection lag; acyclic propagate-once
    /// workloads pay only the (cheap, per-edge) order maintenance. Results
    /// are scheduler-independent (all joins are monotone), so the mid-solve
    /// flip is safe at any step boundary.
    Adaptive,
}

/// Which fixpoint solver drives the analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolverKind {
    /// Single-threaded delta-propagation worklist solver (the default).
    Sequential,
    /// Deterministic bulk-synchronous parallel solver with the given number
    /// of worker threads (results are bit-identical to sequential).
    Parallel {
        /// Worker thread count (≥ 1; validated at session build).
        threads: usize,
    },
    /// The full-join reference solver: recomputes and re-joins a flow's
    /// entire output on every step. Slow by design — it is the oracle the
    /// differential tests and the perf-trajectory harness compare the delta
    /// solvers against.
    Reference,
}

/// Configuration of one analysis session.
///
/// Construct from a preset and refine with the `with_*` methods:
///
/// ```
/// use skipflow_core::{AnalysisConfig, SchedulerKind, SolverKind};
///
/// let config = AnalysisConfig::skipflow()
///     .with_solver(SolverKind::Parallel { threads: 4 })
///     .with_scheduler(SchedulerKind::SccPriority)
///     .with_saturation(32);
/// assert!(config.predicates() && config.primitives());
/// assert_eq!(config.saturation_threshold(), Some(32));
/// ```
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Enable predicate edges: flows start disabled and only propagate once
    /// their predicate has a non-empty state (paper §3 "Control Flow
    /// Predicates"). Disabled for the baseline PTA, where every flow is
    /// enabled at creation.
    pub(crate) predicates: bool,
    /// Track primitive constants through the lattice `P`. When disabled,
    /// every primitive source evaluates to `Any` (the baseline PTA behaviour:
    /// primitives are invisible).
    pub(crate) primitives: bool,
    /// Filter method parameters by their declared types during
    /// interprocedural linking (the Native Image behaviour inherited from
    /// Wimmer et al. \[60\]).
    pub(crate) declared_type_filtering: bool,
    /// Optional saturation threshold (Wimmer et al. \[60\]).
    pub(crate) saturation_threshold: Option<usize>,
    /// The paper's coarse exception policy (§5).
    pub(crate) coarse_exceptions: bool,
    /// Methods invokable via Reflection/JNI (§5).
    pub(crate) reflective_roots: Vec<MethodId>,
    /// Fields accessible via Reflection/JNI (§5).
    pub(crate) reflective_fields: Vec<FieldId>,
    /// Fields accessed via `Unsafe` (§5).
    pub(crate) unsafe_fields: Vec<FieldId>,
    /// Methods whose bodies are masked out from the start: the engine marks
    /// them reachable when discovered but never builds their fragments, as
    /// if [`MethodEdit::DisableBody`](crate::MethodEdit) had been applied
    /// before the first solve. This is how a fresh differential oracle
    /// reproduces the edit state of a long-lived session.
    pub(crate) masked_methods: Vec<MethodId>,
    /// Solver selection.
    pub(crate) solver: SolverKind,
    /// Worklist scheduling for the delta solvers.
    pub(crate) scheduler: SchedulerKind,
    /// Word-width threshold of the delta solvers' narrow-join fast path:
    /// joins into a flow whose live input state is *strictly below* this
    /// many words skip the delta bookkeeping and mark the flow for a plain
    /// full-join step instead. `0` disables the fast path; `usize::MAX`
    /// forces full joins everywhere (the per-flow Reference behaviour).
    pub(crate) narrow_join_width: usize,
    /// Safety valve for the fixpoint iteration; `None` means unbounded.
    pub(crate) max_steps: Option<u64>,
    /// Per-solve worklist-step budget; exceeding it *interrupts* the solve
    /// (a resumable checkpoint, unlike the assert-based `max_steps` valve).
    pub(crate) step_budget: Option<u64>,
    /// Per-solve wall-clock budget.
    pub(crate) wall_budget: Option<Duration>,
    /// Estimated-footprint budget in bytes (session-cumulative: the PVPG
    /// only grows).
    pub(crate) memory_budget: Option<usize>,
    /// Deterministic fault-injection plan (test builds only).
    #[cfg(feature = "fault-inject")]
    pub(crate) fault_plan: crate::fault::FaultPlan,
}

/// Default [`AnalysisConfig::narrow_join_width`]: states up to one word wide
/// (primitive constants, `Any`, and type sets within a single 64-bit band)
/// take the full-join fast path; wider states keep difference propagation.
pub const DEFAULT_NARROW_JOIN_WIDTH: usize = 2;

impl AnalysisConfig {
    /// Full SkipFlow: predicate edges + primitive tracking (the paper's
    /// `SkipFlow` configuration of Table 1).
    pub fn skipflow() -> Self {
        AnalysisConfig {
            predicates: true,
            primitives: true,
            declared_type_filtering: true,
            saturation_threshold: None,
            coarse_exceptions: true,
            reflective_roots: Vec::new(),
            reflective_fields: Vec::new(),
            unsafe_fields: Vec::new(),
            masked_methods: Vec::new(),
            solver: SolverKind::Sequential,
            scheduler: SchedulerKind::Adaptive,
            narrow_join_width: DEFAULT_NARROW_JOIN_WIDTH,
            max_steps: None,
            step_budget: None,
            wall_budget: None,
            memory_budget: None,
            #[cfg(feature = "fault-inject")]
            fault_plan: crate::fault::FaultPlan::default(),
        }
    }

    /// The baseline: flow-insensitive, context-insensitive, type-based
    /// points-to analysis (the paper's `PTA` configuration of Table 1 —
    /// the Native Image default of Wimmer et al. \[60\]).
    pub fn baseline_pta() -> Self {
        AnalysisConfig {
            predicates: false,
            primitives: false,
            ..Self::skipflow()
        }
    }

    /// Ablation: predicate edges without primitive tracking.
    pub fn predicates_only() -> Self {
        AnalysisConfig {
            primitives: false,
            ..Self::skipflow()
        }
    }

    /// Ablation: primitive tracking without predicate edges.
    pub fn primitives_only() -> Self {
        AnalysisConfig {
            predicates: false,
            ..Self::skipflow()
        }
    }

    // ---- builder methods --------------------------------------------------

    /// Sets the solver.
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Sets (or clears, with `None`) the saturation threshold.
    pub fn with_saturation(mut self, threshold: impl Into<Option<usize>>) -> Self {
        self.saturation_threshold = threshold.into();
        self
    }

    /// Sets the worklist scheduler.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the narrow-join fast-path threshold in 64-bit words: joins into
    /// a flow whose live input state is strictly narrower than `width` words
    /// skip the delta bookkeeping and schedule a plain full-join step
    /// (the Reference step) instead. `0` disables the fast path (every join
    /// is difference-tracked, the pre-PR 4 behaviour); `usize::MAX` makes
    /// every flow full-join (the ablation bound). The default is
    /// [`DEFAULT_NARROW_JOIN_WIDTH`].
    pub fn with_narrow_join_width(mut self, width: usize) -> Self {
        self.narrow_join_width = width;
        self
    }

    /// Sets (or clears, with `None`) the fixpoint step bound. Tests use a
    /// bound to fail fast on engine bugs; production runs leave it `None`.
    pub fn with_max_steps(mut self, max_steps: impl Into<Option<u64>>) -> Self {
        self.max_steps = max_steps.into();
        self
    }

    /// Sets (or clears, with `None`) the per-solve worklist-step budget.
    /// Unlike [`AnalysisConfig::with_max_steps`] (an assert-based fail-fast
    /// valve for tests), exhausting a step budget is not an error: the solve
    /// returns [`SolveOutcome::Interrupted`](crate::SolveOutcome) with a
    /// queryable partial snapshot, and the next solve resumes — so
    /// repeatedly solving under a budget of `k` advances the fixpoint `k`
    /// steps at a time until it completes.
    pub fn with_step_budget(mut self, budget: impl Into<Option<u64>>) -> Self {
        self.step_budget = budget.into();
        self
    }

    /// Sets (or clears, with `None`) the per-solve wall-clock budget. The
    /// deadline is checked at the engine's bounded stride, so the overshoot
    /// past the budget is at most one stride of steps.
    pub fn with_wall_budget(mut self, budget: impl Into<Option<Duration>>) -> Self {
        self.wall_budget = budget.into();
        self
    }

    /// Sets (or clears, with `None`) the memory budget in bytes, compared
    /// against the engine's cheap footprint *estimate* (flow arena + edge
    /// pools — the structures that grow with the analysis), not an allocator
    /// measurement. The PVPG only grows, so once tripped, only a raised
    /// budget lets a resume make progress.
    pub fn with_memory_budget(mut self, budget: impl Into<Option<usize>>) -> Self {
        self.memory_budget = budget.into();
        self
    }

    /// Installs a deterministic fault-injection plan (see [`crate::fault`]).
    /// Only compiled under the `fault-inject` feature; production builds
    /// have no injection hooks.
    #[cfg(feature = "fault-inject")]
    pub fn with_fault_plan(mut self, plan: crate::fault::FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Toggles predicate edges (the ablation axis of Table 1).
    pub fn with_predicates(mut self, on: bool) -> Self {
        self.predicates = on;
        self
    }

    /// Toggles primitive-constant tracking (the ablation axis of Table 1).
    pub fn with_primitives(mut self, on: bool) -> Self {
        self.primitives = on;
        self
    }

    /// Toggles declared-type filtering on interprocedural use edges.
    pub fn with_declared_type_filtering(mut self, on: bool) -> Self {
        self.declared_type_filtering = on;
        self
    }

    /// Toggles the coarse exception policy (§5).
    pub fn with_coarse_exceptions(mut self, on: bool) -> Self {
        self.coarse_exceptions = on;
        self
    }

    /// Adds methods invokable via Reflection/JNI (§5): extra roots whose
    /// parameters receive every instantiated subtype of their declared types.
    pub fn with_reflective_roots(mut self, roots: impl IntoIterator<Item = MethodId>) -> Self {
        self.reflective_roots.extend(roots);
        self
    }

    /// Adds fields accessible via Reflection/JNI (§5): their value states
    /// receive every instantiated subtype of their declared types.
    pub fn with_reflective_fields(mut self, fields: impl IntoIterator<Item = FieldId>) -> Self {
        self.reflective_fields.extend(fields);
        self
    }

    /// Adds fields accessed via `Unsafe` (§5): every write into any such
    /// field may flow out of every read of any such field.
    pub fn with_unsafe_fields(mut self, fields: impl IntoIterator<Item = FieldId>) -> Self {
        self.unsafe_fields.extend(fields);
        self
    }

    /// Masks method bodies from the start of the session: a masked method is
    /// marked reachable when discovered (it still appears at call sites and
    /// in the reachable set) but its fragment is never built — calls to it
    /// derive nothing, exactly as after
    /// [`AnalysisSession::apply_edit`](crate::AnalysisSession::apply_edit)
    /// with [`MethodEdit::DisableBody`](crate::MethodEdit). The differential
    /// tests use this to build a fresh oracle matching an edited session.
    pub fn with_masked_methods(mut self, methods: impl IntoIterator<Item = MethodId>) -> Self {
        self.masked_methods.extend(methods);
        self
    }

    // ---- accessors --------------------------------------------------------

    /// Whether predicate edges are enabled.
    pub fn predicates(&self) -> bool {
        self.predicates
    }

    /// Whether primitive-constant tracking is enabled.
    pub fn primitives(&self) -> bool {
        self.primitives
    }

    /// Whether parameters are filtered by their declared types.
    pub fn declared_type_filtering(&self) -> bool {
        self.declared_type_filtering
    }

    /// The saturation threshold, if saturation is enabled.
    pub fn saturation_threshold(&self) -> Option<usize> {
        self.saturation_threshold
    }

    /// Whether the coarse exception policy is active.
    pub fn coarse_exceptions(&self) -> bool {
        self.coarse_exceptions
    }

    /// The configured reflective root methods.
    pub fn reflective_roots(&self) -> &[MethodId] {
        &self.reflective_roots
    }

    /// The configured reflective fields.
    pub fn reflective_fields(&self) -> &[FieldId] {
        &self.reflective_fields
    }

    /// The configured `Unsafe`-accessed fields.
    pub fn unsafe_fields(&self) -> &[FieldId] {
        &self.unsafe_fields
    }

    /// The methods whose bodies are masked out from the start.
    pub fn masked_methods(&self) -> &[MethodId] {
        &self.masked_methods
    }

    /// The selected solver.
    pub fn solver(&self) -> SolverKind {
        self.solver
    }

    /// The selected worklist scheduler. The reference solver always runs
    /// FIFO regardless — it is the oracle and must stay byte-for-byte the
    /// PR 1 algorithm.
    pub fn scheduler(&self) -> SchedulerKind {
        self.scheduler
    }

    /// The narrow-join fast-path word-width threshold (0 = disabled).
    pub fn narrow_join_width(&self) -> usize {
        self.narrow_join_width
    }

    /// The fixpoint step bound, if any.
    pub fn max_steps(&self) -> Option<u64> {
        self.max_steps
    }

    /// The per-solve worklist-step budget, if any.
    pub fn step_budget(&self) -> Option<u64> {
        self.step_budget
    }

    /// The per-solve wall-clock budget, if any.
    pub fn wall_budget(&self) -> Option<Duration> {
        self.wall_budget
    }

    /// The estimated-footprint budget in bytes, if any.
    pub fn memory_budget(&self) -> Option<usize> {
        self.memory_budget
    }

    /// A short human-readable label (used by the bench harness).
    pub fn label(&self) -> &'static str {
        match (self.predicates, self.primitives) {
            (true, true) => "SkipFlow",
            (false, false) => "PTA",
            (true, false) => "SkipFlow-predicates-only",
            (false, true) => "SkipFlow-primitives-only",
        }
    }
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        Self::skipflow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1_configurations() {
        let sf = AnalysisConfig::skipflow();
        assert!(sf.predicates() && sf.primitives());
        assert_eq!(sf.label(), "SkipFlow");

        let pta = AnalysisConfig::baseline_pta();
        assert!(!pta.predicates() && !pta.primitives());
        assert!(pta.declared_type_filtering(), "baseline keeps type filtering on use edges");
        assert_eq!(pta.label(), "PTA");
    }

    #[test]
    fn ablation_labels() {
        assert_eq!(AnalysisConfig::predicates_only().label(), "SkipFlow-predicates-only");
        assert_eq!(AnalysisConfig::primitives_only().label(), "SkipFlow-primitives-only");
        assert_eq!(
            AnalysisConfig::skipflow().with_predicates(false).label(),
            "SkipFlow-primitives-only"
        );
        assert_eq!(
            AnalysisConfig::skipflow().with_primitives(false).label(),
            "SkipFlow-predicates-only"
        );
    }

    #[test]
    fn builder_helpers() {
        let c = AnalysisConfig::skipflow()
            .with_solver(SolverKind::Parallel { threads: 4 })
            .with_saturation(32);
        assert_eq!(c.solver(), SolverKind::Parallel { threads: 4 });
        assert_eq!(c.saturation_threshold(), Some(32));
        assert_eq!(c.scheduler(), SchedulerKind::Adaptive, "adaptive is the default");
        assert_eq!(
            c.narrow_join_width(),
            DEFAULT_NARROW_JOIN_WIDTH,
            "narrow-join fast path is on by default"
        );
        let c = c.with_scheduler(SchedulerKind::Fifo).with_saturation(None);
        assert_eq!(c.scheduler(), SchedulerKind::Fifo);
        assert_eq!(c.saturation_threshold(), None);
        let c = c.with_max_steps(10).with_coarse_exceptions(false);
        assert_eq!(c.max_steps(), Some(10));
        assert!(!c.coarse_exceptions());
        let c = c.with_narrow_join_width(0).with_scheduler(SchedulerKind::SccPriority);
        assert_eq!(c.narrow_join_width(), 0);
        assert_eq!(c.scheduler(), SchedulerKind::SccPriority);
    }

    #[test]
    fn budget_knobs_set_and_clear() {
        let c = AnalysisConfig::skipflow();
        assert_eq!(c.step_budget(), None);
        assert_eq!(c.wall_budget(), None);
        assert_eq!(c.memory_budget(), None);
        let c = c
            .with_step_budget(100)
            .with_wall_budget(Duration::from_millis(50))
            .with_memory_budget(1 << 20);
        assert_eq!(c.step_budget(), Some(100));
        assert_eq!(c.wall_budget(), Some(Duration::from_millis(50)));
        assert_eq!(c.memory_budget(), Some(1 << 20));
        let c = c
            .with_step_budget(None)
            .with_wall_budget(None)
            .with_memory_budget(None);
        assert_eq!(c.step_budget(), None);
        assert_eq!(c.wall_budget(), None);
        assert_eq!(c.memory_budget(), None);
    }

    #[test]
    fn reflective_lists_accumulate() {
        let m = MethodId::from_index(3);
        let f = FieldId::from_index(1);
        let c = AnalysisConfig::skipflow()
            .with_reflective_roots([m])
            .with_reflective_fields([f])
            .with_unsafe_fields([f]);
        assert_eq!(c.reflective_roots(), &[m]);
        assert_eq!(c.reflective_fields(), &[f]);
        assert_eq!(c.unsafe_fields(), &[f]);
    }
}
