//! The `Compare` auxiliary function of the Cond inference rule
//! (paper Appendix C, Figure 15).
//!
//! `compare(op, vl, vr)` returns the portion of `vl` that can satisfy
//! `vl op vr` for *some* value drawn from `vr`. The cases follow the paper's
//! definition with one soundness guard: `≠`-difference is applied only when
//! `vr` is a *singleton* (one constant, one type, or `null`). With a
//! multi-element right operand, `x ≠ y` cannot exclude any value of `x`
//! (`y` may be a different element), and for reference inequality two
//! distinct objects of the same type compare unequal — so in both cases we
//! return `vl` unfiltered. The paper's own evaluation exercises `≠` only
//! against constants and `null`, where the definitions coincide.

use crate::lattice::ValueState;
use skipflow_ir::CmpOp;

/// Filters `vl` with respect to `op` and `vr` (paper Figure 15).
///
/// # Examples
///
/// The paper's worked examples hold verbatim:
///
/// ```
/// use skipflow_core::{compare, ValueState};
/// use skipflow_ir::CmpOp;
///
/// // Compare('=', {Any}, {5}) = {5} — the key interprocedural refinement.
/// assert_eq!(
///     compare(CmpOp::Eq, &ValueState::Any, &ValueState::Const(5)),
///     ValueState::Const(5)
/// );
/// // Compare('<', {3}, {1}) = {} — the branch is dead.
/// assert_eq!(
///     compare(CmpOp::Lt, &ValueState::Const(3), &ValueState::Const(1)),
///     ValueState::Empty
/// );
/// ```
pub fn compare(op: CmpOp, vl: &ValueState, vr: &ValueState) -> ValueState {
    use ValueState::*;

    // Both operands are needed to perform any filtering.
    if vl.is_empty() || vr.is_empty() {
        return Empty;
    }

    match op {
        CmpOp::Eq => match (vl, vr) {
            // If at least one operand is Any, the result is the lower of the
            // two: Compare('=', {Any}, {5}) = {5}.
            (Any, other) => other.clone(),
            (this, Any) => this.clone(),
            (Const(a), Const(b)) => {
                if a == b {
                    Const(*a)
                } else {
                    Empty
                }
            }
            (Types(a), Types(b)) => ValueState::from_types(a.intersection(b)),
            // Mixed primitive/reference equality cannot occur in well-typed
            // code; conservatively keep vl.
            _ => vl.clone(),
        },
        CmpOp::Ne => {
            // Difference is only sound against a definite (singleton) right
            // operand; see module docs.
            if !vr.is_singleton() {
                return vl.clone();
            }
            match (vl, vr) {
                (Const(a), Const(b)) => {
                    if a == b {
                        Empty
                    } else {
                        Const(*a)
                    }
                }
                (Types(a), Types(b)) => ValueState::from_types(a.difference(b)),
                // `Any ≠ {c}` cannot be narrowed without intervals/sets.
                (Any, _) => Any,
                _ => vl.clone(),
            }
        }
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            // Relational operators are defined on primitives only.
            match (vl, vr) {
                // If one operand is Any no useful filtering is possible
                // (intervals were deliberately left out for scalability).
                (Any, _) | (_, Any) => vl.clone(),
                (Const(l), Const(r)) => {
                    if op.eval(*l, *r) {
                        Const(*l)
                    } else {
                        Empty
                    }
                }
                // Ill-typed (references under relational): keep vl.
                _ => vl.clone(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::TypeSet;
    use skipflow_ir::TypeId;

    fn t(i: usize) -> TypeId {
        TypeId::from_index(i)
    }

    fn types(ids: &[usize]) -> ValueState {
        ValueState::Types(ids.iter().map(|&i| t(i)).collect::<TypeSet>())
    }

    #[test]
    fn empty_operand_yields_empty() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Ge] {
            assert_eq!(compare(op, &ValueState::Empty, &ValueState::Const(1)), ValueState::Empty);
            assert_eq!(compare(op, &ValueState::Const(1), &ValueState::Empty), ValueState::Empty);
        }
    }

    #[test]
    fn eq_with_any_returns_the_lower_operand() {
        // Paper examples: Compare('=', {Any}, {5}) = {5};
        // Compare('=', {Any}, {Any}) = {Any}.
        assert_eq!(compare(CmpOp::Eq, &ValueState::Any, &ValueState::Const(5)), ValueState::Const(5));
        assert_eq!(compare(CmpOp::Eq, &ValueState::Const(5), &ValueState::Any), ValueState::Const(5));
        assert_eq!(compare(CmpOp::Eq, &ValueState::Any, &ValueState::Any), ValueState::Any);
    }

    #[test]
    fn eq_intersects() {
        // Paper examples: Compare('=', {A,B}, {B,C}) = {B};
        // Compare('=', {3}, {3}) = {3}; Compare('=', {3}, {5}) = {}.
        assert_eq!(compare(CmpOp::Eq, &types(&[1, 2]), &types(&[2, 3])), types(&[2]));
        assert_eq!(compare(CmpOp::Eq, &ValueState::Const(3), &ValueState::Const(3)), ValueState::Const(3));
        assert_eq!(compare(CmpOp::Eq, &ValueState::Const(3), &ValueState::Const(5)), ValueState::Empty);
    }

    #[test]
    fn ne_subtracts_singletons() {
        // Paper examples: Compare('≠', {0}, {0}) = {};
        // Compare('≠', {5}, {3}) = {5}.
        assert_eq!(compare(CmpOp::Ne, &ValueState::Const(0), &ValueState::Const(0)), ValueState::Empty);
        assert_eq!(compare(CmpOp::Ne, &ValueState::Const(5), &ValueState::Const(3)), ValueState::Const(5));
    }

    #[test]
    fn ne_null_check_filters_null() {
        // x != null keeps the non-null part.
        let x = {
            let mut s = TypeSet::null_only();
            s.insert(t(2));
            ValueState::Types(s)
        };
        let filtered = compare(CmpOp::Ne, &x, &ValueState::null());
        assert_eq!(filtered, types(&[2]));
        // null-only x is filtered to empty.
        assert_eq!(compare(CmpOp::Ne, &ValueState::null(), &ValueState::null()), ValueState::Empty);
    }

    #[test]
    fn eq_null_check_keeps_only_null() {
        let x = {
            let mut s = TypeSet::null_only();
            s.insert(t(2));
            ValueState::Types(s)
        };
        assert_eq!(compare(CmpOp::Eq, &x, &ValueState::null()), ValueState::null());
        assert_eq!(compare(CmpOp::Eq, &types(&[2]), &ValueState::null()), ValueState::Empty);
    }

    #[test]
    fn ne_against_non_singleton_keeps_vl() {
        // Soundness guard: x ≠ y with |vr| > 1 must not filter — two
        // references of the same type can still be different objects.
        assert_eq!(compare(CmpOp::Ne, &types(&[1, 2]), &types(&[2, 3])), types(&[1, 2]));
        assert_eq!(compare(CmpOp::Ne, &ValueState::Const(5), &ValueState::Any), ValueState::Const(5));
    }

    #[test]
    fn relational_on_constants() {
        // Paper examples: Compare('<', {3}, {5}) = {3};
        // Compare('<', {3}, {1}) = {}.
        assert_eq!(compare(CmpOp::Lt, &ValueState::Const(3), &ValueState::Const(5)), ValueState::Const(3));
        assert_eq!(compare(CmpOp::Lt, &ValueState::Const(3), &ValueState::Const(1)), ValueState::Empty);
        assert_eq!(compare(CmpOp::Ge, &ValueState::Const(3), &ValueState::Const(3)), ValueState::Const(3));
    }

    #[test]
    fn relational_with_any_keeps_vl() {
        assert_eq!(compare(CmpOp::Lt, &ValueState::Any, &ValueState::Const(10)), ValueState::Any);
        assert_eq!(compare(CmpOp::Lt, &ValueState::Const(42), &ValueState::Any), ValueState::Const(42));
    }

    #[test]
    fn filtering_never_invents_values() {
        // compare(op, vl, vr) ≤ vl for every op except the Eq-with-Any case,
        // where the result is ≤ vr instead (paper: "the lower value").
        let samples = [
            ValueState::Const(0),
            ValueState::Const(5),
            types(&[1]),
            types(&[1, 2]),
            ValueState::null(),
            ValueState::Any,
            ValueState::Empty,
        ];
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for vl in &samples {
                for vr in &samples {
                    let out = compare(op, vl, vr);
                    assert!(
                        out.le(vl) || out.le(vr),
                        "compare({op:?}, {vl:?}, {vr:?}) = {out:?} escapes both operands"
                    );
                }
            }
        }
    }
}
