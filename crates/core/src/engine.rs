//! The fixpoint engine: delta (difference) propagation over the PVPG
//! (paper Appendix C, Figure 15).
//!
//! The inference rules map onto the engine as follows:
//!
//! * **Source** — [`Engine::enable`] evaluates constant/`Any`/`new`/`null`
//!   sources when the flow is enabled; enabling a `new T` marks `T`
//!   instantiated.
//! * **Propagate** — [`Engine::process`] pushes the (filtered) output of an
//!   enabled flow along its use edges.
//! * **Predicate** — when an enabled flow's output becomes non-empty, its
//!   predicate successors are enabled.
//! * **Load/Store** — observe edges from receivers add use edges between
//!   field sinks and access flows as receiver types appear.
//! * **Invoke** — observe edges from receivers resolve and link callees:
//!   argument flows to formal parameters, callee return to the invoke flow.
//! * **TypeCheck/Cond/PassThrough** — the flow's output is a function of its
//!   input, filtered according to the flow kind (`Cond` uses
//!   [`crate::compare::compare`]).
//!
//! # Delta propagation
//!
//! The solvers use *difference propagation*: each flow carries a pending
//! `delta` — the part of its input state not yet pushed through the flow.
//! [`Engine::join_in`] joins incoming state into `in_state` and accumulates
//! exactly the new information into `delta` (word-level on type-set bits);
//! a worklist step drains the delta, filters only the drained part through
//! the flow kind, and joins the result into `out_state` while tracking what
//! is new there — successors receive only those new bits.
//!
//! Invariants:
//!
//! * `delta ⊑ in_state` at all times, and `out_state ⊒` the filtered image
//!   of every drained delta (`out_state ⊒ applied deltas`);
//! * the delta is drained exactly once per dequeue of an *enabled* flow
//!   (disabled flows keep accumulating until their predicate fires);
//! * only *distributive* kinds filter the bare delta (`TypeFilter`, the
//!   declared-type `Param` filter, and plain pass-throughs — kinds where
//!   `filter(a ∨ b) = filter(a) ∨ filter(b)`). `CmpFilter` is excluded
//!   because its output depends on the observed right operand: when that
//!   operand grows, the *entire* input must be re-filtered (e.g. `x < y`
//!   admits previously-rejected values of `x` once `y` grows), so it always
//!   recomputes from the full `in_state`. `CatchAll` is excluded because it
//!   unconditionally adds `null` even to an empty input, and `PredOn` is a
//!   constant source.
//!
//! Saturation widening (`maybe_saturate`) is folded into the tracking joins:
//! when a state widens to `Any`, the pending/propagated delta widens with
//! it, so successors observe the widening.
//!
//! All states grow monotonically, every propagated delta is part of the
//! corresponding full state, and filtering is monotone — so the delta
//! solvers reach the same least fixpoint as the full-join reference solver
//! ([`SolverKind::Reference`], kept as the differential-testing oracle),
//! and the worklist loop terminates because the lattice has finite height.
//!
//! # The width-adaptive narrow-join fast path
//!
//! Difference propagation only pays for itself when states are wide: for a
//! state one or two words wide, re-joining the whole thing costs the same
//! word operations as tracking the difference, and the per-join `acc`
//! matching plus the per-step `take` of the pending delta become pure
//! overhead (the regime where the full-join Reference loop used to *beat*
//! the delta path on narrow-state corpora). The fast path therefore keys on
//! the live [`ValueState::width_words`] of the target's input: when it is
//! below [`AnalysisConfig::narrow_join_width`] (in 64-bit words),
//! [`Engine::join_in`] performs a plain monotone `join` and sets the flow's
//! `needs_full` flag instead of maintaining the delta; the next worklist
//! step for a flagged flow recomputes its output from the *full* input and
//! plain-joins it onward (exactly the Reference step). Wide flows keep
//! `join_tracking` and the delta step, so the fan-out win is untouched.
//!
//! **Why this is monotone-safe.** The flag records "the pending delta may
//! under-represent the unpushed information". A flagged flow never takes
//! the delta step: the full recompute covers every join ever made into the
//! flow (tracked or not), because `in_state` only grows and the output
//! functions are monotone. Once the step clears the flag, any later tracked
//! join restores the exact-delta invariant for the *new* information only —
//! which is sufficient, since everything older was already pushed by the
//! full step. Mixed sequences of plain and tracked joins therefore converge
//! to the same least fixpoint as pure difference propagation, enforced
//! differentially by `tests/delta_vs_reference.rs` over narrow-join widths
//! {0, 2, ∞}.
//!
//! # Scheduling
//!
//! The delta solvers drain their worklist under one of three schedulers
//! ([`crate::SchedulerKind`]):
//!
//! * **FIFO** — a plain queue; kept as the scheduling oracle.
//! * **SCC priority** (forced) — flows are prioritized by the live
//!   topological order of their strongly connected component in the PVPG,
//!   maintained *online* by [`crate::graph::OnlineTopo`] over the
//!   value-carrying use and observe edges (predicate edges are one-shot
//!   enabling, impose no re-processing order, and are excluded — including
//!   them would glue method chains into one SCC via invoke-as-predicate
//!   and erase the ordering).
//! * **Adaptive** (the default) — starts every solve on the FIFO queue and
//!   *flips* to the SCC queue mid-solve when re-processing is observed (see
//!   "The adaptive flip" below).
//!
//! Invariants of the online-order SCC scheduler:
//!
//! * **Exact priorities at all times** — every flow is assigned an order
//!   position the moment it is created, and every inserted value edge
//!   either already respects the order or triggers an in-place
//!   Pearce–Kelly-style repair of the affected region (bounded
//!   bidirectional search; the smaller side moves). There is no
//!   provisional adoption, no dirty counter, and no batch recompute: the
//!   condensation the queue reads is current after every mutation,
//!   enforced by `Pvpg::assert_valid_order` in the differential suites and
//!   a Tarjan-oracle property test.
//! * **Anchored fragment placement** — a fragment built mid-solve by call
//!   linking is placed directly between the call's arguments and its
//!   invoke flow, which is exactly where the `argument → parameter` and
//!   `return → invoke` edges want it: the dominant linking pattern
//!   inserts only order-consistent edges and pays no repairs.
//! * **Cycle collapse** — when an inserted edge closes a cycle, the
//!   components on the connecting paths merge into one (union-find +
//!   member-list splice) and the disturbed region re-packs into the
//!   vacated label slots: strictly-upstream components take the lowest
//!   slots (they only move down, and any unvisited predecessor of them
//!   lies below the search window), strictly-downstream components take
//!   the highest slots (symmetrically safe), and the merged component
//!   sits between the two blocks, whose unvisited neighbours are all
//!   outside the window. This is the Pearce–Kelly pooled reorder extended
//!   with contraction.
//! * **Frontier first, then local fixpoint before successors** — the
//!   queue drains flows that have never done propagation work in FIFO
//!   order *before* any re-enqueued flow: a first-time step is structure
//!   discovery (it builds fragments and wires the very edges the order
//!   schedules by) and can be premature at most once, whereas an exact
//!   topological order over an *incomplete* graph would happily drain a
//!   re-enqueued fan-out hub once per yet-undiscovered producer.
//!   Re-enqueued flows then drain lowest-label-first: every PVPG edge
//!   between distinct SCCs goes label-upward, so intra-SCC re-enqueues
//!   land back in the bucket being drained and an SCC reaches its local
//!   fixpoint before any flow of a later SCC is re-processed.
//! * **Bounded, self-healing queue maintenance** — a repair that relocates
//!   a component while some of its flows are queued leaves stale bucket
//!   entries; the pop paths detect the label mismatch and re-queue the
//!   flow under its live label (`rebucketed_flows`). Work is proportional
//!   to the flows actually disturbed, never to the queue or the graph.
//! * **Correctness is scheduling-independent** — priorities are purely a
//!   performance heuristic: all joins are monotone, so any dequeue order
//!   converges to the same least fixpoint. Implicit dependencies that are
//!   not materialized as edges (type-subscriber injections, saturated-site
//!   re-dispatch) may therefore be safely absent from the order.
//! * **Parallel rounds are antichains of buckets** — the parallel solver's
//!   phase A/B rounds batch a set of *mutually ready* SCC buckets: a
//!   bucket joins the round only if none of its live condensation
//!   predecessors (read straight off the online order's in-edge lists) is
//!   queued or already in the batch. Because the predecessor lists are
//!   maintained online, readiness is exact as of the last inserted edge —
//!   the batch-recompute scheduler's `dirty > 0` singleton fallback (and
//!   its `dirty_round_skips` counter, now structurally zero) is gone, so
//!   batching keeps working while fragments instantiate. Frontier-tier
//!   rounds drain the whole fresh tier at once (the PR 1 round shape).
//! * The reference solver always runs FIFO — it is the oracle and stays
//!   byte-for-byte the full-join algorithm — and neither it nor the forced
//!   FIFO scheduler pays for the online order (it is never enabled there).
//!
//! # The adaptive flip (FIFO → SCC)
//!
//! The SCC machinery costs real wall time — the per-edge order maintenance
//! and the bucket indirection on every push/pop — and only pays off when
//! flows are *re-processed* (cyclic regions, shared-sink fan-out). On
//! acyclic propagate-once workloads FIFO is strictly cheaper. The default
//! [`crate::SchedulerKind::Adaptive`] therefore starts every solve on the
//! FIFO queue and watches the **re-enqueue rate**: a sliding window over
//! the last [`FLIP_WINDOW`] worklist pops counts how many dequeued a flow
//! that had already done real propagation work. When the window is
//! dominated by re-pops ([`FLIP_TRIP`] of [`FLIP_WINDOW`]) *and* enough
//! work is queued for ordering to matter ([`FLIP_MIN_QUEUE`]), the solver
//! flips: the *first* flip of a session absorbs the graph into the online
//! order (one O(V+E) pass — the cost the old lazy condensation paid, paid
//! at the same moment), and the queued flows migrate into the SCC queue
//! in their FIFO order under exact priorities. From then on the order is
//! maintained through every mutation, so everything after the first flip
//! — including every *resumed* solve of the session — reads an
//! already-current condensation and never recomputes anything.
//! The window is cleared at the start of every solve, so
//! a resumed solve's flip decision rides on its own behaviour (the
//! per-solve vs cumulative split is documented on
//! [`crate::SchedulerStats`]), while the flip itself is sticky: once a
//! session has demonstrated re-processing, resumed solves stay on the SCC
//! queue.
//!
//! **Why the mid-solve flip is safe.** Scheduling is a pure performance
//! heuristic (see above): every dequeue order converges to the same least
//! fixpoint because all joins are monotone and every state is part of the
//! graph, not the queue. The flip merely permutes the order in which the
//! already-queued flows are drained, and it is only ever taken *between*
//! worklist steps (between rounds for the parallel solver), so no step
//! observes a half-migrated queue. `tests/delta_vs_reference.rs` asserts a
//! flipping run is result-identical to forced-FIFO and forced-SCC runs.
//!
//! # Resume (the checkpoint argument)
//!
//! The engine is owned by an [`crate::AnalysisSession`] and may be solved
//! *repeatedly*: after a solve reaches its fixpoint, the session can add new
//! roots ([`Engine::add_roots`]), retract solved ones
//! ([`Engine::retract_roots`]), or mask/restore a method body
//! ([`Engine::mask_method`] / [`Engine::unmask_method`]), and solve again,
//! continuing from the current PVPG instead of rebuilding it. The invariant
//! tying these together is weaker than the historical *monotone-resume*
//! invariant (which only had to cover root addition) but every layer —
//! `graph.rs`, this module, `session.rs`, `report.rs`, and the server's
//! `registry.rs`/`protocol.rs` — relies on exactly this statement:
//!
//! > **Checkpoint invariant.** Between solves, the engine's state is a
//! > *sound under-approximation* of the least fixpoint of the current
//! > configuration (surviving roots + unmasked bodies), in which every
//! > derived fact is derivable in that configuration; re-running any solver
//! > to completion reaches that configuration's least fixpoint exactly.
//!
//! For the **monotone** mutations (adding roots, restoring a masked body)
//! the classical argument applies unchanged, because every engine action is
//! monotone and idempotent:
//!
//! * all value states (`in_state`, `delta`, `out_state`) only ever grow
//!   (joins in a finite-height lattice; saturation widens to the absorbing
//!   `Any`), and `enabled` flips only from `false` to `true`;
//! * structures only accrete — flows, edges, linked targets, instantiated
//!   types, reachable methods, subscribers, and saturated sites are never
//!   removed by solving, and every registration replays the relevant *past*
//!   events (`subscribe` feeds already-instantiated subtypes, `push_state`
//!   feeds the source's current out-state, a saturating receiver
//!   re-dispatches over every type instantiated so far);
//! * a fixpoint is a state where no step can change anything, so re-running
//!   any solver over a saturated graph is a no-op, and injecting new roots
//!   merely enqueues the frontier their states actually change.
//!
//! The **non-monotone** mutations (retraction, disabling a body) restore the
//! checkpoint invariant by *over-deleting*, DRed-style (see
//! [`Engine::retract_roots`] for the mechanics): a taint closure computes a
//! superset of the methods whose derived facts could depend on the retracted
//! input, those fragments are deactivated and their states reset to bottom,
//! and the worklist is re-seeded from the surviving frontier. After the
//! over-delete, every surviving fact is — by construction of the closure —
//! derivable without the retracted input, so the state is again a sound
//! under-approximation and the next solve re-derives exactly the surviving
//! configuration's least fixpoint. One subtlety: a *deactivated* fragment is
//! outside the checkpoint state. Its physical CSR in-edges persist while it
//! is parked, so live flows keep joining state into its disabled flows —
//! state that can mix configurations a later invalidation (which only
//! taints the live region) never cleans up. [`Engine::activate_fragment`]
//! therefore re-resets every fragment flow to bottom before replaying the
//! build-time seeds; the purge of the fragment's dynamic dedup pairs at
//! park time guarantees the re-derive re-pushes every legitimate input. Hence any interleaving of adds, retracts,
//! edits, and solves converges to the *same least fixpoint* as a fresh solve
//! of the final configuration — only the path (and the step count, which the
//! trajectory harness's `resume` and `edit-` rungs measure) differs.
//! `tests/session_resume.rs` and `tests/edit_scripts.rs` enforce the
//! identity differentially across every solver × scheduler combination.
//!
//! # Interrupt safety
//!
//! The checkpoint invariant makes *any* between-steps state a valid
//! checkpoint, which is what lets a solve stop early (budgets, the
//! cooperative [`crate::CancelToken`]) and resume later with zero special
//! machinery:
//!
//! * **Why stopping mid-solve is sound.** The scheduling invariant is that
//!   an enabled flow with a non-empty pending delta is queued (except
//!   transiently *inside* a step). The engine only ever checks its
//!   interrupt guard ([`Engine::poll_interrupt`]) at points where no step
//!   is open — the top of the sequential/reference loops, the top of a
//!   parallel round, and between phase-B applies (where the not-yet-applied
//!   outputs are discarded and their flows re-enqueued, restoring the
//!   invariant before returning). So an interrupted engine is
//!   indistinguishable from one that was handed a larger worklist: every
//!   propagated fact is a fact of the least fixpoint (monotonicity — the
//!   partial result is a sound under-approximation), and the next
//!   [`Engine::run_solver`] simply keeps draining.
//! * **What survives an interrupt.** Everything, because nothing is torn
//!   down: the pending deltas (`delta ⊑ in_state` still holds), the
//!   `queued` residency/processed/worked bits, the live online topological
//!   order and its union-find condensation, the sticky adaptive flip (and
//!   its cleared-per-solve window), the saturation and subscriber
//!   registries, and the cumulative counters. The resumed solve re-bases
//!   its per-solve statistics exactly like a resume after completion.
//! * **Budget semantics.** The step budget is per-solve (`steps` executed
//!   since this `run_solver` call) and checked *exactly*, before every
//!   step, so an interrupt-at-`k` sweep is deterministic; the cancel
//!   token, wall clock, and memory estimate are polled every
//!   [`INTERRUPT_CHECK_STRIDE`] steps (the first poll of a solve always
//!   checks, so a pre-tripped token or zero budget interrupts before any
//!   work). Overshoot past a wall/memory budget is bounded by one stride.
//! * **Worker panics don't poison.** Phase A of the parallel solver is
//!   read-only; each per-flow step runs under `catch_unwind`, so a
//!   panicking worker costs exactly its round: the round's prospective
//!   outputs are discarded, the batch's consumed `needs_full` flags are
//!   restored, and every batch flow is re-enqueued — the graph is
//!   untouched and the scheduling invariant holds. The engine then marks
//!   itself degraded (subsequent solves dispatch sequentially, where the
//!   panic will either reproduce attributably or not at all) and surfaces
//!   [`AnalysisError::WorkerPanicked`].
//!
//! `tests/interrupt_resume.rs` (and, with `--features fault-inject`,
//! `tests/fault_injection.rs`) enforce all of this differentially:
//! interrupt at every `k`, resume, and require bit-identical results to an
//! uninterrupted solve across every solver × scheduler combination.

use crate::build::{build_method_graph, BuildOutput};
use crate::compare::compare;
use crate::config::{AnalysisConfig, SchedulerKind, SolverKind};
use crate::error::{AnalysisError, WorkerPanic};
use crate::flow::{Flow, FlowId, FlowKind, SiteId, MAX_FLOW_COUNT};
use crate::graph::{MethodGraph, Pvpg};
use crate::interrupt::{CancelToken, Completeness, InterruptReason};
use crate::lattice::{TypeSet, ValueState};
use crate::metrics::{InterruptStats, InvalidationStats, SchedulerStats};
use crate::report::{AnalysisResult, ReachableSet, SolveStats};
use skipflow_ir::{BitSet, FieldId, MethodId, Program, TypeId, TypeRef};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Bit 0 of [`Engine::queued`]: the flow is resident in the worklist.
const QUEUED: u8 = 1;

/// Bit 1 of [`Engine::queued`]: the flow has been dequeued at least once
/// (the adaptive flip detector's re-process signal — deliberately counting
/// *any* re-dequeue, so the detector's trip point is unchanged from the
/// batch-recompute scheduler it was tuned with).
const PROCESSED: u8 = 2;

/// Bit 2 of [`Engine::queued`]: some worklist step did real propagation
/// work for the flow (a no-op dequeue — disabled flow, empty delta — does
/// not count). This is the SCC queue's frontier-tier signal: a flow stays
/// in the frontier until its first *working* step.
const WORKED: u8 = 4;

/// Flow-capacity headroom the engine keeps below [`MAX_FLOW_COUNT`]: a
/// single method fragment never creates this many flows, so checking once
/// per [`Engine::make_reachable`] (instead of per flow) cannot overshoot
/// into the `NO_FLOW` sentinel.
const FLOW_CAPACITY_MARGIN: usize = 1 << 22;

/// Sliding-window length (in worklist pushes) of the adaptive scheduler's
/// re-enqueue-rate detector. Small enough that a fan-out re-processing
/// storm is detected within a few hundred wasted steps (the fan-out rungs'
/// step budget), large enough that a handful of loop-φ re-enqueues on an
/// acyclic workload cannot dominate it. Fixed at 128 so the window is one
/// branchless `u128` shift register (the detector rides the solver's
/// hottest loop; a ring buffer here costs measurable wall time).
const FLIP_WINDOW: usize = 128;

/// Re-pushes within the window that trip the FIFO→SCC flip (3/4 of
/// [`FLIP_WINDOW`]): the queue is then demonstrably dominated by
/// re-processing, which is the regime where SCC priorities win 10–25× in
/// steps. Acyclic ladders measure far below this outside their drain tail.
const FLIP_TRIP: u32 = 96;

/// Minimum queued flows for the flip to fire. A re-push-heavy window over a
/// near-empty queue (the drain tail of an otherwise acyclic solve) is not
/// worth an O(V+E) condensation — there is almost nothing left to order.
const FLIP_MIN_QUEUE: usize = 64;

/// Bound on non-empty buckets examined per parallel round while extending
/// the batch to an antichain (keeps `pop_bucket` from degenerating into an
/// O(#buckets) scan per round on condensations with many tiny SCCs).
const ANTICHAIN_SCAN_BUDGET: usize = 256;

/// Consecutive non-ready candidates after which the antichain scan gives
/// up for the round: when the queue is dominated by one blocked frontier
/// (e.g. hundreds of fan-out readers all waiting on the sink bucket),
/// paying the full scan budget every round is pure overhead — the moment
/// the frontier clears, candidates stop missing and the scan runs long
/// again.
const ANTICHAIN_MISS_LIMIT: usize = 16;

/// Rounds to skip further antichain attempts after one that failed to
/// batch anything beyond the first bucket — blocked frontiers tend to stay
/// blocked for many consecutive rounds, and the scan itself is the cost.
const ANTICHAIN_BACKOFF_ROUNDS: u32 = 8;

/// Maximum buckets batched into one parallel antichain round.
const ANTICHAIN_MAX_BUCKETS: usize = 64;

/// In-edge entries examined per bucket readiness check before the bucket
/// conservatively counts as not ready (bounds a round's scan cost on
/// components with huge in-degree, e.g. a shared field sink).
const ANTICHAIN_PRED_BUDGET: usize = 512;



/// Cap on a parallel round's batch while an adaptive solve is still in its
/// FIFO phase: the flip decision is only taken *between* rounds, so
/// whole-worklist rounds would delay detection by thousands of steps on a
/// re-processing storm. Forced-FIFO parallel keeps the PR 1 whole-worklist
/// rounds.
const ADAPTIVE_ROUND_CAP: usize = 512;

/// Worklist steps between polls of the cancel token / wall clock / memory
/// estimate. The step budget is *not* strided — it is one integer compare
/// against a precomputed end value, checked before every step, so
/// interrupt-at-`k` sweeps are exact. 1024 keeps the non-budget checks (an
/// atomic load, an `Instant::now`) far below 1% of wall time even on the
/// cheapest steps (the BENCH guard `cancel_check_overhead_within_1pct`
/// measures this on the 32000-flow rung), while bounding the response
/// latency to a trip at ~a thousand steps — microseconds, not seconds.
const INTERRUPT_CHECK_STRIDE: u64 = 1024;

/// How a solver loop ended: fixpoint reached, or stopped early at a valid
/// checkpoint (see the module docs, "Interrupt safety").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SolveEnd {
    /// The worklist drained: the least fixpoint over all added roots.
    Complete,
    /// A budget or the cancel token stopped the solve between steps.
    Interrupted(InterruptReason),
}

/// A phase-A prospective output: `(flow, new output, consumed delta
/// snapshot, full-step flag)` — see [`Engine::compute_step`].
type StepOut = (FlowId, ValueState, Option<ValueState>, bool);

/// Best-effort stringification of a caught panic payload (the standard
/// `&str` / `String` payloads; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-solve interrupt guard, armed by [`Engine::run_solver`] only when a
/// budget is configured or a cancel token was passed — budget-less solves
/// skip the whole machinery on one `Option` test per step.
struct InterruptGuard {
    cancel: Option<CancelToken>,
    /// Absolute `Engine::steps` value at which the per-solve step budget is
    /// exhausted (`steps at solve start + budget`).
    step_end: Option<u64>,
    /// The configured step budget, for reason reporting.
    step_budget: u64,
    wall_budget: Option<Duration>,
    memory_budget: Option<usize>,
    /// When this solve started (the wall budget is per-solve).
    started: Instant,
    /// Absolute `Engine::steps` value of the next strided poll. Initialized
    /// to the solve-start step count so the *first* poll always does the
    /// full check: a pre-tripped token or zero wall/memory budget
    /// interrupts before any step runs.
    next_check_at: u64,
}

/// The SCC-aware priority worklist over the live online order (see the
/// module docs, "Scheduling").
///
/// Two tiers:
///
/// * **Frontier tier** — flows that have never been processed, in FIFO
///   order, drained before anything else. A first-time step is *structure
///   discovery*: it builds fragments, wires edges, and thereby adds the
///   very order constraints the priority tier schedules by — and it can be
///   premature at most once, so running the whole frontier ahead of any
///   re-processing is cheap insurance. Without this tier, a re-enqueued
///   fan-out hub whose (exact!) label sits below a still-growing enabling
///   cascade re-propagates once per discovered producer — the topological
///   order is correct but the graph it orders is not complete yet.
/// * **Priority tier** — re-enqueued flows, in buckets keyed by the
///   *current* order label of their component (`BTreeMap<label, FIFO>`):
///   a push reads the flow's live label off the graph's
///   [`crate::graph::OnlineTopo`], so every flow — including a fragment
///   instantiated one step ago — is queued under its exact condensation
///   priority; there is no provisional adoption and no dirty counter.
///
/// When an order repair relocates a component *while some of its flows are
/// queued*, those bucket entries go stale; the pop paths self-heal by
/// re-queueing any popped flow whose live label no longer matches its
/// bucket (counted as `rebucketed_flows` — the bounded replacement for the
/// old wholesale bucket migration at recompute time).
struct SccQueue {
    /// Never-processed flows, FIFO — the *frontier tier*, drained before
    /// any labeled bucket (see the type docs: structure discovery first).
    fresh: VecDeque<u32>,
    /// Non-empty FIFO buckets of re-enqueued flows keyed by order label
    /// (empty buckets are removed eagerly, so `contains_key` doubles as
    /// "has queued work").
    buckets: BTreeMap<u64, VecDeque<u32>>,
    /// Queued flows across all buckets.
    len: usize,
    /// Stale pops re-queued under their live label.
    rebucketed: u64,
    /// Parallel antichain rounds taken (non-empty `pop_bucket` calls).
    antichain_rounds: u64,
    /// Total buckets drained by those rounds (> rounds ⇔ real batching).
    antichain_batched: u64,
    /// Rounds left of the antichain attempt backoff (see
    /// [`ANTICHAIN_BACKOFF_ROUNDS`]).
    antichain_backoff: u32,
    /// Debug-only duplicate-enqueue guard: a flow must never be resident in
    /// two buckets at once.
    #[cfg(debug_assertions)]
    resident: Vec<bool>,
}

impl SccQueue {
    fn new() -> Self {
        SccQueue {
            fresh: VecDeque::new(),
            buckets: BTreeMap::new(),
            len: 0,
            rebucketed: 0,
            antichain_rounds: 0,
            antichain_batched: 0,
            antichain_backoff: 0,
            #[cfg(debug_assertions)]
            resident: Vec::new(),
        }
    }

    /// Enqueues `f`: never-processed flows (`fresh`) join the frontier
    /// tier in FIFO order; re-enqueued flows go to the bucket of their
    /// current order label (FIFO within the bucket — a bucket is one SCC,
    /// iterated to local fixpoint).
    fn push(&mut self, f: FlowId, label: u64, fresh: bool) {
        #[cfg(debug_assertions)]
        {
            if self.resident.len() <= f.index() {
                self.resident.resize(f.index() + 1, false);
            }
            debug_assert!(
                !self.resident[f.index()],
                "flow {f:?} would be resident in two priority buckets"
            );
            self.resident[f.index()] = true;
        }
        if fresh {
            self.fresh.push_back(f.index() as u32);
        } else {
            self.buckets.entry(label).or_default().push_back(f.index() as u32);
        }
        self.len += 1;
    }

    /// Dequeues from the lowest-label non-empty bucket, re-queueing stale
    /// entries (flows whose component was relocated while queued) under
    /// their live label first.
    fn pop(&mut self, g: &Pvpg) -> Option<FlowId> {
        // Frontier tier first: structure discovery before saturation.
        if let Some(id) = self.fresh.pop_front() {
            self.len -= 1;
            #[cfg(debug_assertions)]
            {
                self.resident[id as usize] = false;
            }
            return Some(FlowId::from_index(id as usize));
        }
        loop {
            let mut entry = self.buckets.first_entry()?;
            let label = *entry.key();
            let Some(id) = entry.get_mut().pop_front() else {
                entry.remove();
                continue;
            };
            if entry.get().is_empty() {
                entry.remove();
            }
            self.len -= 1;
            let f = FlowId::from_index(id as usize);
            #[cfg(debug_assertions)]
            {
                self.resident[id as usize] = false;
            }
            let live = g.live_label(f);
            if live != label {
                self.rebucketed += 1;
                self.push(f, live, false);
                continue;
            }
            return Some(f);
        }
    }

    /// Whether the bucket at `label` is *ready* to join the current round's
    /// batch: every live condensation predecessor of its component must be
    /// neither queued (its local fixpoint is not reached) nor part of the
    /// batch being assembled (`taken`). Readiness rather than mere pairwise
    /// independence is what keeps chains serialized: in `s1 → s2 → s3`
    /// there is no direct `s1 → s3` edge, yet `s3` must not run in `s1`'s
    /// round while `s2` is queued. Answered from the online order's live
    /// in-edge lists — exact as of the last inserted edge, so dynamically
    /// wired predecessors (fan-out readers acquiring the field sink
    /// mid-solve) block batching immediately, with no recompute lag.
    /// Takes the graph mutably because an exhausted predecessor budget
    /// triggers the lazy in-edge dedup ([`Pvpg::component_blocked`]): the
    /// duplicate accumulation that exhausted the budget is compacted on the
    /// spot, so the *next* readiness check of the same component sees the
    /// deduplicated list instead of conservatively blocking forever.
    fn bucket_ready(&self, g: &mut Pvpg, sample: FlowId, label: u64, taken: &[u64]) -> bool {
        !g.component_blocked(sample, ANTICHAIN_PRED_BUDGET, |p| {
            p != label && (taken.contains(&p) || self.buckets.contains_key(&p))
        })
    }

    /// Drains an *antichain* of mutually ready SCC buckets — the parallel
    /// solver's batch unit (one round). The batch always contains the whole
    /// lowest-label non-empty bucket; further buckets join while every one
    /// of their condensation predecessors is idle ([`SccQueue::bucket_ready`]),
    /// bounded by [`ANTICHAIN_SCAN_BUDGET`] / [`ANTICHAIN_MAX_BUCKETS`] and
    /// the per-bucket predecessor budget. Because the order and the
    /// predecessor lists are maintained online, batching keeps working
    /// while fragments instantiate — the `dirty > 0` singleton fallback of
    /// the batch-recompute scheduler is gone.
    fn pop_bucket(&mut self, g: &mut Pvpg) -> Vec<FlowId> {
        let mut batch = Vec::new();
        // Frontier rounds drain the whole fresh tier at once (the PR 1
        // FIFO round shape — fresh flows have no useful relative order and
        // each is processed at most once prematurely).
        if !self.fresh.is_empty() {
            self.len -= self.fresh.len();
            for id in self.fresh.drain(..) {
                #[cfg(debug_assertions)]
                {
                    self.resident[id as usize] = false;
                }
                batch.push(FlowId::from_index(id as usize));
            }
            return batch;
        }
        // Drain the first bucket, healing stale entries; a bucket can turn
        // out entirely stale, in which case move on to the next.
        let first_label = loop {
            let Some(entry) = self.buckets.first_entry() else {
                return batch;
            };
            let label = *entry.key();
            let ids = entry.remove();
            self.drain_validated(g, label, ids, &mut batch);
            if !batch.is_empty() {
                break label;
            }
        };
        self.antichain_rounds += 1;
        self.antichain_batched += 1;
        if self.buckets.is_empty() {
            return batch;
        }
        if self.antichain_backoff > 0 {
            self.antichain_backoff -= 1;
            return batch;
        }
        // Extend to an antichain: walk the remaining buckets in label order
        // and take every ready one, under the scan budgets.
        let mut taken: Vec<u64> = vec![first_label];
        let mut misses = 0usize;
        for (&label, ids) in self.buckets.iter().take(ANTICHAIN_SCAN_BUDGET) {
            if misses >= ANTICHAIN_MISS_LIMIT || taken.len() >= ANTICHAIN_MAX_BUCKETS {
                break;
            }
            let sample = FlowId::from_index(ids[0] as usize);
            // A stale bucket (component relocated while queued) cannot be
            // judged under this key; leave it for the pop paths to heal.
            if g.live_label(sample) == label && self.bucket_ready(g, sample, label, &taken) {
                taken.push(label);
                misses = 0;
            } else {
                misses += 1;
            }
        }
        if taken.len() == 1 {
            self.antichain_backoff = ANTICHAIN_BACKOFF_ROUNDS;
        }
        for &label in &taken[1..] {
            let ids = self.buckets.remove(&label).expect("taken bucket exists");
            let before = batch.len();
            self.drain_validated(g, label, ids, &mut batch);
            if batch.len() > before {
                self.antichain_batched += 1;
            }
        }
        batch
    }

    /// Moves a removed bucket's entries into `batch`, re-queueing any stale
    /// ones under their live label.
    fn drain_validated(
        &mut self,
        g: &Pvpg,
        label: u64,
        ids: VecDeque<u32>,
        batch: &mut Vec<FlowId>,
    ) {
        for id in ids {
            self.len -= 1;
            let f = FlowId::from_index(id as usize);
            #[cfg(debug_assertions)]
            {
                self.resident[id as usize] = false;
            }
            let live = g.live_label(f);
            if live != label {
                self.rebucketed += 1;
                self.push(f, live, false);
            } else {
                batch.push(f);
            }
        }
    }
}

/// The solver worklist: a plain FIFO queue or the (boxed — it carries the
/// bucket arrays and condensation-edge list) SCC priority queue.
enum Worklist {
    Fifo(VecDeque<FlowId>),
    Scc(Box<SccQueue>),
}


/// The adaptive scheduler's re-enqueue-rate detector (present only while an
/// `Adaptive` solve is still in its FIFO phase; dropped at the flip).
///
/// The rate is observed at *dequeue* time: every re-enqueued flow is seen
/// exactly once when it drains, so the fraction of dequeues hitting an
/// already-processed flow equals the re-enqueue rate one queue-length
/// later — and the processed-before bit rides in the engine's `queued`
/// byte, which the pop reads and writes anyway (see [`Engine::queued`]),
/// so the detector touches no memory of its own. The window over the last
/// [`FLIP_WINDOW`] (= 128) dequeues is a `u128` shift register: one
/// shift-or per pop, one popcount for the trip test — branchless, so the
/// FIFO phase stays within the ±2 % wall-time band of a plain FIFO solve
/// (the guard BENCH_PR4.json enforces on the ladder).
struct FlipTracker {
    /// The last [`FLIP_WINDOW`] dequeues, newest in bit 0: set = re-process.
    window: u128,
    /// Total dequeues observed (mirrored into `SchedulerStats` lazily).
    pops: u64,
    /// Total re-process dequeues observed.
    re_pops: u64,
}

impl FlipTracker {
    fn new() -> Self {
        const { assert!(FLIP_WINDOW == 128, "the window is a u128 shift register") };
        FlipTracker {
            window: 0,
            pops: 0,
            re_pops: 0,
        }
    }

    /// Observes one worklist pop: `re` is whether the flow had been
    /// processed before (the engine reads it off the `queued` byte).
    #[inline]
    fn observe(&mut self, re: bool) {
        self.window = (self.window << 1) | re as u128;
        self.pops += 1;
        self.re_pops += re as u64;
    }

    /// Clears the sliding window at the start of a resumed solve: the flip
    /// decision must be driven by *this* solve's re-enqueue behaviour, not
    /// residue from the prior solve's drain tail. The cumulative `pops` /
    /// `re_pops` counters are left alone (the engine snapshots them to
    /// derive per-solve values).
    fn begin_solve(&mut self) {
        self.window = 0;
    }

    /// Whether the sliding window is dominated by re-processing.
    #[inline]
    fn tripped(&self) -> bool {
        self.window.count_ones() >= FLIP_TRIP
    }
}

/// Everything needed to re-activate a method's PVPG fragment after an
/// invalidation deactivated it, captured once when the fragment is first
/// built. Replaying `enables`/`pushes`/`catch_subscribers` against the reset
/// flows performs exactly the enable-time actions a fresh
/// [`build_method_graph`] would trigger — without growing the flow arena.
struct FragmentReplay {
    /// Index of the first flow created for the fragment.
    first_flow: usize,
    /// One past the last flow index created for the fragment.
    end_flow: usize,
    /// Flows gated directly by `pred_on`, enabled immediately on activation
    /// (under the predicate-less baseline the whole range is enabled).
    enables: Vec<FlowId>,
    /// Build-time edges from global flows that may already carry state and
    /// need an initial push on every activation.
    pushes: Vec<(FlowId, FlowId)>,
    /// Catch flows to re-subscribe under the coarse exception policy.
    catch_subscribers: Vec<(TypeId, FlowId)>,
    /// The fragment graph, parked here while the method is deactivated
    /// (`None` while the fragment is live in [`Pvpg::methods`]). Keeping
    /// deactivated fragments out of `methods` means reports, metrics, and
    /// the invalidation closure all iterate active fragments only.
    graph: Option<MethodGraph>,
}

/// Who an injection source ([`Pvpg::add_root_source`]) was created for —
/// the information needed to kill and re-create it when an invalidation
/// resets the subscription state it carries.
#[derive(Clone, Copy, PartialEq, Eq)]
enum InjectionOwner {
    /// A root method's parameter injection (session roots and the
    /// configured reflective roots both register here).
    Root(MethodId),
    /// A reflective field's sink injection.
    ReflectiveField(FieldId),
}

/// One live injection: `rs` feeds `target` with every instantiated subtype
/// of the owner's declared bound (or `Any` for primitives).
struct Injection {
    rs: FlowId,
    target: FlowId,
    owner: InjectionOwner,
}

pub(crate) struct Engine<'p> {
    program: &'p Program,
    config: AnalysisConfig,
    g: Pvpg,
    worklist: Worklist,
    /// Per-flow scheduling byte: bit 0 ([`QUEUED`]) = currently resident in
    /// the worklist; bit 1 ([`PROCESSED`]) = dequeued at least once (the
    /// adaptive flip detector's re-process signal, kept in the byte the
    /// pop writes anyway so observing it costs nothing).
    queued: Vec<u8>,
    /// Reachable methods: O(1) membership plus discovery order (sorted into
    /// a `BTreeSet` once, at the end).
    reachable: BitSet,
    reachable_order: Vec<MethodId>,
    instantiated: BitSet,
    instantiated_order: Vec<TypeId>,
    /// `(declared bound, target)`: target's input receives every
    /// instantiated subtype of the bound (root params, reflective fields,
    /// coarse exception handlers).
    type_subscribers: Vec<(TypeId, FlowId)>,
    /// Invoke sites whose receiver saturated to `Any`: re-dispatched on
    /// every newly instantiated type. Order vector for iteration, bitset
    /// for O(1) membership.
    saturated_sites: Vec<SiteId>,
    saturated_set: BitSet,
    /// Field sinks already seeded with their default value (by field index).
    defaulted_fields: BitSet,
    /// Per-method fragment replays, captured at build time (module docs,
    /// "Resume": deactivated fragments are re-activated from these instead
    /// of rebuilding, so the flow arena never grows on re-activation).
    replays: BTreeMap<MethodId, FragmentReplay>,
    /// Live injection sources, so invalidation can kill and re-create the
    /// ones whose subscription state became stale.
    injections: Vec<Injection>,
    /// Methods whose bodies are currently masked out (seeded from
    /// [`AnalysisConfig::masked_methods`], mutated by [`Engine::mask_method`]
    /// / [`Engine::unmask_method`]): marked reachable when discovered, but
    /// no fragment is ever built while masked.
    masked: BitSet,
    /// Cumulative retraction/edit counters (session-lifetime, like `steps`).
    invalidation: InvalidationStats,
    /// `steps` at the first invalidation since the last completed solve:
    /// the re-derivation window `rederive_steps` accumulates over. `None`
    /// while no invalidation is pending re-derivation.
    rederive_base: Option<u64>,
    /// The adaptive scheduler's FIFO-phase re-push detector (`None` under
    /// forced schedulers, and after the flip).
    flip: Option<FlipTracker>,
    /// Cumulative step count at the start of the current solve (per-solve
    /// statistics like `flip_at_step` are relative to it).
    solve_start_steps: u64,
    /// The flip detector's `(pops, re_pops)` at the start of the current
    /// solve — the baseline the per-solve adaptive counters subtract.
    adaptive_base: (u64, u64),
    /// Resolved narrow-join fast-path threshold: the configured
    /// `narrow_join_width`, except 0 (disabled) for the reference solver,
    /// which must stay byte-for-byte the PR 1 algorithm.
    narrow_join: usize,
    /// Set once the PVPG hits the `FlowId` capacity limit: the engine stops
    /// building fragments and the session surfaces the error
    /// ([`crate::AnalysisSession::try_solve`]).
    overflow: Option<AnalysisError>,
    /// The active solve's interrupt guard (`None` on budget-less,
    /// token-less solves — the common case pays one `Option` test per step).
    guard: Option<InterruptGuard>,
    /// Set when a parallel phase-A worker panicked: the session stays
    /// usable, but all subsequent solves dispatch sequentially (module
    /// docs, "Interrupt safety").
    degraded: bool,
    /// Whether the most recent solve ended interrupted (drives the
    /// `resumed_after_interrupt` statistic on the next solve).
    last_interrupted: bool,
    /// Cumulative interrupt/panic statistics (session-lifetime, like
    /// `steps`).
    interrupt_stats: InterruptStats,
    /// Deterministic fault-injection triggers (test builds only).
    #[cfg(feature = "fault-inject")]
    fault: crate::fault::FaultState,
    sched_stats: SchedulerStats,
    steps: u64,
    full_join_steps: u64,
    state_joins: u64,
    narrow_joins: u64,
}

impl<'p> Engine<'p> {
    pub(crate) fn new(program: &'p Program, config: AnalysisConfig) -> Self {
        // The reference solver is the oracle: it always runs the PR 1 FIFO
        // order regardless of the configured scheduler, and never takes the
        // narrow-join fast path (its join_in must stay the PR 3 code path).
        let worklist = match (config.solver, config.scheduler) {
            (SolverKind::Reference, _) | (_, SchedulerKind::Fifo | SchedulerKind::Adaptive) => {
                Worklist::Fifo(VecDeque::new())
            }
            (_, SchedulerKind::SccPriority) => Worklist::Scc(Box::new(SccQueue::new())),
        };
        let adaptive = !matches!(config.solver, SolverKind::Reference)
            && config.scheduler == SchedulerKind::Adaptive;
        let narrow_join = match config.solver {
            SolverKind::Reference => 0,
            _ => config.narrow_join_width,
        };
        // The online topological order backs every scheduler that reads
        // priorities, from the first moment one needs it: session start
        // under forced SCC, the first flip under Adaptive (a one-time
        // O(V+E) absorption — the same cost the flip used to pay for its
        // lazy condensation). From then on it is maintained through every
        // mutation and carried across resumes, so a resumed solve never
        // recomputes anything at solve start. Never-flipping adaptive
        // runs (acyclic, propagate-once) pay nothing at all, as do the
        // FIFO oracle and the reference solver.
        let mut g = Pvpg::new();
        if !matches!(config.solver, SolverKind::Reference)
            && config.scheduler == SchedulerKind::SccPriority
        {
            g.enable_online_order();
        }
        #[cfg(feature = "fault-inject")]
        let config_fault_plan = config.fault_plan.clone();
        let masked = config.masked_methods.iter().map(|m| m.index()).collect();
        Engine {
            program,
            config,
            g,
            worklist,
            queued: Vec::new(),
            reachable: BitSet::new(),
            reachable_order: Vec::new(),
            instantiated: BitSet::new(),
            instantiated_order: Vec::new(),
            type_subscribers: Vec::new(),
            saturated_sites: Vec::new(),
            saturated_set: BitSet::new(),
            defaulted_fields: BitSet::new(),
            replays: BTreeMap::new(),
            injections: Vec::new(),
            masked,
            invalidation: InvalidationStats::default(),
            rederive_base: None,
            flip: adaptive.then(FlipTracker::new),
            solve_start_steps: 0,
            adaptive_base: (0, 0),
            narrow_join,
            overflow: None,
            guard: None,
            degraded: false,
            last_interrupted: false,
            interrupt_stats: InterruptStats::default(),
            #[cfg(feature = "fault-inject")]
            fault: crate::fault::FaultState::new(config_fault_plan),
            sched_stats: SchedulerStats::default(),
            steps: 0,
            full_join_steps: 0,
            state_joins: 0,
            narrow_joins: 0,
        }
    }

    /// The adaptive scheduler's FIFO→SCC flip: when the sliding-window
    /// re-push rate shows the queue is dominated by re-processing (and
    /// enough is queued for ordering to matter), migrate the FIFO queue
    /// into SCC priority buckets in its current order. The condensation is
    /// *already current* — the online order has been maintained since
    /// session start — so the flip is a pure queue migration: no Tarjan
    /// pass, no lazily computed priorities. Only ever called *between*
    /// worklist steps / rounds, so no step observes a half-migrated queue;
    /// safe mid-solve because results are scheduler-independent (module
    /// docs, "The adaptive flip").
    fn maybe_flip(&mut self) {
        let Some(tracker) = &self.flip else { return };
        // Fast guard: the window can only have *become* tripped if the most
        // recent observation was a re-process (bit 0); skipping the
        // popcount otherwise keeps this per-step call at two branches on
        // propagate-once workloads.
        if tracker.window & 1 == 0 || !tracker.tripped() {
            return;
        }
        let Worklist::Fifo(fifo) = &self.worklist else { return };
        if fifo.len() < FLIP_MIN_QUEUE {
            return;
        }
        let tracker = self.flip.take().expect("checked above");
        self.sched_stats.adaptive_pops = tracker.pops - self.adaptive_base.0;
        self.sched_stats.adaptive_re_pops = tracker.re_pops - self.adaptive_base.1;
        self.sched_stats.adaptive_pops_total = tracker.pops;
        self.sched_stats.adaptive_re_pops_total = tracker.re_pops;
        self.sched_stats.flips += 1;
        self.sched_stats.flip_at_step = self.steps - self.solve_start_steps;
        // First flip of the session: absorb the graph into the online
        // order (one O(V+E) pass). Every later mutation maintains it
        // incrementally, and it stays current across resumes — the flip is
        // taken between steps, so no batch is open here.
        self.g.enable_online_order();
        let Worklist::Fifo(fifo) = &mut self.worklist else { unreachable!("checked above") };
        let drained = std::mem::take(fifo);
        let mut q = Box::new(SccQueue::new());
        for f in drained {
            // The migrated queue goes entirely into the priority tier: at
            // the flip the graph region the queued flows span is already
            // discovered (they have been sitting in a FIFO queue mid
            // re-processing storm), so exact labels order them better than
            // the frontier heuristic — only flows enqueued from here on
            // split by the worked bit.
            q.push(f, self.g.live_label(f), false);
        }
        self.worklist = Worklist::Scc(q);
    }

    /// The field sink for `field`, seeded once with the Java default value
    /// (`null` for references, 0 for primitives): an unwritten field read
    /// yields its default, so soundness requires it in the field's state.
    fn field_sink(&mut self, field: skipflow_ir::FieldId) -> FlowId {
        let sink = self.g.field_sink(field);
        self.sync_queued();
        if self.defaulted_fields.insert(field.index()) {
            let default = match self.program.field(field).ty {
                TypeRef::Object(_) => ValueState::null(),
                _ => {
                    if self.config.primitives {
                        ValueState::Const(0)
                    } else {
                        ValueState::Any
                    }
                }
            };
            self.join_in(sink, &default);
        }
        sink
    }

    /// One-time setup of the global flows and the configured reflective
    /// surface (§5). Called exactly once per session, before the first
    /// solve; analysis roots are added separately via [`Engine::add_roots`].
    pub(crate) fn bootstrap(&mut self) {
        // pred_on is enabled with a non-empty token state, so the flows it
        // predicates are enabled transitively.
        let pred_on = self.g.pred_on;
        self.g.flow_mut(pred_on).enabled = true;
        self.sync_queued();
        self.join_in(pred_on, &ValueState::Const(1));
        // The global pools are always-enabled pass-throughs.
        for sink in [self.g.thrown_sink, self.g.unsafe_sink] {
            self.g.flow_mut(sink).enabled = true;
        }
        self.enqueue(pred_on);

        let reflective_roots = self.config.reflective_roots.clone();
        for m in reflective_roots {
            self.make_root(m);
        }
        let reflective_fields = self.config.reflective_fields.clone();
        for field in reflective_fields {
            let sink = self.field_sink(field);
            let declared = self.program.field(field).ty;
            self.inject(sink, declared, InjectionOwner::ReflectiveField(field));
        }
        self.sync_queued();
    }

    /// Adds analysis roots (paper §5: parameters injected with every
    /// instantiated subtype of their declared types). May be called again
    /// after a solve completed — the checkpoint invariant (module docs)
    /// guarantees re-solving then reaches the same fixpoint as a fresh
    /// analysis over the union of all roots.
    pub(crate) fn add_roots(&mut self, roots: &[MethodId]) {
        for &m in roots {
            self.make_root(m);
        }
        self.sync_queued();
    }

    /// Runs the configured solver until the current worklist is drained —
    /// or until a budget / the `cancel` token stops it at a checkpoint
    /// (module docs, "Interrupt safety"). Per-solve statistics (the
    /// adaptive pop counters, `flip_at_step`) are re-based here, and the
    /// flip detector's sliding window is cleared, so a resumed solve
    /// reports its own behaviour instead of residue from the prior solve —
    /// while the cumulative `*_total` counters and the sticky flip keep
    /// accumulating across the session. A solve after a worker panic
    /// dispatches sequentially regardless of the configured solver.
    pub(crate) fn run_solver(
        &mut self,
        cancel: Option<&CancelToken>,
    ) -> Result<SolveEnd, AnalysisError> {
        self.solve_start_steps = self.steps;
        match &mut self.flip {
            Some(tracker) => {
                tracker.begin_solve();
                self.adaptive_base = (tracker.pops, tracker.re_pops);
            }
            None => {
                // Forced scheduler, or the session already flipped: no FIFO
                // phase this solve, so its per-solve pop counts are zero.
                self.sched_stats.adaptive_pops = 0;
                self.sched_stats.adaptive_re_pops = 0;
            }
        }
        if self.last_interrupted {
            self.last_interrupted = false;
            self.interrupt_stats.resumed_after_interrupt += 1;
        }
        self.arm_guard(cancel);
        let end = match self.config.solver {
            SolverKind::Sequential => Ok(self.solve_sequential()),
            // A degraded session keeps working, sequentially: phase A of
            // the parallel solver computes exactly the sequential steps, so
            // the fixpoint is identical — only the panic risk (and the
            // speedup) is gone.
            SolverKind::Parallel { .. } if self.degraded => Ok(self.solve_sequential()),
            SolverKind::Parallel { threads } => self.solve_parallel(threads.max(1)),
            SolverKind::Reference => Ok(self.solve_reference()),
        };
        self.guard = None;
        if let Ok(SolveEnd::Interrupted(_)) = end {
            self.last_interrupted = true;
            self.interrupt_stats.interrupts += 1;
        }
        if let Ok(SolveEnd::Complete) = end {
            // The re-derivation window closes at the completed solve that
            // drained it; an interrupted solve keeps the base, so a resumed
            // re-derive accumulates into the same window.
            if let Some(base) = self.rederive_base.take() {
                self.invalidation.rederive_steps += self.steps - base;
            }
        }
        end
    }

    /// Arms the per-solve interrupt guard: `None` (the common, zero-cost
    /// case) unless a budget is configured or a token was passed.
    fn arm_guard(&mut self, cancel: Option<&CancelToken>) {
        let cfg = &self.config;
        let wanted = cancel.is_some()
            || cfg.step_budget.is_some()
            || cfg.wall_budget.is_some()
            || cfg.memory_budget.is_some();
        self.guard = wanted.then(|| InterruptGuard {
            cancel: cancel.cloned(),
            step_end: cfg.step_budget.map(|b| self.steps.saturating_add(b)),
            step_budget: cfg.step_budget.unwrap_or(0),
            wall_budget: cfg.wall_budget,
            memory_budget: cfg.memory_budget,
            started: Instant::now(),
            next_check_at: self.steps,
        });
    }

    /// The interrupt check, called only between steps / rounds (never with
    /// a step open). The step budget is an exact compare every call; the
    /// token, wall clock, and memory estimate are polled every
    /// [`INTERRUPT_CHECK_STRIDE`] steps, with the first poll of a solve
    /// always checking (so a pre-tripped token interrupts before step one).
    #[inline]
    fn poll_interrupt(&mut self) -> Option<InterruptReason> {
        let steps = self.steps;
        #[cfg(feature = "fault-inject")]
        if let Some(reason) = self.fault.poll_step(steps) {
            return Some(reason);
        }
        let guard = self.guard.as_mut()?;
        if let Some(end) = guard.step_end {
            if steps >= end {
                return Some(InterruptReason::StepBudget {
                    budget: guard.step_budget,
                });
            }
        }
        if steps < guard.next_check_at {
            return None;
        }
        guard.next_check_at = steps.saturating_add(INTERRUPT_CHECK_STRIDE);
        if guard.cancel.as_ref().is_some_and(|t| t.is_cancelled()) {
            return Some(InterruptReason::Cancelled);
        }
        if let Some(budget) = guard.wall_budget {
            if guard.started.elapsed() >= budget {
                return Some(InterruptReason::WallBudget { budget });
            }
        }
        let budget_bytes = guard.memory_budget?;
        let estimated_bytes = self.memory_estimate();
        if estimated_bytes > budget_bytes {
            return Some(InterruptReason::MemoryBudget {
                budget_bytes,
                estimated_bytes,
            });
        }
        None
    }

    /// A cheap O(1) estimate of the engine's dominant heap footprint: the
    /// flow table plus the edge arrays (8 bytes per edge endpoint pair).
    /// Deliberately a proxy — exact accounting would mean walking every
    /// `ValueState` — but it is monotone in the quantities that actually
    /// grow without bound (flows and edges), which is what a memory budget
    /// guards against.
    pub(crate) fn memory_estimate(&self) -> usize {
        let (use_edges, pred_edges, obs_edges) = self.g.edge_counts();
        self.g.flow_count() * std::mem::size_of::<Flow>()
            + (use_edges + pred_edges + obs_edges) * 8
    }

    /// Whether the worklist has pending work. An empty worklist (with no
    /// open capacity error) means the engine is at its fixpoint; non-empty
    /// means the last solve was interrupted (or never run).
    pub(crate) fn worklist_is_empty(&self) -> bool {
        match &self.worklist {
            Worklist::Fifo(q) => q.is_empty(),
            Worklist::Scc(q) => q.len == 0,
        }
    }

    /// Whether a parallel worker has panicked this session (all further
    /// solves dispatch sequentially).
    pub(crate) fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Worklist steps executed so far (cumulative across solves).
    pub(crate) fn steps(&self) -> u64 {
        self.steps
    }

    /// The structured capacity error, if the PVPG hit the `FlowId` limit
    /// during a solve (the fixpoint is then incomplete and must not be
    /// reported as a result).
    pub(crate) fn capacity_error(&self) -> Option<&AnalysisError> {
        self.overflow.as_ref()
    }

    /// The live PVPG.
    pub(crate) fn graph(&self) -> &Pvpg {
        &self.g
    }

    /// The configuration the engine runs under.
    pub(crate) fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The instantiated-types bitset.
    pub(crate) fn instantiated_bits(&self) -> &BitSet {
        &self.instantiated
    }

    /// A sorted copy of the current reachable set (for session snapshots).
    pub(crate) fn reachable_set(&self) -> ReachableSet {
        ReachableSet::from_discovery(self.reachable.clone(), self.reachable_order.clone())
    }

    /// The current solver statistics.
    pub(crate) fn stats_snapshot(&self, duration: Duration, solves: u64) -> SolveStats {
        let (use_edges, pred_edges, obs_edges) = self.g.edge_counts();
        // The flip detector keeps its own pop counters off the hot path;
        // fold them in here (after a flip they were copied at flip time).
        let mut scheduler = self.sched_stats.clone();
        if let Some(tracker) = &self.flip {
            scheduler.adaptive_pops = tracker.pops - self.adaptive_base.0;
            scheduler.adaptive_re_pops = tracker.re_pops - self.adaptive_base.1;
            scheduler.adaptive_pops_total = tracker.pops;
            scheduler.adaptive_re_pops_total = tracker.re_pops;
        }
        // The live condensation and its maintenance counters come straight
        // off the online order — there is no "last recompute" snapshot.
        if let Some(os) = self.g.order_stats() {
            scheduler.scc_count = os.comps;
            scheduler.cyclic_flows = os.cyclic_flows;
            scheduler.max_scc_size = os.max_scc_size;
            scheduler.order_repairs = os.repairs;
            scheduler.order_comps_moved = os.comps_moved;
            scheduler.scc_merges = os.merges;
            scheduler.order_relabels = os.relabels;
            scheduler.in_edge_dedups = os.in_dedups;
            scheduler.in_edges_pruned = os.in_edges_pruned;
        }
        if let Worklist::Scc(q) = &self.worklist {
            scheduler.rebucketed_flows = q.rebucketed;
            scheduler.antichain_rounds = q.antichain_rounds;
            scheduler.antichain_batched_buckets = q.antichain_batched;
        }
        SolveStats {
            steps: self.steps,
            full_join_steps: self.full_join_steps,
            state_joins: self.state_joins,
            narrow_joins: self.narrow_joins,
            flows: self.g.flow_count(),
            use_edges,
            pred_edges,
            obs_edges,
            solves,
            scheduler,
            interrupt: self.interrupt_stats,
            invalidation: self.invalidation,
            duration,
        }
    }

    fn sync_queued(&mut self) {
        let n = self.g.flow_count();
        if self.queued.len() < n {
            self.queued.resize(n, 0);
        }
    }

    fn enqueue(&mut self, f: FlowId) {
        let slot = &mut self.queued[f.index()];
        if *slot & QUEUED != 0 {
            return;
        }
        let fresh = *slot & WORKED == 0;
        *slot |= QUEUED;
        match &mut self.worklist {
            Worklist::Fifo(q) => q.push_back(f),
            // The live order label: exact even for a flow created by the
            // step currently executing. First-time flows join the frontier
            // tier instead (see the SccQueue docs).
            Worklist::Scc(q) => q.push(f, self.g.live_label(f), fresh),
        }
    }

    /// Marks a dequeued flow off-queue and dequeued-once, feeding the
    /// adaptive flip detector (if still active) the re-process bit. The
    /// [`WORKED`] bit is *not* set here: a pop that turns out to be a
    /// no-op (disabled flow, empty delta) has not done any propagation
    /// work, so the flow stays in the SCC queue's frontier tier until a
    /// step actually computes something ([`Engine::mark_worked`]).
    #[inline]
    fn note_dequeued(&mut self, f: FlowId) {
        let slot = &mut self.queued[f.index()];
        let re = *slot & PROCESSED != 0;
        *slot = (*slot | PROCESSED) & !QUEUED;
        if let Some(tracker) = &mut self.flip {
            tracker.observe(re);
        }
    }

    /// Records that a worklist step did real propagation work for `f` —
    /// from here on, re-enqueues of `f` queue under exact priorities
    /// instead of the frontier tier.
    #[inline]
    fn mark_worked(&mut self, f: FlowId) {
        self.queued[f.index()] |= WORKED;
    }

    /// Creates an injection source for `declared` feeding `target`,
    /// registered under `owner` so an invalidation that resets the
    /// subscription state can kill and re-create it.
    fn inject(&mut self, target: FlowId, declared: TypeRef, owner: InjectionOwner) {
        let rs = self.g.add_root_source(declared);
        self.sync_queued();
        self.g.add_use_dedup(rs, target);
        self.injections.push(Injection { rs, target, owner });
        match declared {
            TypeRef::Prim | TypeRef::Void => {
                self.join_in(rs, &ValueState::Any);
            }
            TypeRef::Object(bound) => {
                self.subscribe(bound, rs);
            }
        }
    }

    /// Registers `target` to receive every instantiated subtype of `bound`,
    /// past and future.
    fn subscribe(&mut self, bound: TypeId, target: FlowId) {
        let mut existing = TypeSet::new();
        for t in self.program.subtypes(bound).iter() {
            if self.instantiated.contains(t) {
                existing.insert(TypeId::from_index(t));
            }
        }
        if !existing.is_empty() {
            let state = ValueState::Types(existing);
            self.join_in(target, &state);
        }
        self.type_subscribers.push((bound, target));
    }

    /// Joins `state` into `target`'s input, accumulating the new information
    /// into `target`'s pending delta, and queues the flow on change.
    ///
    /// Disabled flows accumulate without being queued: dequeuing them would
    /// be a no-op, and [`Engine::enable`] queues the flow when its predicate
    /// fires, at which point the accumulated delta is drained normally.
    fn join_in(&mut self, target: FlowId, state: &ValueState) {
        let sat = self.config.saturation_threshold;
        let flow = self.g.flow_mut(target);
        // Width-adaptive fast path (module docs): while the live input state
        // is narrow, a plain monotone join beats the delta bookkeeping. The
        // `needs_full` flag makes the next step recompute from the full
        // input, so the (now possibly stale) pending delta is never trusted.
        if self.narrow_join > 0 && flow.in_state.width_words() < self.narrow_join {
            if flow.in_state.join(state) {
                if let (Some(k), ValueState::Types(s)) = (sat, &flow.in_state) {
                    if s.len() > k {
                        flow.in_state = ValueState::Any;
                    }
                }
                flow.needs_full = true;
                self.state_joins += 1;
                self.narrow_joins += 1;
                if flow.enabled {
                    self.enqueue(target);
                }
            }
            return;
        }
        if flow.in_state.join_tracking(state, &mut flow.delta) {
            if let (Some(k), ValueState::Types(s)) = (sat, &flow.in_state) {
                if s.len() > k {
                    // Saturation (Wimmer et al. [60]): the widening is new
                    // information — the pending delta widens with the state.
                    flow.in_state = ValueState::Any;
                    flow.delta = ValueState::Any;
                }
            }
            self.state_joins += 1;
            if flow.enabled {
                self.enqueue(target);
            }
        }
    }

    /// Marks `m` reachable, building its PVPG fragment on first contact.
    fn make_reachable(&mut self, m: MethodId) {
        // FlowId capacity guard (checked once per fragment): probe, via the
        // checked conversion, whether the fragment's worst-case last flow
        // index would still be a valid id — `FLOW_CAPACITY_MARGIN` bounds
        // any single fragment's flows. Past the limit the engine stops
        // growing the graph and the session surfaces the structured
        // `TooManyFlows` instead of corrupting the intrusive lists.
        if self.overflow.is_some() {
            return;
        }
        if FlowId::try_from_index(self.g.flow_count() + FLOW_CAPACITY_MARGIN).is_err() {
            self.overflow = Some(AnalysisError::TooManyFlows {
                flows: self.g.flow_count(),
                limit: MAX_FLOW_COUNT,
            });
            return;
        }
        if !self.reachable.insert(m.index()) {
            return;
        }
        self.reachable_order.push(m);
        if self.masked.contains(m.index()) {
            // Edited-out body: the method is a discovered call target (the
            // reachability fact stands) but contributes no fragment — calls
            // into it wire nothing and never return (`Engine::mask_method`).
            return;
        }
        if self.program.method(m).body.is_none() {
            return; // abstract targets are never resolved to, but be safe
        }
        self.build_or_activate_fragment(m);
    }

    /// Builds `m`'s fragment on first contact, or re-activates a fragment a
    /// prior invalidation deactivated. Both paths run the same enable-time
    /// actions in the same order (fresh builds capture them as the
    /// [`FragmentReplay`]), so a re-derived region propagates exactly like a
    /// freshly built one.
    fn build_or_activate_fragment(&mut self, m: MethodId) {
        if self.replays.contains_key(&m) {
            self.activate_fragment(m);
            return;
        }
        let out: BuildOutput = build_method_graph(&mut self.g, self.program, &self.config, m);
        self.sync_queued();
        self.replays.insert(
            m,
            FragmentReplay {
                first_flow: out.first_flow,
                end_flow: self.g.flow_count(),
                enables: out.enables.clone(),
                pushes: out.pushes.clone(),
                catch_subscribers: out.catch_subscribers.clone(),
                graph: None,
            },
        );
        if self.config.predicates {
            for f in out.enables.clone() {
                self.enable(f);
            }
        } else {
            // Baseline: every flow is enabled at creation.
            for i in out.first_flow..self.g.flow_count() {
                self.enable(FlowId::from_index(i));
            }
        }
        for (s, t) in &out.pushes {
            // Seed defaults for field sinks created during construction
            // (static-field accesses wire their sink at build time).
            for end in [*s, *t] {
                if let FlowKind::FieldSink { field } = self.g.flow(end).kind {
                    self.field_sink(field);
                }
            }
            self.push_state(*s, *t);
        }
        for (ty, f) in &out.catch_subscribers {
            self.subscribe(*ty, *f);
        }
        self.g.methods.insert(m, out.graph);
    }

    /// Re-activates a deactivated fragment from its [`FragmentReplay`]: the
    /// reset flows are re-enabled and re-seeded exactly as a fresh build
    /// would, and the parked graph is re-inserted *after* the replay runs —
    /// matching the fresh order, where `build_method_graph`'s enable-time
    /// actions fire before `methods.insert` (a self-recursive static call
    /// observes no callee graph in either case).
    fn activate_fragment(&mut self, m: MethodId) {
        let replay = self.replays.get(&m).expect("activation requires a captured replay");
        let (first_flow, end_flow) = (replay.first_flow, replay.end_flow);
        let enables = replay.enables.clone();
        let pushes = replay.pushes.clone();
        let catch_subscribers = replay.catch_subscribers.clone();
        // A parked fragment keeps *accumulating* state while detached: the
        // physical CSR edges into it outlive the purged dedup pairs, so a
        // live flow that re-derives pushes its output into the fragment's
        // disabled flows (`join_in` accumulates without queueing). Those
        // joins can mix facts from solver worlds the current configuration
        // no longer derives — e.g. a callee return recorded before a later
        // edit cut its only return path. Activation must start from the
        // same bottom the park left behind, so re-reset the fragment's
        // flows before replaying the build-time seeds. Nothing legitimate
        // is lost: every dynamic in-edge pair into the fragment was purged
        // when it was parked, so the re-derive re-links and re-pushes the
        // *current* source states.
        if let Some(mg) = self.replays.get(&m).and_then(|r| r.graph.as_ref()) {
            let flows = mg.flows.clone();
            for f in flows {
                let fl = self.g.flow_mut(f);
                fl.in_state = ValueState::Empty;
                fl.delta = ValueState::Empty;
                fl.out_state = ValueState::Empty;
                fl.enabled = false;
                fl.needs_full = false;
            }
        }
        self.sync_queued();
        if self.config.predicates {
            for f in enables {
                self.enable(f);
            }
        } else {
            for i in first_flow..end_flow {
                self.enable(FlowId::from_index(i));
            }
        }
        for (s, t) in pushes {
            // Re-seed tainted field-sink defaults lazily, like a fresh build
            // seeds them at first access (the reset cleared the defaulted
            // bit, so `field_sink` re-joins the default value).
            for end in [s, t] {
                if let FlowKind::FieldSink { field } = self.g.flow(end).kind {
                    self.field_sink(field);
                }
            }
            self.push_state(s, t);
        }
        for (ty, f) in catch_subscribers {
            self.subscribe(ty, f);
        }
        if let Some(graph) = self.replays.get_mut(&m).expect("still present").graph.take() {
            self.g.methods.insert(m, graph);
        }
    }

    /// Marks `m` as a root: reachable, with parameters injected per the
    /// reflection policy (paper §5).
    fn make_root(&mut self, m: MethodId) {
        self.make_reachable(m);
        let Some(graph) = self.g.methods.get(&m) else { return };
        let params = graph.params.clone();
        let md = self.program.method(m);
        for (i, p) in params.iter().enumerate() {
            let declared = md.param_type(i);
            self.inject(*p, declared, InjectionOwner::Root(m));
        }
    }

    /// Enables a flow (the Predicate rule's conclusion), evaluating source
    /// kinds (the Source rule) and firing enable-time actions.
    fn enable(&mut self, f: FlowId) {
        if self.g.flow(f).enabled {
            return;
        }
        self.g.flow_mut(f).enabled = true;
        match self.g.flow(f).kind.clone() {
            FlowKind::Const(n) => {
                let v = if self.config.primitives {
                    ValueState::Const(n)
                } else {
                    ValueState::Any
                };
                self.join_in(f, &v);
            }
            FlowKind::AnyPrim => {
                self.join_in(f, &ValueState::Any);
            }
            FlowKind::NullSource => {
                self.join_in(f, &ValueState::null());
            }
            FlowKind::PhiPred => {
                // φ_pred joins predicates, not values: once any incoming
                // predicate enables it, it carries an artificial token so its
                // own predicate successors fire (paper §3 "Joining Values
                // using φ Flows": the code after a join is executable iff the
                // end of any of its predecessors is).
                self.join_in(f, &ValueState::Const(1));
            }
            FlowKind::New(t) => {
                self.join_in(f, &ValueState::of_type(t));
                self.instantiate(t);
            }
            FlowKind::InvokeStatic { site } => {
                let target = self.g.site(site).static_target.expect("static site");
                self.link(site, target);
            }
            FlowKind::Invoke { .. } | FlowKind::Load { .. } | FlowKind::Store { .. } => {
                self.handle_receiver_update(f);
            }
            _ => {}
        }
        self.enqueue(f);
    }

    /// Records a newly instantiated type and notifies subscribers and
    /// saturated dispatch sites. Both lists are iterated by index — they can
    /// grow behind the cursor (a dispatch can reach code that subscribes or
    /// saturates), and late entries handle already-instantiated types
    /// themselves — so nothing is cloned.
    fn instantiate(&mut self, t: TypeId) {
        if !self.instantiated.insert(t.index()) {
            return;
        }
        self.instantiated_order.push(t);
        let state = ValueState::of_type(t);
        let mut i = 0;
        while i < self.type_subscribers.len() {
            let (bound, target) = self.type_subscribers[i];
            if self.program.is_subtype(t, bound) {
                self.join_in(target, &state);
            }
            i += 1;
        }
        let mut i = 0;
        while i < self.saturated_sites.len() {
            let site = self.saturated_sites[i];
            self.dispatch_type(site, t);
            i += 1;
        }
    }

    /// One worklist step (sequential solver): drain the flow's pending
    /// delta, filter it through the flow kind, and propagate what is new.
    fn process(&mut self, f: FlowId) {
        self.steps += 1;
        if matches!(self.worklist, Worklist::Scc(_)) && self.g.flow_in_cycle(f) {
            self.sched_stats.steps_in_cycles += 1;
        }
        if let Some(max) = self.config.max_steps {
            assert!(self.steps <= max, "analysis exceeded max_steps = {max}");
        }
        if !self.g.flow(f).enabled {
            // Disabled flows keep accumulating their delta until enabled.
            return;
        }
        if self.g.flow(f).needs_full {
            self.mark_worked(f);
            // Width-adaptive fast path: joins into this flow skipped the
            // delta bookkeeping, so recompute from the full input (the
            // Reference step) and discard the stale delta — the full
            // recompute covers it (module docs, narrow-join monotonicity).
            let flow = self.g.flow_mut(f);
            flow.needs_full = false;
            let _ = flow.delta.take();
            self.full_join_steps += 1;
            let out_new = self.compute_out(f);
            self.apply_out_full(f, out_new);
            return;
        }
        let delta = self.g.flow_mut(f).delta.take();
        let out_new = match &self.g.flow(f).kind {
            // Non-distributive / source kinds: recompute from the full
            // input (see the module docs for why CmpFilter cannot use the
            // delta). No early exit on an empty delta — these are also
            // re-enqueued by observer notifications without new input.
            FlowKind::CmpFilter { .. } | FlowKind::CatchAll { .. } | FlowKind::PredOn => {
                self.compute_out(f)
            }
            FlowKind::TypeFilter { ty, negated } => {
                if delta.is_empty() {
                    return;
                }
                filter_typecheck_owned(self.program, delta, *ty, *negated)
            }
            FlowKind::Param { declared, .. } if self.config.declared_type_filtering => {
                if delta.is_empty() {
                    return;
                }
                declared_filter_owned(self.program, delta, *declared)
            }
            // Plain pass-throughs move the delta, clone-free.
            _ => {
                if delta.is_empty() {
                    return;
                }
                delta
            }
        };
        self.mark_worked(f);
        self.apply_out(f, out_new);
    }

    /// Full-input output computation (the TypeCheck / Cond / PassThrough
    /// rules): used by the non-distributive kinds, the parallel solver's
    /// phase A, and the reference solver.
    fn compute_out(&self, f: FlowId) -> ValueState {
        let flow = self.g.flow(f);
        match &flow.kind {
            FlowKind::TypeFilter { ty, negated } => {
                filter_typecheck(self.program, &flow.in_state, *ty, *negated)
            }
            FlowKind::CatchAll { ty } => {
                let mut out = filter_typecheck(self.program, &flow.in_state, *ty, false);
                // Handlers may observe null under the coarse exception model
                // (the reference interpreter yields null when no matching
                // exception was thrown); keeping null here makes the two
                // agree and is conservative.
                out.join(&ValueState::null());
                out
            }
            FlowKind::CmpFilter { op, other } => {
                let vr = &self.g.flow(*other).out_state;
                compare(*op, &flow.in_state, vr)
            }
            FlowKind::Param { declared, .. } if self.config.declared_type_filtering => {
                declared_filter(self.program, &flow.in_state, *declared)
            }
            FlowKind::PredOn => ValueState::Const(1),
            _ => flow.in_state.clone(),
        }
    }

    /// Joins a step's output into `out_state`, tracking what is new, and
    /// propagates exactly that along use, predicate, and observe edges.
    /// Clone-free: successor lists are walked through CSR cursors and the
    /// propagated state is a local delta.
    fn apply_out(&mut self, f: FlowId, out_new: ValueState) {
        let sat = self.config.saturation_threshold;
        let mut prop = ValueState::Empty;
        let changed = {
            let flow = self.g.flow_mut(f);
            let changed = flow.out_state.join_tracking_owned(out_new, &mut prop);
            if changed {
                if let (Some(k), ValueState::Types(s)) = (sat, &flow.out_state) {
                    if s.len() > k {
                        flow.out_state = ValueState::Any;
                        prop = ValueState::Any;
                    }
                }
            }
            changed
        };
        if !changed {
            return;
        }
        let mut cur = self.g.uses.cursor(f);
        while let Some(t) = self.g.uses.next(&mut cur) {
            self.join_in(t, &prop);
        }
        if self.g.flow(f).out_state.is_non_empty() {
            let mut cur = self.g.preds.cursor(f);
            while let Some(t) = self.g.preds.next(&mut cur) {
                self.enable(t);
            }
        }
        let mut cur = self.g.observes.cursor(f);
        while let Some(t) = self.g.observes.next(&mut cur) {
            self.notify_observer(t);
        }
    }

    /// Joins a full-recompute step's output into `out_state` with a plain
    /// monotone join and propagates the *entire* output state along use,
    /// predicate, and observe edges — the Reference step's tail, shared by
    /// the reference solver and the delta solvers' narrow-join fast path.
    /// Successor `join_in`s deduplicate, so re-propagating the full (narrow)
    /// state is cheaper than tracking what was new.
    fn apply_out_full(&mut self, f: FlowId, new_out: ValueState) {
        let sat = self.config.saturation_threshold;
        let changed = {
            let flow = self.g.flow_mut(f);
            let changed = flow.out_state.join(&new_out);
            if changed {
                maybe_saturate(&mut flow.out_state, sat);
            }
            changed
        };
        if !changed {
            return;
        }
        let out = self.g.flow(f).out_state.clone();
        let mut cur = self.g.uses.cursor(f);
        while let Some(t) = self.g.uses.next(&mut cur) {
            self.join_in(t, &out);
        }
        if out.is_non_empty() {
            let mut cur = self.g.preds.cursor(f);
            while let Some(t) = self.g.preds.next(&mut cur) {
                self.enable(t);
            }
        }
        let mut cur = self.g.observes.cursor(f);
        while let Some(t) = self.g.observes.next(&mut cur) {
            self.notify_observer(t);
        }
    }

    /// Observer notification: comparisons re-filter; receivers of loads,
    /// stores, and invokes trigger field wiring / method linking.
    fn notify_observer(&mut self, o: FlowId) {
        match self.g.flow(o).kind {
            FlowKind::CmpFilter { .. } => self.enqueue(o),
            FlowKind::Invoke { .. } | FlowKind::Load { .. } | FlowKind::Store { .. } => {
                self.handle_receiver_update(o)
            }
            _ => {}
        }
    }

    /// Load / Store / Invoke rules: react to the receiver's current value
    /// state (requires the acting flow to be enabled).
    fn handle_receiver_update(&mut self, f: FlowId) {
        if !self.g.flow(f).enabled {
            return;
        }
        match self.g.flow(f).kind.clone() {
            FlowKind::Invoke { site } => {
                let recv = self.g.site(site).receiver.expect("virtual site has receiver");
                match self.g.flow(recv).out_state.clone() {
                    ValueState::Types(s) => {
                        for t in s.iter() {
                            self.dispatch_type(site, t);
                        }
                    }
                    ValueState::Any
                        // Saturated receiver: dispatch over every
                        // instantiated type, now and in the future. The
                        // order list is walked by index — it can grow while
                        // dispatching (a callee can instantiate), and
                        // `instantiate` forwards late arrivals to this site.
                        if !self.saturated_set.contains(site.index()) => {
                            self.saturated_set.insert(site.index());
                            self.saturated_sites.push(site);
                            let mut i = 0;
                            while i < self.instantiated_order.len() {
                                let t = self.instantiated_order[i];
                                self.dispatch_type(site, t);
                                i += 1;
                            }
                        }
                    _ => {}
                }
            }
            FlowKind::Load { field, receiver }
                if self.receiver_reaches_field(receiver, field) => {
                    let sink = self.field_sink(field);
                    if self.g.add_use_dedup(sink, f) {
                        self.push_state(sink, f);
                    }
                }
            FlowKind::Store { field, receiver }
                if self.receiver_reaches_field(receiver, field) => {
                    let sink = self.field_sink(field);
                    if self.g.add_use_dedup(f, sink) {
                        self.push_state(f, sink);
                    }
                }
            _ => {}
        }
    }

    /// The Load/Store rules' premise `t ∈ VSout(r), LookUp(t, x)` — whether
    /// some receiver type declares/inherits the field. One flow exists per
    /// field declaration, so a single positive answer wires the access.
    fn receiver_reaches_field(&self, receiver: Option<FlowId>, field: skipflow_ir::FieldId) -> bool {
        let Some(recv) = receiver else {
            return false; // static accesses are wired at construction
        };
        match &self.g.flow(recv).out_state {
            ValueState::Types(s) => s
                .iter()
                .any(|t| self.program.lookup_field(t, field).is_some()),
            // Saturated receiver: connect conservatively.
            ValueState::Any => true,
            _ => false,
        }
    }

    /// Virtual dispatch for one receiver type at one site (the Invoke rule).
    fn dispatch_type(&mut self, site: SiteId, t: TypeId) {
        if t.is_null() {
            return;
        }
        {
            let s = self.g.site_mut(site);
            if !s.seen_receiver_types.insert(t.index()) {
                return;
            }
        }
        let selector = self.g.site(site).selector.expect("virtual site");
        if let Some(target) = self.program.resolve(t, selector) {
            self.link(site, target);
        }
    }

    /// Links a call site to a resolved target: marks the target reachable and
    /// wires arguments to parameters and the callee return to the invoke flow
    /// (the Invoke rule's conclusion).
    ///
    /// Fragment construction is *anchored* at the invoke flow: under the
    /// online order, the callee's flows are placed directly between the
    /// call's arguments and the invoke — so the `argument → parameter` and
    /// `return → invoke` edges wired below respect the order by
    /// construction, and the dominant mid-solve linking pattern triggers no
    /// repairs at all.
    fn link(&mut self, site: SiteId, target: MethodId) {
        {
            let s = self.g.site_mut(site);
            if !s.linked_set.insert(target.index()) {
                return;
            }
            s.linked.push(target);
        }
        self.wire_link(site, target);
    }

    /// Physically wires an established `site → target` link: marks the
    /// target reachable (building or re-activating its fragment) and wires
    /// `argument → parameter` and `return → invoke` edges. Split from
    /// [`Engine::link`] so invalidation can re-wire surviving links into a
    /// re-derived region without touching the recorded bookkeeping. The
    /// `linked` lists carry abstract targets (recorded for call-graph
    /// reports), so the abstract guard lives here, on the wiring side.
    fn wire_link(&mut self, site: SiteId, target: MethodId) {
        if self.program.method(target).is_abstract {
            return;
        }
        let (args, invoke_flow) = {
            let s = self.g.site(site);
            (s.args.clone(), s.flow)
        };
        self.g.set_fragment_anchor(Some(invoke_flow));
        self.make_reachable(target);
        self.g.set_fragment_anchor(None);
        let Some(callee) = self.g.methods.get(&target) else { return };
        let params = callee.params.clone();
        let ret = callee.ret;
        for (a, p) in args.iter().zip(params.iter()) {
            if self.g.add_use_dedup(*a, *p) {
                self.push_state(*a, *p);
            }
        }
        if let Some(r) = ret {
            if self.g.add_use_dedup(r, invoke_flow) {
                self.push_state(r, invoke_flow);
            }
        }
    }

    /// Pushes `s`'s current output into `t`'s input, respecting the
    /// only-enabled-flows-propagate rule. Used when an edge is added after
    /// its source already carries state (not on the steady-state step path).
    fn push_state(&mut self, s: FlowId, t: FlowId) {
        let src = self.g.flow(s);
        if src.enabled && src.out_state.is_non_empty() {
            let out = src.out_state.clone();
            self.join_in(t, &out);
        }
    }

    // ---- invalidation (retraction and edits) ------------------------------
    //
    // DRed-style over-delete + re-derive at *method* granularity (module
    // docs, "Resume: the checkpoint argument"). Flow-level deletion would be
    // unsound here: the PVPG derives facts through implicit channels —
    // method reachability, type instantiation, receiver-set dispatch, the
    // global field/exception/unsafe pools — that no per-flow provenance
    // records. The taint closure below conservatively closes over exactly
    // those channels, resets the closed region to bottom, and re-seeds the
    // worklist from the region frontier; any surviving fact it deletes is
    // re-derived by the next solve (monotone from the under-approximation).

    /// Retracts previously solved-in root methods. `surviving` is the
    /// session's full remaining root set — retraction-tainted survivors are
    /// re-rooted so the next solve re-derives them.
    pub(crate) fn retract_roots(&mut self, retracted: &[MethodId], surviving: &[MethodId]) {
        self.invalidation.retractions += retracted.len() as u64;
        let seeds: Vec<MethodId> = retracted
            .iter()
            .copied()
            .filter(|m| self.reachable.contains(m.index()))
            .collect();
        self.invalidate(seeds, surviving);
    }

    /// Masks `m`'s body out of the analysed program (the "edit" direction
    /// that deletes derivations). Returns `false` if `m` was already masked.
    /// A masked method stays a discoverable call target but builds no
    /// fragment, so calls into it never return — the same semantics a fresh
    /// solve gives [`AnalysisConfig::with_masked_methods`].
    pub(crate) fn mask_method(&mut self, m: MethodId, surviving: &[MethodId]) -> bool {
        if !self.masked.insert(m.index()) {
            return false;
        }
        self.invalidation.edits += 1;
        if self.reachable.contains(m.index()) {
            self.invalidate(vec![m], surviving);
        }
        true
    }

    /// Restores a masked body. Returns `false` if `m` was not masked.
    /// Purely monotone: the restored fragment is built (or re-activated)
    /// and wired into every site that already resolved to `m`; nothing is
    /// invalidated.
    pub(crate) fn unmask_method(&mut self, m: MethodId, is_root: bool) -> bool {
        if !self.masked.remove(m.index()) {
            return false;
        }
        self.invalidation.edits += 1;
        self.resurrect_body(m, is_root);
        true
    }

    /// The currently masked methods, in id order (for session snapshots and
    /// server epochs).
    pub(crate) fn masked_list(&self) -> Vec<MethodId> {
        self.masked.iter().map(MethodId::from_index).collect()
    }

    /// Builds/activates the fragment of a just-unmasked reachable method and
    /// wires it into the sites that already link to it. Collecting the
    /// caller sites *before* activation excludes `m`'s own self-links, which
    /// a fresh build also leaves unwired (see [`Engine::activate_fragment`]).
    fn resurrect_body(&mut self, m: MethodId, is_root: bool) {
        if !self.reachable.contains(m.index())
            || self.g.methods.contains_key(&m)
            || self.program.method(m).body.is_none()
            || self.overflow.is_some()
        {
            return;
        }
        if FlowId::try_from_index(self.g.flow_count() + FLOW_CAPACITY_MARGIN).is_err() {
            self.overflow = Some(AnalysisError::TooManyFlows {
                flows: self.g.flow_count(),
                limit: MAX_FLOW_COUNT,
            });
            return;
        }
        let mut callers: Vec<(SiteId, MethodId)> = Vec::new();
        for mg in self.g.methods.values() {
            for &site in &mg.sites {
                if self.g.site(site).linked_set.contains(m.index()) {
                    callers.push((site, m));
                }
            }
        }
        self.build_or_activate_fragment(m);
        for (site, target) in callers {
            self.wire_link(site, target);
        }
        if is_root {
            let Some(graph) = self.g.methods.get(&m) else { return };
            let params = graph.params.clone();
            let md = self.program.method(m);
            for (i, p) in params.iter().enumerate() {
                self.inject(*p, md.param_type(i), InjectionOwner::Root(m));
            }
        }
        self.sync_queued();
    }

    /// The over-delete + re-derive core. `seeds` are the directly edited /
    /// retracted methods; `surviving_roots` is the session root set that
    /// remains after the operation.
    fn invalidate(&mut self, seeds: Vec<MethodId>, surviving_roots: &[MethodId]) {
        if seeds.is_empty() {
            return;
        }
        // Any steps from here to the next *completed* solve are re-derivation.
        self.rederive_base.get_or_insert(self.steps);

        // Reverse call map over the pre-invalidation graph (channel ii).
        let mut callers_of: BTreeMap<MethodId, Vec<MethodId>> = BTreeMap::new();
        for (&caller, mg) in &self.g.methods {
            for &site in &mg.sites {
                for &target in &self.g.site(site).linked {
                    callers_of.entry(target).or_default().push(caller);
                }
            }
        }

        // ---- 1. taint closure ------------------------------------------
        // Channels: (i) a tainted caller taints every linked target — calls
        // carry argument facts downward; (ii) a tainted callee that can
        // return taints its callers — the returned token/value flowed
        // upward; (iii) a tainted method writing a global pool taints the
        // pool, and a tainted pool taints every reader's method; (iv) a
        // surviving dispatch site that saw a now-dead receiver type derived
        // its links from a deleted instantiation — its method is tainted;
        // (vi) a type subscription whose bound admits a dead type re-joined
        // deleted types into its target — its owner is tainted. (iv)/(vi)
        // need the dead-type set, which itself depends on the taint, so
        // they run in an outer fixpoint around the (i)–(iii) worklists.
        let mut tainted = BitSet::new();
        let mut tainted_sinks = BitSet::new();
        let mut method_work: Vec<MethodId> = Vec::new();
        let mut sink_work: Vec<FlowId> = Vec::new();
        for m in seeds {
            if tainted.insert(m.index()) {
                method_work.push(m);
            }
        }
        loop {
            while !method_work.is_empty() || !sink_work.is_empty() {
                if let Some(m) = method_work.pop() {
                    if let Some(mg) = self.g.methods.get(&m) {
                        for &site in &mg.sites {
                            for &target in &self.g.site(site).linked {
                                if self.reachable.contains(target.index())
                                    && tainted.insert(target.index())
                                {
                                    method_work.push(target);
                                }
                            }
                        }
                        if mg.ret.is_some() {
                            if let Some(callers) = callers_of.get(&m) {
                                for &caller in callers {
                                    if tainted.insert(caller.index()) {
                                        method_work.push(caller);
                                    }
                                }
                            }
                        }
                        for &f in &mg.flows {
                            for t in self.g.use_targets(f) {
                                let tf = self.g.flow(t);
                                if tf.method.is_none()
                                    && matches!(
                                        tf.kind,
                                        FlowKind::FieldSink { .. }
                                            | FlowKind::ThrownSink
                                            | FlowKind::UnsafeSink
                                    )
                                    && tainted_sinks.insert(t.index())
                                {
                                    sink_work.push(t);
                                }
                            }
                        }
                    }
                    continue;
                }
                if let Some(sink) = sink_work.pop() {
                    let readers: Vec<MethodId> = self
                        .g
                        .use_targets(sink)
                        .filter_map(|t| self.g.flow(t).method)
                        .collect();
                    for r in readers {
                        if self.reachable.contains(r.index()) && tainted.insert(r.index()) {
                            method_work.push(r);
                        }
                    }
                }
            }
            // Dead types: instantiated types whose every enabled `New` sits
            // in a tainted method (a masked fragment's flows are disabled,
            // so parked `New`s never count as live).
            let mut live_new = BitSet::new();
            for i in 0..self.g.flow_count() {
                let fl = self.g.flow(FlowId::from_index(i));
                if let FlowKind::New(t) = fl.kind {
                    if fl.enabled && fl.method.is_none_or(|m| !tainted.contains(m.index())) {
                        live_new.insert(t.index());
                    }
                }
            }
            let dead: Vec<TypeId> = self
                .instantiated_order
                .iter()
                .filter(|t| !live_new.contains(t.index()))
                .copied()
                .collect();
            if dead.is_empty() {
                break;
            }
            let dead_bits: BitSet = dead.iter().map(|t| t.index()).collect();
            let mut grew = false;
            // Channel iv.
            let mut hit_methods: Vec<MethodId> = Vec::new();
            for (&m, mg) in &self.g.methods {
                if tainted.contains(m.index()) {
                    continue;
                }
                if mg.sites.iter().any(|&site| {
                    !self.g.site(site).seen_receiver_types.is_disjoint(&dead_bits)
                }) {
                    hit_methods.push(m);
                }
            }
            // Channel vi.
            let mut hit_sinks: Vec<FlowId> = Vec::new();
            for &(bound, target) in &self.type_subscribers {
                if !dead.iter().any(|&t| self.program.is_subtype(t, bound)) {
                    continue;
                }
                let tf = self.g.flow(target);
                match tf.method {
                    Some(m) => hit_methods.push(m),
                    None => match tf.kind {
                        FlowKind::RootSource { .. } => {
                            // Owner lookup through the injection registry:
                            // a root param's owner method, or — for a
                            // reflective field — the fed sink.
                            if let Some(inj) = self.injections.iter().find(|i| i.rs == target) {
                                match inj.owner {
                                    InjectionOwner::Root(rm) => hit_methods.push(rm),
                                    InjectionOwner::ReflectiveField(_) => {
                                        hit_sinks.push(inj.target)
                                    }
                                }
                            }
                        }
                        FlowKind::FieldSink { .. }
                        | FlowKind::ThrownSink
                        | FlowKind::UnsafeSink => hit_sinks.push(target),
                        _ => {}
                    },
                }
            }
            for m in hit_methods {
                if self.reachable.contains(m.index()) && tainted.insert(m.index()) {
                    method_work.push(m);
                    grew = true;
                }
            }
            for s in hit_sinks {
                if tainted_sinks.insert(s.index()) {
                    sink_work.push(s);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }

        // ---- 2. kill stale injections ----------------------------------
        // A tainted root's param injections (and a tainted sink's reflective
        // injection) carry subscription state that may include dead types;
        // kill them — re-rooting below creates fresh ones.
        let mut invalidated = BitSet::new();
        let injections = std::mem::take(&mut self.injections);
        self.injections = injections
            .into_iter()
            .filter(|inj| {
                let killed = match inj.owner {
                    InjectionOwner::Root(rm) => tainted.contains(rm.index()),
                    InjectionOwner::ReflectiveField(_) => {
                        tainted_sinks.contains(inj.target.index())
                    }
                };
                if killed {
                    invalidated.insert(inj.rs.index());
                }
                !killed
            })
            .collect();

        // ---- 3. park tainted fragments, collect the reset region -------
        let tainted_methods: Vec<MethodId> = self
            .reachable_order
            .iter()
            .copied()
            .filter(|m| tainted.contains(m.index()))
            .collect();
        let mut parked = 0u64;
        for &m in &tainted_methods {
            if let Some(mg) = self.g.methods.remove(&m) {
                for &f in &mg.flows {
                    invalidated.insert(f.index());
                }
                for &site in &mg.sites {
                    let s = self.g.site_mut(site);
                    s.linked.clear();
                    s.linked_set.clear();
                    s.seen_receiver_types.clear();
                }
                self.replays
                    .get_mut(&m)
                    .expect("built fragments capture a replay")
                    .graph = Some(mg);
                parked += 1;
            }
            self.reachable.remove(m.index());
        }
        self.reachable_order.retain(|m| !tainted.contains(m.index()));
        for i in tainted_sinks.iter() {
            invalidated.insert(i);
        }
        self.invalidation.invalidated_methods += parked;
        self.invalidation.invalidated_flows += invalidated.iter().count() as u64;

        // ---- 4. purge + reset ------------------------------------------
        // Only the *dedup set* is purged: the physical CSR edges stay (the
        // joins they duplicate on re-add are idempotent), but re-adding a
        // purged pair returns `true` again, which is what makes the
        // re-wiring below fire its `push_state` seeds.
        let _ = self.g.purge_dynamic_use_edges(&invalidated);
        for i in invalidated.iter() {
            let fl = self.g.flow_mut(FlowId::from_index(i));
            fl.in_state = ValueState::Empty;
            fl.delta = ValueState::Empty;
            fl.out_state = ValueState::Empty;
            fl.enabled = false;
            fl.needs_full = false;
        }
        // Global pools are always-enabled pass-throughs; a tainted field
        // sink also re-earns its lazy default seed (`Engine::field_sink`).
        for i in tainted_sinks.iter() {
            let f = FlowId::from_index(i);
            self.g.flow_mut(f).enabled = true;
            if let FlowKind::FieldSink { field } = self.g.flow(f).kind {
                self.defaulted_fields.remove(field.index());
            }
        }
        // The worklist keeps any stale queued entries (clearing QUEUED bits
        // while entries are resident would corrupt the dedup invariant);
        // they drain as counted no-op steps, exactly like pops of disabled
        // flows always have.
        {
            let g = &self.g;
            self.saturated_sites
                .retain(|&s| !tainted.contains(g.site(s).caller.index()));
        }
        self.saturated_set = self.saturated_sites.iter().map(|s| s.index()).collect();
        self.type_subscribers
            .retain(|(_, target)| !invalidated.contains(target.index()));
        // Rebuild the instantiated set from the surviving enabled `New`s
        // (reset fragments are disabled now, so this is the live set).
        let mut live_new = BitSet::new();
        for i in 0..self.g.flow_count() {
            let fl = self.g.flow(FlowId::from_index(i));
            if let FlowKind::New(t) = fl.kind {
                if fl.enabled {
                    live_new.insert(t.index());
                }
            }
        }
        self.instantiated_order.retain(|t| live_new.contains(t.index()));
        self.instantiated = self.instantiated_order.iter().map(|t| t.index()).collect();

        // ---- 5. re-seed the frontier -----------------------------------
        // Surviving links into the region: collected from the (now
        // tainted-free) active fragments, wired after the roots below so a
        // re-activated fragment exists to wire into.
        let mut relink: Vec<(SiteId, MethodId)> = Vec::new();
        for mg in self.g.methods.values() {
            for &site in &mg.sites {
                for &target in &self.g.site(site).linked {
                    if tainted.contains(target.index()) {
                        relink.push((site, target));
                    }
                }
            }
        }
        // Tainted roots that survive re-root in the fresh bootstrap order:
        // reflective roots, then session roots, then reflective fields.
        let reflective_roots = self.config.reflective_roots.clone();
        for m in reflective_roots {
            if tainted.contains(m.index()) {
                self.make_root(m);
            }
        }
        for &m in surviving_roots {
            if tainted.contains(m.index()) {
                self.make_root(m);
            }
        }
        let reflective_fields = self.config.reflective_fields.clone();
        for field in reflective_fields {
            if self
                .g
                .field_sink_opt(field)
                .is_some_and(|sink| tainted_sinks.contains(sink.index()))
            {
                let sink = self.field_sink(field);
                let declared = self.program.field(field).ty;
                self.inject(sink, declared, InjectionOwner::ReflectiveField(field));
            }
        }
        for (site, target) in relink {
            self.wire_link(site, target);
        }
        // Live writers into tainted pools: their build-time edges are
        // static (throws) or deduped without a replay push entry (stores),
        // so re-seed them explicitly off the physical edges.
        if tainted_sinks.iter().next().is_some() {
            for i in 0..self.g.flow_count() {
                if invalidated.contains(i) {
                    continue;
                }
                let f = FlowId::from_index(i);
                if !self.g.flow(f).enabled {
                    continue;
                }
                let targets: Vec<FlowId> = self
                    .g
                    .use_targets(f)
                    .filter(|t| tainted_sinks.contains(t.index()))
                    .collect();
                for t in targets {
                    self.push_state(f, t);
                }
            }
        }
        self.sync_queued();
    }

    // ---- solvers ----------------------------------------------------------

    pub(crate) fn solve_sequential(&mut self) -> SolveEnd {
        // No solve-start condensation pass: the online order is maintained
        // through every graph mutation (and carried across session
        // resumes), so the SCC queue reads exact priorities at all times.
        loop {
            // Interrupts are only taken while work remains: an exhausted
            // budget races a drained worklist in favour of completion.
            if self.worklist_is_empty() {
                return SolveEnd::Complete;
            }
            if let Some(reason) = self.poll_interrupt() {
                return SolveEnd::Interrupted(reason);
            }
            self.maybe_flip();
            let next = match &mut self.worklist {
                Worklist::Fifo(q) => q.pop_front(),
                Worklist::Scc(q) => q.pop(&self.g),
            };
            let Some(f) = next else { return SolveEnd::Complete };
            self.note_dequeued(f);
            self.process(f);
        }
    }

    /// Deterministic bulk-synchronous parallel solver: each round computes
    /// the prospective delta outputs of the queued flows in parallel (phase
    /// A, a pure function of the current states), then applies them in
    /// queue order (phase B). The final fixpoint is bit-identical to the
    /// sequential solver's: all joins are monotone and every propagated
    /// delta is part of the corresponding full state, so both orders
    /// converge to the same least fixpoint.
    ///
    /// Under the SCC worklist a round's batch is an antichain of mutually
    /// independent SCC buckets (starting from the lowest-priority one), so
    /// the local-fixpoint-before-successor order holds round-granularly
    /// while independent buckets stop serializing phase A; under FIFO a
    /// round drains the entire worklist (the PR 1 behaviour). An adaptive
    /// run may flip between rounds.
    pub(crate) fn solve_parallel(&mut self, threads: usize) -> Result<SolveEnd, AnalysisError> {
        loop {
            if self.worklist_is_empty() {
                return Ok(SolveEnd::Complete);
            }
            if let Some(reason) = self.poll_interrupt() {
                return Ok(SolveEnd::Interrupted(reason));
            }
            self.maybe_flip();
            let adaptive_fifo = self.flip.is_some();
            let batch: Vec<FlowId> = match &mut self.worklist {
                // While an adaptive solve is in its FIFO phase, cap the
                // round so the between-rounds flip check keeps up with a
                // re-processing storm; forced FIFO drains the whole
                // worklist (the PR 1 round shape).
                Worklist::Fifo(q) if adaptive_fifo => {
                    let n = q.len().min(ADAPTIVE_ROUND_CAP);
                    q.drain(..n).collect()
                }
                Worklist::Fifo(q) => q.drain(..).collect(),
                Worklist::Scc(q) => q.pop_bucket(&mut self.g),
            };
            if batch.is_empty() {
                return Ok(SolveEnd::Complete);
            }
            #[cfg(feature = "fault-inject")]
            self.fault.begin_round();
            for f in &batch {
                self.note_dequeued(*f);
            }
            // Consume the batch's full-step flags before the read-only
            // phase A: phase A's decision must reflect the flags as of the
            // round start, while plain joins arriving *during* phase B
            // re-set them for the next round.
            let full_flags: Vec<bool> = batch
                .iter()
                .map(|&f| {
                    let flow = self.g.flow_mut(f);
                    // A disabled flow keeps its flag (queued flows are
                    // always enabled; this is belt-and-braces).
                    flow.enabled && std::mem::take(&mut flow.needs_full)
                })
                .collect();
            // Phase A: compute prospective outputs in parallel (read-only;
            // each per-flow step is panic-isolated under `catch_unwind` —
            // see [`Engine::guarded_step`] and the module docs).
            // Spawning a thread scope costs tens of microseconds per round;
            // below ~512 flows the per-flow delta computation is cheaper
            // done inline (antichain rounds regularly sit in the 64–400
            // range, where spawning used to *lose* 10× wall time).
            let computed: Result<Vec<StepOut>, (FlowId, String)> =
                if threads <= 1 || batch.len() < 512 {
                    batch
                        .iter()
                        .zip(&full_flags)
                        .filter_map(|(f, &full)| self.guarded_step(*f, full).transpose())
                        .collect()
                } else {
                    let chunk = batch.len().div_ceil(threads);
                    let engine = &*self;
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = batch
                            .chunks(chunk)
                            .zip(full_flags.chunks(chunk))
                            .map(|(flows, fulls)| {
                                scope.spawn(move || {
                                    flows
                                        .iter()
                                        .zip(fulls)
                                        .filter_map(|(f, &full)| {
                                            engine.guarded_step(*f, full).transpose()
                                        })
                                        .collect::<Result<Vec<_>, _>>()
                                })
                            })
                            .collect();
                        let mut outs = Vec::new();
                        let mut panicked: Option<(FlowId, String)> = None;
                        for h in handles {
                            // The per-flow `catch_unwind` means a worker
                            // thread itself never unwinds.
                            match h.join().expect("worker panics are caught per flow") {
                                Ok(mut chunk_outs) => outs.append(&mut chunk_outs),
                                // Keep the first panic in batch order.
                                Err(p) => panicked = panicked.or(Some(p)),
                            }
                        }
                        match panicked {
                            Some(p) => Err(p),
                            None => Ok(outs),
                        }
                    })
                };
            let outputs = match computed {
                Ok(outputs) => outputs,
                Err((flow, message)) => {
                    // Roll the round back. Phase A is read-only, so the
                    // graph is untouched: discarding the prospective
                    // outputs, restoring the consumed full-step flags, and
                    // re-enqueueing the whole batch restores the scheduling
                    // invariant exactly as of the round start — strictly
                    // cheaper than a delta rollback, which would also have
                    // to undo successor joins.
                    for (f, &full) in batch.iter().zip(&full_flags) {
                        if full {
                            self.g.flow_mut(*f).needs_full = true;
                        }
                        self.enqueue(*f);
                    }
                    self.degraded = true;
                    self.interrupt_stats.worker_panics += 1;
                    return Err(AnalysisError::WorkerPanicked {
                        flow,
                        payload: WorkerPanic::new(message),
                    });
                }
            };
            // Phase B: apply sequentially in batch order. Each flow's delta
            // is reduced by exactly the part phase A consumed — input that
            // arrived *during* phase B (from applying earlier flows) stays
            // pending and re-queues the flow for the next round.
            let scc_round = matches!(self.worklist, Worklist::Scc(_));
            let mut pending = outputs.into_iter().peekable();
            let interrupted = loop {
                if pending.peek().is_none() {
                    break None;
                }
                // Mid-round checkpoint: each phase-B apply is exactly one
                // sequential step, so stopping between applies is stopping
                // between steps (the step budget stays exact-at-k even
                // when `k` lands inside a round).
                if let Some(reason) = self.poll_interrupt() {
                    break Some(reason);
                }
                let (f, out_new, consumed, full) = pending.next().expect("peeked above");
                self.mark_worked(f);
                self.steps += 1;
                if scc_round && self.g.flow_in_cycle(f) {
                    self.sched_stats.steps_in_cycles += 1;
                }
                if let Some(max) = self.config.max_steps {
                    assert!(self.steps <= max, "analysis exceeded max_steps = {max}");
                }
                if full {
                    // Full-join fast-path step: the output was recomputed
                    // from the whole input, which covered the phase-A delta
                    // snapshot; tracked joins from phase B stay pending.
                    self.full_join_steps += 1;
                    self.g
                        .flow_mut(f)
                        .delta
                        .remove(consumed.as_ref().expect("full steps snapshot their delta"));
                    self.apply_out_full(f, out_new);
                    continue;
                }
                // `consumed` is `None` for pass-through kinds, whose output
                // *is* the consumed delta.
                self.g
                    .flow_mut(f)
                    .delta
                    .remove(consumed.as_ref().unwrap_or(&out_new));
                self.apply_out(f, out_new);
            };
            if let Some(reason) = interrupted {
                // Discard the un-applied outputs and re-enqueue their
                // flows: nothing was removed from their deltas, so the
                // checkpoint is exactly "a smaller round happened".
                for (f, _, _, full) in pending {
                    if full {
                        self.g.flow_mut(f).needs_full = true;
                    }
                    self.enqueue(f);
                }
                return Ok(SolveEnd::Interrupted(reason));
            }
        }
    }

    /// One panic-isolated phase-A step: [`Engine::compute_step`] under
    /// `catch_unwind`, so a panicking step costs its round instead of
    /// poisoning the session (module docs, "Interrupt safety").
    /// `AssertUnwindSafe` is justified precisely because the closure is
    /// read-only: a caught panic leaves no half-written engine state to
    /// observe.
    fn guarded_step(&self, f: FlowId, full: bool) -> Result<Option<StepOut>, (FlowId, String)> {
        catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "fault-inject")]
            if self.fault.take_worker_panic() {
                panic!("{} (flow {f:?})", crate::fault::INJECTED_PANIC_MARKER);
            }
            self.compute_step(f, full)
        }))
        .map_err(|payload| (f, panic_message(&*payload)))
    }

    /// Phase A of the parallel solver: what [`Engine::process`] would
    /// produce for `f`, read-only. Returns `(flow, prospective output,
    /// consumed delta, full-step flag)`, or `None` when the step would be a
    /// no-op. The consumed delta is `None` for pass-through kinds, where
    /// the output itself is the consumed delta (avoids a redundant clone).
    /// With `full` set (the narrow-join fast path), the output is
    /// recomputed from the whole input and the consumed snapshot is the
    /// current delta, so phase B removes exactly what this step covered.
    fn compute_step(&self, f: FlowId, full: bool) -> Option<StepOut> {
        let flow = self.g.flow(f);
        if !flow.enabled {
            return None;
        }
        if full {
            return Some((f, self.compute_out(f), Some(flow.delta.clone()), true));
        }
        let out_new = match &flow.kind {
            FlowKind::CmpFilter { .. } | FlowKind::CatchAll { .. } | FlowKind::PredOn => {
                self.compute_out(f)
            }
            FlowKind::TypeFilter { ty, negated } => {
                if flow.delta.is_empty() {
                    return None;
                }
                filter_typecheck(self.program, &flow.delta, *ty, *negated)
            }
            FlowKind::Param { declared, .. } if self.config.declared_type_filtering => {
                if flow.delta.is_empty() {
                    return None;
                }
                declared_filter(self.program, &flow.delta, *declared)
            }
            _ => {
                if flow.delta.is_empty() {
                    return None;
                }
                return Some((f, flow.delta.clone(), None, false));
            }
        };
        Some((f, out_new, Some(flow.delta.clone()), false))
    }

    /// The full-join reference loop: recomputes each dequeued flow's output
    /// from its entire input and re-joins the entire output into every
    /// successor. Kept as the differential-testing oracle and the perf
    /// baseline the trajectory harness compares against.
    pub(crate) fn solve_reference(&mut self) -> SolveEnd {
        // [`Engine::new`] forces the FIFO worklist for the reference solver.
        let Worklist::Fifo(_) = &self.worklist else {
            unreachable!("reference solver always runs FIFO");
        };
        loop {
            let Worklist::Fifo(q) = &mut self.worklist else { unreachable!() };
            if q.is_empty() {
                return SolveEnd::Complete;
            }
            if let Some(reason) = self.poll_interrupt() {
                return SolveEnd::Interrupted(reason);
            }
            let Worklist::Fifo(q) = &mut self.worklist else { unreachable!() };
            let Some(f) = q.pop_front() else { return SolveEnd::Complete };
            self.note_dequeued(f);
            self.process_reference(f);
        }
    }

    /// One full-join step (reference solver only).
    fn process_reference(&mut self, f: FlowId) {
        self.steps += 1;
        if let Some(max) = self.config.max_steps {
            assert!(self.steps <= max, "analysis exceeded max_steps = {max}");
        }
        if !self.g.flow(f).enabled {
            return;
        }
        // The reference solver propagates full states; the delta bookkeeping
        // is drained so the invariant `delta ⊑ in_state` stays meaningful.
        let flow = self.g.flow_mut(f);
        flow.needs_full = false;
        let _ = flow.delta.take();
        let new_out = self.compute_out(f);
        self.apply_out_full(f, new_out);
    }

    /// Consumes the engine into an owned [`AnalysisResult`] (zero-copy: the
    /// PVPG moves out). The session supplies the completeness tag — the
    /// engine cannot know about roots still pending a solve.
    pub(crate) fn finish(
        self,
        elapsed: Duration,
        solves: u64,
        completeness: Completeness,
    ) -> AnalysisResult {
        let stats = self.stats_snapshot(elapsed, solves);
        AnalysisResult::new(
            self.g,
            ReachableSet::from_discovery(self.reachable, self.reachable_order),
            self.instantiated,
            self.config,
            stats,
            completeness,
        )
    }
}

/// The TypeCheck rule: keep (or remove, negated) subtypes of `ty`.
/// `instanceof` is false for `null`, so the positive filter drops it and the
/// negative filter keeps it.
fn filter_typecheck(
    program: &Program,
    input: &ValueState,
    ty: TypeId,
    negated: bool,
) -> ValueState {
    match input {
        ValueState::Empty => ValueState::Empty,
        // Type tests on primitives are ill-typed; nothing flows.
        ValueState::Const(_) => ValueState::Empty,
        // A saturated object state cannot be narrowed without re-expanding
        // it; Any is the sound over-approximation (only reachable when
        // saturation is configured).
        ValueState::Any => ValueState::Any,
        ValueState::Types(s) => {
            let mask = program.subtypes(ty);
            let filtered = if negated {
                s.difference_mask(mask)
            } else {
                s.intersect_mask(mask, false)
            };
            ValueState::from_types(filtered)
        }
    }
}

/// [`filter_typecheck`] over an owned input (a drained delta): the same
/// filter, with the pass-through cases moved instead of cloned.
fn filter_typecheck_owned(
    program: &Program,
    input: ValueState,
    ty: TypeId,
    negated: bool,
) -> ValueState {
    match input {
        ValueState::Empty | ValueState::Const(_) => ValueState::Empty,
        ValueState::Any => ValueState::Any,
        ValueState::Types(s) => {
            let mask = program.subtypes(ty);
            let filtered = if negated {
                s.difference_mask(mask)
            } else {
                s.intersect_mask(mask, false)
            };
            ValueState::from_types(filtered)
        }
    }
}

/// Declared-type filtering for parameters: object parameters admit subtypes
/// of the declared type plus `null`; primitive parameters admit everything.
fn declared_filter(program: &Program, input: &ValueState, declared: TypeRef) -> ValueState {
    match (input, declared) {
        (ValueState::Types(s), TypeRef::Object(t)) => {
            ValueState::from_types(s.intersect_mask(program.subtypes(t), true))
        }
        _ => input.clone(),
    }
}

/// [`declared_filter`] over an owned input (a drained delta).
fn declared_filter_owned(program: &Program, input: ValueState, declared: TypeRef) -> ValueState {
    match (input, declared) {
        (ValueState::Types(s), TypeRef::Object(t)) => {
            ValueState::from_types(s.intersect_mask(program.subtypes(t), true))
        }
        (other, _) => other,
    }
}

/// Saturation (Wimmer et al. [60]): widen oversized type sets to `Any`.
fn maybe_saturate(state: &mut ValueState, threshold: Option<usize>) {
    if let (Some(k), ValueState::Types(s)) = (threshold, &*state) {
        if s.len() > k {
            *state = ValueState::Any;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::TypeSet;
    use skipflow_ir::ProgramBuilder;

    /// Object <- Animal <- Dog; Cat extends Animal.
    fn hierarchy() -> (Program, TypeId, TypeId, TypeId) {
        let mut pb = ProgramBuilder::new();
        let animal = pb.add_class("Animal");
        let dog = pb.class("Dog").extends(animal).build();
        let cat = pb.class("Cat").extends(animal).build();
        let m = pb.method(animal, "noop").static_().returns(TypeRef::Void).build();
        pb.set_trivial_body(m, None);
        (pb.finish().unwrap(), animal, dog, cat)
    }

    fn types_of(ids: &[TypeId]) -> ValueState {
        ValueState::Types(ids.iter().copied().collect::<TypeSet>())
    }

    #[test]
    fn typecheck_filter_keeps_subtypes_and_drops_null() {
        let (p, animal, dog, cat) = hierarchy();
        let mut input = TypeSet::null_only();
        input.insert(dog);
        input.insert(cat);
        let input = ValueState::Types(input);

        // instanceof Dog: only Dog survives; null is filtered (instanceof is
        // false for null).
        let out = filter_typecheck(&p, &input, dog, false);
        assert_eq!(out, types_of(&[dog]));

        // !instanceof Dog: Cat and null survive.
        let out = filter_typecheck(&p, &input, dog, true);
        let s = out.types().unwrap();
        assert!(s.contains(cat) && s.contains_null() && !s.contains(dog));

        // instanceof Animal admits both subclasses.
        let out = filter_typecheck(&p, &input, animal, false);
        assert_eq!(out, types_of(&[dog, cat]));

        // The owned (delta) variant agrees everywhere.
        for (ty, negated) in [(dog, false), (dog, true), (animal, false)] {
            assert_eq!(
                filter_typecheck(&p, &input, ty, negated),
                filter_typecheck_owned(&p, input.clone(), ty, negated)
            );
        }
    }

    #[test]
    fn typecheck_filter_edge_cases() {
        let (p, _, dog, _) = hierarchy();
        assert_eq!(filter_typecheck(&p, &ValueState::Empty, dog, false), ValueState::Empty);
        // Primitives never pass a type test (ill-typed).
        assert_eq!(filter_typecheck(&p, &ValueState::Const(3), dog, false), ValueState::Empty);
        // Saturated input stays saturated (sound over-approximation).
        assert_eq!(filter_typecheck(&p, &ValueState::Any, dog, false), ValueState::Any);
        // Filtering to nothing normalizes to Empty.
        let only_null = ValueState::null();
        assert_eq!(filter_typecheck(&p, &only_null, dog, false), ValueState::Empty);
        for input in [ValueState::Empty, ValueState::Const(3), ValueState::Any, only_null] {
            assert_eq!(
                filter_typecheck(&p, &input, dog, false),
                filter_typecheck_owned(&p, input, dog, false)
            );
        }
    }

    #[test]
    fn declared_filter_keeps_null_but_drops_foreign_types() {
        let (p, animal, dog, cat) = hierarchy();
        let mut input = TypeSet::null_only();
        input.insert(dog);
        input.insert(cat);
        let input = ValueState::Types(input);

        // Declared Dog: null stays (a reference parameter may be null).
        let out = declared_filter(&p, &input, TypeRef::Object(dog));
        let s = out.types().unwrap();
        assert!(s.contains(dog) && s.contains_null() && !s.contains(cat));

        // Declared Animal keeps everything.
        let out = declared_filter(&p, &input, TypeRef::Object(animal));
        assert_eq!(out.types().unwrap().len(), 3);

        // Primitive declarations pass anything through.
        assert_eq!(declared_filter(&p, &ValueState::Const(7), TypeRef::Prim), ValueState::Const(7));
        assert_eq!(declared_filter(&p, &input, TypeRef::Prim), input);

        // The owned (delta) variant agrees everywhere.
        for declared in [TypeRef::Object(dog), TypeRef::Object(animal), TypeRef::Prim] {
            assert_eq!(
                declared_filter(&p, &input, declared),
                declared_filter_owned(&p, input.clone(), declared)
            );
        }
    }

    /// A PVPG with the online order enabled and `n` phi flows wired by
    /// `edges` (construction-time use edges, indices into the created
    /// flows). Returns the graph and the created flow ids — the scaffold
    /// for queue tests, which key buckets off the live order labels.
    fn ordered_graph(n: usize, edges: &[(usize, usize)]) -> (Pvpg, Vec<FlowId>) {
        let mut g = Pvpg::new();
        g.enable_online_order();
        let first = g.flow_count();
        let ids: Vec<FlowId> = (0..n)
            .map(|_| g.add_flow(crate::flow::Flow::new(crate::flow::FlowKind::Phi, None, None)))
            .collect();
        for &(s, t) in edges {
            g.add_use(ids[s], ids[t]);
        }
        g.seal_batch(first);
        (g, ids)
    }

    /// Pushes as a *re-enqueued* flow (the priority tier) — the queue
    /// tests exercise label ordering; the frontier tier has its own test.
    fn push_live(q: &mut SccQueue, g: &Pvpg, f: FlowId) {
        q.push(f, g.live_label(f), false);
    }

    #[test]
    fn scc_queue_orders_buckets_by_live_labels() {
        // a → b → c: three singleton components, labels ascending along the
        // chain; pops come out lowest-label-first regardless of push order.
        let (g, ids) = ordered_graph(3, &[(0, 1), (1, 2)]);
        let mut q = SccQueue::new();
        for &i in &[2usize, 0, 1] {
            push_live(&mut q, &g, ids[i]);
        }
        assert_eq!(q.pop(&g), Some(ids[0]));
        assert_eq!(q.pop(&g), Some(ids[1]));
        assert_eq!(q.pop(&g), Some(ids[2]));
        assert_eq!(q.pop(&g), None);
        assert_eq!(q.rebucketed, 0, "no repairs, no healing");
    }

    #[test]
    fn scc_queue_shares_a_bucket_within_one_scc() {
        // a → b with a back edge b → a: one component, one bucket, FIFO
        // within it; a downstream flow c drains strictly after.
        let (mut g, ids) = ordered_graph(3, &[(0, 1), (1, 2)]);
        assert!(g.add_use_dedup(ids[1], ids[0]), "close the cycle");
        assert_eq!(g.same_component(ids[0], ids[1]), Some(true));
        let mut q = SccQueue::new();
        for &i in &[1usize, 2, 0] {
            push_live(&mut q, &g, ids[i]);
        }
        assert_eq!(q.pop(&g), Some(ids[1]), "FIFO within the SCC bucket");
        assert_eq!(q.pop(&g), Some(ids[0]));
        assert_eq!(q.pop(&g), Some(ids[2]), "downstream flow drains last");
        assert_eq!(q.pop(&g), None);
    }

    #[test]
    fn scc_queue_pop_bucket_batches_an_antichain_of_independent_buckets() {
        // 0 → 1 and an unrelated 2: buckets 0 and 2 are mutually ready and
        // batch into one round; bucket 1 waits for its predecessor.
        let (mut g, ids) = ordered_graph(3, &[(0, 1)]);
        let mut q = SccQueue::new();
        for &i in &[1usize, 0, 2] {
            push_live(&mut q, &g, ids[i]);
        }
        let mut round = q.pop_bucket(&mut g);
        round.sort();
        assert_eq!(round, vec![ids[0], ids[2]]);
        assert_eq!(q.pop_bucket(&mut g), vec![ids[1]]);
        assert!(q.pop_bucket(&mut g).is_empty());
        assert_eq!(q.antichain_rounds, 2);
        assert_eq!(q.antichain_batched, 3, "one multi-bucket round happened");
    }

    #[test]
    fn scc_queue_antichain_serializes_chains_without_transitive_edges() {
        // A chain 0 → 1 → 2 with only the *adjacent* edges: bucket 2 has no
        // direct edge from 0, yet it must not share 0's round while 1 is
        // still queued (readiness, not pairwise edge-absence).
        let (mut g, ids) = ordered_graph(3, &[(0, 1), (1, 2)]);
        let mut q = SccQueue::new();
        for &i in &[2usize, 0, 1] {
            push_live(&mut q, &g, ids[i]);
        }
        assert_eq!(q.pop_bucket(&mut g), vec![ids[0]]);
        assert_eq!(q.pop_bucket(&mut g), vec![ids[1]]);
        assert_eq!(q.pop_bucket(&mut g), vec![ids[2]]);
        // Once the chain's upstream is at fixpoint, a later bucket *can*
        // share a round with an unrelated one. (Clear the attempt backoff
        // the singleton rounds above armed — production rounds drain it one
        // round at a time.)
        q.antichain_backoff = 0;
        push_live(&mut q, &g, ids[0]);
        push_live(&mut q, &g, ids[2]);
        let mut round = q.pop_bucket(&mut g);
        round.sort();
        assert_eq!(
            round,
            vec![ids[0], ids[2]],
            "bucket 2's predecessor 1 is idle, so 0 (unrelated) and 2 batch"
        );
    }

    #[test]
    fn scc_queue_dynamic_edges_block_readiness_immediately() {
        // Buckets 0 and 2 start independent; a dynamically discovered edge
        // 0 → 2 (fan-out wiring mid-solve) must stop 2 from sharing 0's
        // round the moment it is inserted — the online order's in-edge
        // lists are live, so there is no recompute lag and no dirty window.
        let (mut g, ids) = ordered_graph(3, &[(0, 1)]);
        assert!(g.add_use_dedup(ids[0], ids[2]));
        let mut q = SccQueue::new();
        push_live(&mut q, &g, ids[0]);
        push_live(&mut q, &g, ids[2]);
        assert_eq!(q.pop_bucket(&mut g), vec![ids[0]]);
        assert_eq!(q.pop_bucket(&mut g), vec![ids[2]]);
    }

    #[test]
    fn scc_queue_heals_entries_staled_by_an_order_repair() {
        // Queue b under its current label, then insert c → b where c sits
        // above b: the repair relocates b''s component while it is queued.
        // The pop must hand b out exactly once, re-bucketed under its live
        // label, and count the heal.
        let (mut g, ids) = ordered_graph(3, &[(0, 1)]);
        let mut q = SccQueue::new();
        push_live(&mut q, &g, ids[1]); // b, label as of now
        push_live(&mut q, &g, ids[2]); // c
        let stale = g.live_label(ids[1]);
        assert!(g.add_use_dedup(ids[2], ids[1]), "violating edge: c above b");
        assert!(g.order_stats().unwrap().repairs >= 1, "the insert repaired");
        assert_ne!(g.live_label(ids[1]), stale, "b''s component moved");
        let mut popped = Vec::new();
        while let Some(f) = q.pop(&g) {
            popped.push(f);
        }
        popped.sort();
        assert_eq!(popped, vec![ids[1], ids[2]], "each flow pops exactly once");
        assert!(q.rebucketed >= 1, "the stale entry was healed");
        g.assert_valid_order();
    }

    #[test]
    fn flip_tracker_trips_only_on_a_reprocess_dominated_window() {
        let mut t = FlipTracker::new();
        // First-time dequeues never trip the detector.
        for _ in 0..FLIP_WINDOW * 2 {
            t.observe(false);
            assert!(!t.tripped());
        }
        assert_eq!(t.pops, (FLIP_WINDOW * 2) as u64);
        assert_eq!(t.re_pops, 0);
        // A re-process-dominated stream trips at exactly the threshold.
        let mut pops = 0;
        while !t.tripped() {
            t.observe(true);
            pops += 1;
            assert!(pops <= FLIP_WINDOW, "must trip within one window");
        }
        assert_eq!(pops, FLIP_TRIP as usize, "trips exactly at the threshold");
        assert_eq!(t.re_pops, FLIP_TRIP as u64);
        // Fresh dequeues wash the window back below the threshold, and a
        // mixed stream below the trip rate never fires.
        for _ in 0..FLIP_WINDOW {
            t.observe(false);
        }
        assert!(!t.tripped());
        for i in 0..FLIP_WINDOW * 4 {
            t.observe(i % 2 == 0); // 50 % re-process rate < 75 % trip rate
            assert!(!t.tripped());
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "resident in two priority buckets")]
    fn scc_queue_rejects_duplicate_residency() {
        let mut q = SccQueue::new();
        q.push(FlowId::from_index(0), 1, false);
        q.push(FlowId::from_index(0), 2, true);
    }

    #[test]
    fn saturation_widens_only_above_threshold() {
        let (_, animal, dog, cat) = hierarchy();
        let mut s = types_of(&[animal, dog, cat]);
        maybe_saturate(&mut s, None);
        assert!(matches!(s, ValueState::Types(_)), "no threshold, no widening");
        maybe_saturate(&mut s, Some(3));
        assert!(matches!(s, ValueState::Types(_)), "at the threshold, keep");
        maybe_saturate(&mut s, Some(2));
        assert_eq!(s, ValueState::Any, "above the threshold, widen");
        // Primitives are never saturated.
        let mut c = ValueState::Const(1);
        maybe_saturate(&mut c, Some(0));
        assert_eq!(c, ValueState::Const(1));
    }
}
