//! The fixpoint engine: delta (difference) propagation over the PVPG
//! (paper Appendix C, Figure 15).
//!
//! The inference rules map onto the engine as follows:
//!
//! * **Source** — [`Engine::enable`] evaluates constant/`Any`/`new`/`null`
//!   sources when the flow is enabled; enabling a `new T` marks `T`
//!   instantiated.
//! * **Propagate** — [`Engine::process`] pushes the (filtered) output of an
//!   enabled flow along its use edges.
//! * **Predicate** — when an enabled flow's output becomes non-empty, its
//!   predicate successors are enabled.
//! * **Load/Store** — observe edges from receivers add use edges between
//!   field sinks and access flows as receiver types appear.
//! * **Invoke** — observe edges from receivers resolve and link callees:
//!   argument flows to formal parameters, callee return to the invoke flow.
//! * **TypeCheck/Cond/PassThrough** — the flow's output is a function of its
//!   input, filtered according to the flow kind (`Cond` uses
//!   [`crate::compare::compare`]).
//!
//! # Delta propagation
//!
//! The solvers use *difference propagation*: each flow carries a pending
//! `delta` — the part of its input state not yet pushed through the flow.
//! [`Engine::join_in`] joins incoming state into `in_state` and accumulates
//! exactly the new information into `delta` (word-level on type-set bits);
//! a worklist step drains the delta, filters only the drained part through
//! the flow kind, and joins the result into `out_state` while tracking what
//! is new there — successors receive only those new bits.
//!
//! Invariants:
//!
//! * `delta ⊑ in_state` at all times, and `out_state ⊒` the filtered image
//!   of every drained delta (`out_state ⊒ applied deltas`);
//! * the delta is drained exactly once per dequeue of an *enabled* flow
//!   (disabled flows keep accumulating until their predicate fires);
//! * only *distributive* kinds filter the bare delta (`TypeFilter`, the
//!   declared-type `Param` filter, and plain pass-throughs — kinds where
//!   `filter(a ∨ b) = filter(a) ∨ filter(b)`). `CmpFilter` is excluded
//!   because its output depends on the observed right operand: when that
//!   operand grows, the *entire* input must be re-filtered (e.g. `x < y`
//!   admits previously-rejected values of `x` once `y` grows), so it always
//!   recomputes from the full `in_state`. `CatchAll` is excluded because it
//!   unconditionally adds `null` even to an empty input, and `PredOn` is a
//!   constant source.
//!
//! Saturation widening (`maybe_saturate`) is folded into the tracking joins:
//! when a state widens to `Any`, the pending/propagated delta widens with
//! it, so successors observe the widening.
//!
//! All states grow monotonically, every propagated delta is part of the
//! corresponding full state, and filtering is monotone — so the delta
//! solvers reach the same least fixpoint as the full-join reference solver
//! ([`SolverKind::Reference`], kept as the differential-testing oracle),
//! and the worklist loop terminates because the lattice has finite height.
//!
//! # Scheduling
//!
//! The delta solvers drain their worklist under one of two schedulers
//! ([`crate::SchedulerKind`]):
//!
//! * **FIFO** — a plain queue; kept as the scheduling oracle.
//! * **SCC priority** (the default) — flows are bucketed by the
//!   condensation-topological index of their strongly connected component
//!   in the PVPG ([`Pvpg::compute_sccs`], over the value-carrying use and
//!   observe edges; predicate edges are one-shot enabling, impose no
//!   re-processing order, and are excluded — see [`crate::SccInfo`]), and
//!   the solver always dequeues from the lowest-priority non-empty bucket.
//!
//! Invariants of the SCC scheduler:
//!
//! * **Local fixpoint before successors** — every PVPG edge between
//!   distinct SCCs goes from a lower to a higher priority, so intra-SCC
//!   re-enqueues land back in the bucket currently being drained and an SCC
//!   reaches its local fixpoint before any flow of a later SCC is dequeued.
//!   Cyclic regions (loop φs, recursion, the `pred_on → φ_pred` predicate
//!   loops SkipFlow's predicate edges create) therefore stop being
//!   re-processed interleaved with everything downstream of them.
//! * **Incremental SCC maintenance** — fragments are instantiated *during*
//!   solving, so the condensation goes stale. Structural changes — new
//!   flows, and dynamically added use edges that violate the current
//!   priority order (source priority ≥ target priority; forward edges
//!   leave the topological order valid) — bump a dirty counter; the
//!   condensation is recomputed in one batch when the counter reaches
//!   `max(4096, flows at the last recompute)`, and only *between* worklist
//!   steps (between rounds for the parallel solver). On runs whose order
//!   stays consistent the graph must roughly double between recomputes (a
//!   geometric series bounded by the final graph size); linking bursts
//!   that keep violating the order keep paying for corrective recomputes,
//!   which is exactly when they are worth it. Flows created since the last
//!   recompute provisionally adopt the priority of the bucket being
//!   drained (they are downstream of the flow whose step created them),
//!   and queued flows migrate to their new buckets in deterministic order
//!   on recompute. A flow is never resident in two buckets at once
//!   (enforced by a debug-only residency bitmap).
//! * **Correctness is scheduling-independent** — priorities are purely a
//!   performance heuristic: all joins are monotone, so any dequeue order
//!   converges to the same least fixpoint. Implicit dependencies that are
//!   not materialized as edges (type-subscriber injections, saturated-site
//!   re-dispatch) may therefore be safely absent from the SCC computation.
//! * **Parallel rounds are whole buckets** — the parallel solver's phase
//!   A/B rounds take one entire SCC bucket as the batch (instead of the
//!   whole worklist), so the local-fixpoint-before-successor order and the
//!   result-identity guarantee of `tests/delta_vs_reference.rs` both hold.
//! * The reference solver always runs FIFO — it is the oracle and stays
//!   byte-for-byte the full-join algorithm.
//!
//! # Resume (the monotone-resume invariant)
//!
//! The engine is owned by an [`crate::AnalysisSession`] and may be solved
//! *repeatedly*: after a solve reaches its fixpoint, the session can add new
//! roots ([`Engine::add_roots`]) and solve again, continuing from the
//! saturated PVPG instead of rebuilding it. This is sound and
//! result-identical to a fresh analysis over the union of all roots added so
//! far, because every engine action is **monotone and idempotent**:
//!
//! * all value states (`in_state`, `delta`, `out_state`) only ever grow
//!   (joins in a finite-height lattice; saturation widens to the absorbing
//!   `Any`), and `enabled` flips only from `false` to `true`;
//! * structures only accrete — flows, edges, linked targets, instantiated
//!   types, reachable methods, subscribers, and saturated sites are never
//!   removed, and every registration replays the relevant *past* events
//!   (`subscribe` feeds already-instantiated subtypes, `push_state` feeds
//!   the source's current out-state, a saturating receiver re-dispatches
//!   over every type instantiated so far);
//! * a fixpoint is a state where no step can change anything, so re-running
//!   any solver over a saturated graph is a no-op, and injecting new roots
//!   merely enqueues the frontier their states actually change.
//!
//! Hence solving roots `A`, then adding `B` and re-solving, converges to the
//! *same least fixpoint* as solving `A ∪ B` from scratch — only the path
//! (and the step count, which the trajectory harness's `resume` rung
//! measures) differs. `tests/session_resume.rs` enforces the identity
//! differentially across every solver × scheduler combination.

use crate::build::{build_method_graph, BuildOutput};
use crate::compare::compare;
use crate::config::{AnalysisConfig, SchedulerKind, SolverKind};
use crate::flow::{FlowId, FlowKind, SiteId};
use crate::graph::Pvpg;
use crate::lattice::{TypeSet, ValueState};
use crate::metrics::SchedulerStats;
use crate::report::{AnalysisResult, ReachableSet, SolveStats};
use skipflow_ir::{BitSet, MethodId, Program, TypeId, TypeRef};
use std::collections::VecDeque;
use std::time::Duration;

/// Minimum structural changes before a mid-solve condensation recompute.
const RECOMPUTE_MIN_DIRTY: usize = 4096;

/// Sentinel for the intrusive bucket lists.
const NO_FLOW: u32 = u32::MAX;

/// The SCC-aware bucketed priority worklist (see the module docs,
/// "Scheduling").
///
/// Buckets are intrusive singly-linked lists threaded through a per-flow
/// `next` array: a push or pop is a couple of word writes, and the queue
/// allocates nothing on the hot path no matter how many priorities the
/// condensation has (one `u32` of head/tail per priority).
struct SccQueue {
    /// Head flow of each priority's FIFO list (`NO_FLOW` = empty).
    head: Vec<u32>,
    /// Tail flow of each priority's FIFO list.
    tail: Vec<u32>,
    /// Per-flow link to the next queued flow of the same bucket.
    next: Vec<u32>,
    /// Scan cursor: every bucket below this priority is empty. Advances
    /// forward over drained buckets and is pulled back by a push into a
    /// lower bucket (rare: back edges and stale priorities only).
    scan: usize,
    /// Per-flow priority from the last recompute. Flows created since adopt
    /// [`SccQueue::cur_prio`].
    prio: Vec<u32>,
    /// Priority of the most recently dequeued flow — the bucket being
    /// drained, and the provisional priority of flows created mid-drain.
    cur_prio: u32,
    /// Flows created since the last condensation recompute.
    dirty: usize,
    /// Flow count at the last recompute (the dirty threshold's base).
    base_flows: usize,
    /// Queued flows across all buckets.
    len: usize,
    /// Debug-only duplicate-enqueue guard: a flow must never be resident in
    /// two priority buckets at once.
    #[cfg(debug_assertions)]
    resident: Vec<bool>,
}

impl SccQueue {
    fn new() -> Self {
        SccQueue {
            head: vec![NO_FLOW],
            tail: vec![NO_FLOW],
            next: Vec::new(),
            scan: 0,
            prio: Vec::new(),
            cur_prio: 0,
            dirty: 0,
            base_flows: 0,
            len: 0,
            #[cfg(debug_assertions)]
            resident: Vec::new(),
        }
    }

    /// The scheduling priority of `f`: its condensation index, or the
    /// currently drained bucket for flows newer than the last recompute.
    /// Both are always in-range: condensation priorities are `< scc_count`
    /// (the bucket count installed with them) and `cur_prio` comes from a
    /// bucket scan.
    fn priority_of(&self, f: FlowId) -> usize {
        self.prio.get(f.index()).copied().unwrap_or(self.cur_prio) as usize
    }

    fn push(&mut self, f: FlowId) {
        #[cfg(debug_assertions)]
        {
            if self.resident.len() <= f.index() {
                self.resident.resize(f.index() + 1, false);
            }
            debug_assert!(
                !self.resident[f.index()],
                "flow {f:?} would be resident in two priority buckets"
            );
            self.resident[f.index()] = true;
        }
        if self.next.len() <= f.index() {
            self.next.resize(f.index() + 1, NO_FLOW);
        }
        let p = self.priority_of(f);
        let id = f.index() as u32;
        self.next[f.index()] = NO_FLOW;
        if self.head[p] == NO_FLOW {
            self.head[p] = id;
        } else {
            self.next[self.tail[p] as usize] = id;
        }
        self.tail[p] = id;
        self.scan = self.scan.min(p);
        self.len += 1;
    }

    /// Dequeues from the lowest-priority non-empty bucket (FIFO within the
    /// bucket — the bucket is one SCC, iterated to local fixpoint).
    fn pop(&mut self) -> Option<FlowId> {
        if self.len == 0 {
            return None;
        }
        while self.head[self.scan] == NO_FLOW {
            self.scan += 1;
        }
        let p = self.scan;
        let id = self.head[p];
        self.head[p] = self.next[id as usize];
        if self.head[p] == NO_FLOW {
            self.tail[p] = NO_FLOW;
        }
        self.len -= 1;
        self.cur_prio = p as u32;
        #[cfg(debug_assertions)]
        {
            self.resident[id as usize] = false;
        }
        Some(FlowId::from_index(id as usize))
    }

    /// Drains the whole lowest-priority non-empty bucket — the parallel
    /// solver's batch unit (one SCC round).
    fn pop_bucket(&mut self) -> Vec<FlowId> {
        if self.len == 0 {
            return Vec::new();
        }
        while self.head[self.scan] == NO_FLOW {
            self.scan += 1;
        }
        let p = self.scan;
        self.cur_prio = p as u32;
        let mut batch = Vec::new();
        let mut id = self.head[p];
        while id != NO_FLOW {
            batch.push(FlowId::from_index(id as usize));
            #[cfg(debug_assertions)]
            {
                self.resident[id as usize] = false;
            }
            id = self.next[id as usize];
        }
        self.head[p] = NO_FLOW;
        self.tail[p] = NO_FLOW;
        self.len -= batch.len();
        batch
    }

    /// Whether enough structure changed to warrant a batch recompute: the
    /// graph must (roughly) double relative to its size at the *last*
    /// recompute, so the total recompute cost over a run is a geometric
    /// series bounded by a constant factor of the final graph size.
    fn needs_recompute(&self) -> bool {
        self.dirty >= RECOMPUTE_MIN_DIRTY.max(self.base_flows)
    }

    /// Adopts a fresh condensation: installs the new priorities and migrates
    /// every queued flow into its new bucket (drained in ascending old
    /// priority, FIFO within — deterministic). Returns the number of flows
    /// migrated.
    fn apply(&mut self, priority: Vec<u32>, scc_count: u32) -> u64 {
        let mut queued: Vec<FlowId> = Vec::with_capacity(self.len);
        let old_len = self.len;
        while let Some(f) = self.pop() {
            queued.push(f);
        }
        debug_assert_eq!(queued.len(), old_len);
        let buckets = scc_count.max(1) as usize;
        self.head.clear();
        self.head.resize(buckets, NO_FLOW);
        self.tail.clear();
        self.tail.resize(buckets, NO_FLOW);
        self.scan = 0;
        self.base_flows = priority.len();
        self.prio = priority;
        self.cur_prio = 0;
        self.dirty = 0;
        self.len = 0;
        let migrated = queued.len() as u64;
        for f in queued {
            self.push(f);
        }
        migrated
    }
}

/// The solver worklist: a plain FIFO queue or the SCC priority queue.
enum Worklist {
    Fifo(VecDeque<FlowId>),
    Scc(SccQueue),
}

impl Worklist {
    fn push(&mut self, f: FlowId) {
        match self {
            Worklist::Fifo(q) => q.push_back(f),
            Worklist::Scc(q) => q.push(f),
        }
    }
}

pub(crate) struct Engine<'p> {
    program: &'p Program,
    config: AnalysisConfig,
    g: Pvpg,
    worklist: Worklist,
    queued: Vec<bool>,
    /// Reachable methods: O(1) membership plus discovery order (sorted into
    /// a `BTreeSet` once, at the end).
    reachable: BitSet,
    reachable_order: Vec<MethodId>,
    instantiated: BitSet,
    instantiated_order: Vec<TypeId>,
    /// `(declared bound, target)`: target's input receives every
    /// instantiated subtype of the bound (root params, reflective fields,
    /// coarse exception handlers).
    type_subscribers: Vec<(TypeId, FlowId)>,
    /// Invoke sites whose receiver saturated to `Any`: re-dispatched on
    /// every newly instantiated type. Order vector for iteration, bitset
    /// for O(1) membership.
    saturated_sites: Vec<SiteId>,
    saturated_set: BitSet,
    /// Field sinks already seeded with their default value (by field index).
    defaulted_fields: BitSet,
    /// Per-flow flag from the last condensation recompute: the flow sits in
    /// an SCC of size ≥ 2 (drives the steps-per-SCC statistics).
    in_cycle: Vec<bool>,
    sched_stats: SchedulerStats,
    steps: u64,
    state_joins: u64,
}

impl<'p> Engine<'p> {
    pub(crate) fn new(program: &'p Program, config: AnalysisConfig) -> Self {
        // The reference solver is the oracle: it always runs the PR 1 FIFO
        // order regardless of the configured scheduler.
        let worklist = match (config.solver, config.scheduler) {
            (SolverKind::Reference, _) | (_, SchedulerKind::Fifo) => {
                Worklist::Fifo(VecDeque::new())
            }
            (_, SchedulerKind::SccPriority) => Worklist::Scc(SccQueue::new()),
        };
        Engine {
            program,
            config,
            g: Pvpg::new(),
            worklist,
            queued: Vec::new(),
            reachable: BitSet::new(),
            reachable_order: Vec::new(),
            instantiated: BitSet::new(),
            instantiated_order: Vec::new(),
            type_subscribers: Vec::new(),
            saturated_sites: Vec::new(),
            saturated_set: BitSet::new(),
            defaulted_fields: BitSet::new(),
            in_cycle: Vec::new(),
            sched_stats: SchedulerStats::default(),
            steps: 0,
            state_joins: 0,
        }
    }

    /// Records `n` structural changes (new flows / dynamic edges) for the
    /// SCC scheduler's dirty counter; a no-op under FIFO.
    fn note_structural(&mut self, n: usize) {
        if let Worklist::Scc(q) = &mut self.worklist {
            q.dirty += n;
        }
    }

    /// Adds a dynamically discovered use edge (field wiring, invoke
    /// linking). Only *order-violating* edges — source priority ≥ target
    /// priority, the ones that can merge SCCs or break the topological
    /// order — count toward the recompute dirty counter; forward edges
    /// leave the existing priorities valid. Linking bursts (fan-out
    /// workloads) therefore keep triggering corrective recomputes while a
    /// run whose order is already consistent pays nothing.
    fn add_use_edge(&mut self, s: FlowId, t: FlowId) -> bool {
        let added = self.g.add_use_dedup(s, t);
        if added {
            if let Worklist::Scc(q) = &mut self.worklist {
                if q.priority_of(s) >= q.priority_of(t) {
                    q.dirty += 1;
                }
            }
        }
        added
    }

    /// Recomputes the PVPG condensation and rebuckets the queued flows
    /// (SCC scheduler only). Called once when a solve starts and then in
    /// batches behind the dirty counter.
    fn recompute_sccs(&mut self) {
        if !matches!(self.worklist, Worklist::Scc(_)) {
            return;
        }
        let info = self.g.compute_sccs();
        self.sched_stats.scc_count = info.count as usize;
        self.sched_stats.cyclic_flows = info.cyclic_flows as usize;
        self.sched_stats.max_scc_size = info.max_size as usize;
        self.sched_stats.scc_recomputes += 1;
        self.in_cycle = info.cyclic;
        if let Worklist::Scc(q) = &mut self.worklist {
            self.sched_stats.rebucketed_flows += q.apply(info.priority, info.count);
        }
    }

    /// Recomputes the condensation if enough structure changed since the
    /// last time. Only ever called *between* worklist steps / rounds.
    fn maybe_recompute(&mut self) {
        let needed = match &self.worklist {
            Worklist::Scc(q) => q.needs_recompute(),
            Worklist::Fifo(_) => false,
        };
        if needed {
            self.recompute_sccs();
        }
    }

    /// The field sink for `field`, seeded once with the Java default value
    /// (`null` for references, 0 for primitives): an unwritten field read
    /// yields its default, so soundness requires it in the field's state.
    fn field_sink(&mut self, field: skipflow_ir::FieldId) -> FlowId {
        let sink = self.g.field_sink(field);
        self.sync_queued();
        if self.defaulted_fields.insert(field.index()) {
            let default = match self.program.field(field).ty {
                TypeRef::Object(_) => ValueState::null(),
                _ => {
                    if self.config.primitives {
                        ValueState::Const(0)
                    } else {
                        ValueState::Any
                    }
                }
            };
            self.join_in(sink, &default);
        }
        sink
    }

    /// One-time setup of the global flows and the configured reflective
    /// surface (§5). Called exactly once per session, before the first
    /// solve; analysis roots are added separately via [`Engine::add_roots`].
    pub(crate) fn bootstrap(&mut self) {
        // pred_on is enabled with a non-empty token state, so the flows it
        // predicates are enabled transitively.
        let pred_on = self.g.pred_on;
        self.g.flow_mut(pred_on).enabled = true;
        self.sync_queued();
        self.join_in(pred_on, &ValueState::Const(1));
        // The global pools are always-enabled pass-throughs.
        for sink in [self.g.thrown_sink, self.g.unsafe_sink] {
            self.g.flow_mut(sink).enabled = true;
        }
        self.enqueue(pred_on);

        let reflective_roots = self.config.reflective_roots.clone();
        for m in reflective_roots {
            self.make_root(m);
        }
        let reflective_fields = self.config.reflective_fields.clone();
        for field in reflective_fields {
            let sink = self.field_sink(field);
            let declared = self.program.field(field).ty;
            self.inject(sink, declared);
        }
        self.sync_queued();
    }

    /// Adds analysis roots (paper §5: parameters injected with every
    /// instantiated subtype of their declared types). May be called again
    /// after a solve completed — the monotone-resume invariant (module docs)
    /// guarantees re-solving then reaches the same fixpoint as a fresh
    /// analysis over the union of all roots.
    pub(crate) fn add_roots(&mut self, roots: &[MethodId]) {
        for &m in roots {
            self.make_root(m);
        }
        self.sync_queued();
    }

    /// Runs the configured solver until the current worklist is drained.
    pub(crate) fn run_solver(&mut self) {
        match self.config.solver {
            SolverKind::Sequential => self.solve_sequential(),
            SolverKind::Parallel { threads } => self.solve_parallel(threads.max(1)),
            SolverKind::Reference => self.solve_reference(),
        }
    }

    /// Worklist steps executed so far (cumulative across solves).
    pub(crate) fn steps(&self) -> u64 {
        self.steps
    }

    /// The live PVPG.
    pub(crate) fn graph(&self) -> &Pvpg {
        &self.g
    }

    /// The configuration the engine runs under.
    pub(crate) fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// The instantiated-types bitset.
    pub(crate) fn instantiated_bits(&self) -> &BitSet {
        &self.instantiated
    }

    /// A sorted copy of the current reachable set (for session snapshots).
    pub(crate) fn reachable_set(&self) -> ReachableSet {
        ReachableSet::from_discovery(self.reachable.clone(), self.reachable_order.clone())
    }

    /// The current solver statistics.
    pub(crate) fn stats_snapshot(&self, duration: Duration, solves: u64) -> SolveStats {
        let (use_edges, pred_edges, obs_edges) = self.g.edge_counts();
        SolveStats {
            steps: self.steps,
            state_joins: self.state_joins,
            flows: self.g.flow_count(),
            use_edges,
            pred_edges,
            obs_edges,
            solves,
            scheduler: self.sched_stats.clone(),
            duration,
        }
    }

    fn sync_queued(&mut self) {
        let n = self.g.flow_count();
        if self.queued.len() < n {
            let grown = n - self.queued.len();
            self.queued.resize(n, false);
            self.note_structural(grown);
        }
    }

    fn enqueue(&mut self, f: FlowId) {
        if !self.queued[f.index()] {
            self.queued[f.index()] = true;
            self.worklist.push(f);
        }
    }

    /// Creates an injection source for `declared` feeding `target`.
    fn inject(&mut self, target: FlowId, declared: TypeRef) {
        let rs = self.g.add_root_source(declared);
        self.sync_queued();
        self.add_use_edge(rs, target);
        match declared {
            TypeRef::Prim | TypeRef::Void => {
                self.join_in(rs, &ValueState::Any);
            }
            TypeRef::Object(bound) => {
                self.subscribe(bound, rs);
            }
        }
    }

    /// Registers `target` to receive every instantiated subtype of `bound`,
    /// past and future.
    fn subscribe(&mut self, bound: TypeId, target: FlowId) {
        let mut existing = TypeSet::new();
        for t in self.program.subtypes(bound).iter() {
            if self.instantiated.contains(t) {
                existing.insert(TypeId::from_index(t));
            }
        }
        if !existing.is_empty() {
            let state = ValueState::Types(existing);
            self.join_in(target, &state);
        }
        self.type_subscribers.push((bound, target));
    }

    /// Joins `state` into `target`'s input, accumulating the new information
    /// into `target`'s pending delta, and queues the flow on change.
    ///
    /// Disabled flows accumulate without being queued: dequeuing them would
    /// be a no-op, and [`Engine::enable`] queues the flow when its predicate
    /// fires, at which point the accumulated delta is drained normally.
    fn join_in(&mut self, target: FlowId, state: &ValueState) {
        let sat = self.config.saturation_threshold;
        let flow = self.g.flow_mut(target);
        if flow.in_state.join_tracking(state, &mut flow.delta) {
            if let (Some(k), ValueState::Types(s)) = (sat, &flow.in_state) {
                if s.len() > k {
                    // Saturation (Wimmer et al. [60]): the widening is new
                    // information — the pending delta widens with the state.
                    flow.in_state = ValueState::Any;
                    flow.delta = ValueState::Any;
                }
            }
            self.state_joins += 1;
            if flow.enabled {
                self.enqueue(target);
            }
        }
    }

    /// Marks `m` reachable, building its PVPG fragment on first contact.
    fn make_reachable(&mut self, m: MethodId) {
        if !self.reachable.insert(m.index()) {
            return;
        }
        self.reachable_order.push(m);
        if self.program.method(m).body.is_none() {
            return; // abstract targets are never resolved to, but be safe
        }
        let out: BuildOutput = build_method_graph(&mut self.g, self.program, &self.config, m);
        self.sync_queued();
        if self.config.predicates {
            for f in out.enables.clone() {
                self.enable(f);
            }
        } else {
            // Baseline: every flow is enabled at creation.
            for i in out.first_flow..self.g.flow_count() {
                self.enable(FlowId::from_index(i));
            }
        }
        for (s, t) in &out.pushes {
            // Seed defaults for field sinks created during construction
            // (static-field accesses wire their sink at build time).
            for end in [*s, *t] {
                if let FlowKind::FieldSink { field } = self.g.flow(end).kind {
                    self.field_sink(field);
                }
            }
            self.push_state(*s, *t);
        }
        for (ty, f) in &out.catch_subscribers {
            self.subscribe(*ty, *f);
        }
        self.g.methods.insert(m, out.graph);
    }

    /// Marks `m` as a root: reachable, with parameters injected per the
    /// reflection policy (paper §5).
    fn make_root(&mut self, m: MethodId) {
        self.make_reachable(m);
        let Some(graph) = self.g.methods.get(&m) else { return };
        let params = graph.params.clone();
        let md = self.program.method(m);
        for (i, p) in params.iter().enumerate() {
            let declared = md.param_type(i);
            self.inject(*p, declared);
        }
    }

    /// Enables a flow (the Predicate rule's conclusion), evaluating source
    /// kinds (the Source rule) and firing enable-time actions.
    fn enable(&mut self, f: FlowId) {
        if self.g.flow(f).enabled {
            return;
        }
        self.g.flow_mut(f).enabled = true;
        match self.g.flow(f).kind.clone() {
            FlowKind::Const(n) => {
                let v = if self.config.primitives {
                    ValueState::Const(n)
                } else {
                    ValueState::Any
                };
                self.join_in(f, &v);
            }
            FlowKind::AnyPrim => {
                self.join_in(f, &ValueState::Any);
            }
            FlowKind::NullSource => {
                self.join_in(f, &ValueState::null());
            }
            FlowKind::PhiPred => {
                // φ_pred joins predicates, not values: once any incoming
                // predicate enables it, it carries an artificial token so its
                // own predicate successors fire (paper §3 "Joining Values
                // using φ Flows": the code after a join is executable iff the
                // end of any of its predecessors is).
                self.join_in(f, &ValueState::Const(1));
            }
            FlowKind::New(t) => {
                self.join_in(f, &ValueState::of_type(t));
                self.instantiate(t);
            }
            FlowKind::InvokeStatic { site } => {
                let target = self.g.site(site).static_target.expect("static site");
                self.link(site, target);
            }
            FlowKind::Invoke { .. } | FlowKind::Load { .. } | FlowKind::Store { .. } => {
                self.handle_receiver_update(f);
            }
            _ => {}
        }
        self.enqueue(f);
    }

    /// Records a newly instantiated type and notifies subscribers and
    /// saturated dispatch sites. Both lists are iterated by index — they can
    /// grow behind the cursor (a dispatch can reach code that subscribes or
    /// saturates), and late entries handle already-instantiated types
    /// themselves — so nothing is cloned.
    fn instantiate(&mut self, t: TypeId) {
        if !self.instantiated.insert(t.index()) {
            return;
        }
        self.instantiated_order.push(t);
        let state = ValueState::of_type(t);
        let mut i = 0;
        while i < self.type_subscribers.len() {
            let (bound, target) = self.type_subscribers[i];
            if self.program.is_subtype(t, bound) {
                self.join_in(target, &state);
            }
            i += 1;
        }
        let mut i = 0;
        while i < self.saturated_sites.len() {
            let site = self.saturated_sites[i];
            self.dispatch_type(site, t);
            i += 1;
        }
    }

    /// One worklist step (sequential solver): drain the flow's pending
    /// delta, filter it through the flow kind, and propagate what is new.
    fn process(&mut self, f: FlowId) {
        self.steps += 1;
        if self.in_cycle.get(f.index()).copied().unwrap_or(false) {
            self.sched_stats.steps_in_cycles += 1;
        }
        if let Some(max) = self.config.max_steps {
            assert!(self.steps <= max, "analysis exceeded max_steps = {max}");
        }
        if !self.g.flow(f).enabled {
            // Disabled flows keep accumulating their delta until enabled.
            return;
        }
        let delta = self.g.flow_mut(f).delta.take();
        let out_new = match &self.g.flow(f).kind {
            // Non-distributive / source kinds: recompute from the full
            // input (see the module docs for why CmpFilter cannot use the
            // delta). No early exit on an empty delta — these are also
            // re-enqueued by observer notifications without new input.
            FlowKind::CmpFilter { .. } | FlowKind::CatchAll { .. } | FlowKind::PredOn => {
                self.compute_out(f)
            }
            FlowKind::TypeFilter { ty, negated } => {
                if delta.is_empty() {
                    return;
                }
                filter_typecheck_owned(self.program, delta, *ty, *negated)
            }
            FlowKind::Param { declared, .. } if self.config.declared_type_filtering => {
                if delta.is_empty() {
                    return;
                }
                declared_filter_owned(self.program, delta, *declared)
            }
            // Plain pass-throughs move the delta, clone-free.
            _ => {
                if delta.is_empty() {
                    return;
                }
                delta
            }
        };
        self.apply_out(f, out_new);
    }

    /// Full-input output computation (the TypeCheck / Cond / PassThrough
    /// rules): used by the non-distributive kinds, the parallel solver's
    /// phase A, and the reference solver.
    fn compute_out(&self, f: FlowId) -> ValueState {
        let flow = self.g.flow(f);
        match &flow.kind {
            FlowKind::TypeFilter { ty, negated } => {
                filter_typecheck(self.program, &flow.in_state, *ty, *negated)
            }
            FlowKind::CatchAll { ty } => {
                let mut out = filter_typecheck(self.program, &flow.in_state, *ty, false);
                // Handlers may observe null under the coarse exception model
                // (the reference interpreter yields null when no matching
                // exception was thrown); keeping null here makes the two
                // agree and is conservative.
                out.join(&ValueState::null());
                out
            }
            FlowKind::CmpFilter { op, other } => {
                let vr = &self.g.flow(*other).out_state;
                compare(*op, &flow.in_state, vr)
            }
            FlowKind::Param { declared, .. } if self.config.declared_type_filtering => {
                declared_filter(self.program, &flow.in_state, *declared)
            }
            FlowKind::PredOn => ValueState::Const(1),
            _ => flow.in_state.clone(),
        }
    }

    /// Joins a step's output into `out_state`, tracking what is new, and
    /// propagates exactly that along use, predicate, and observe edges.
    /// Clone-free: successor lists are walked through CSR cursors and the
    /// propagated state is a local delta.
    fn apply_out(&mut self, f: FlowId, out_new: ValueState) {
        let sat = self.config.saturation_threshold;
        let mut prop = ValueState::Empty;
        let changed = {
            let flow = self.g.flow_mut(f);
            let changed = flow.out_state.join_tracking_owned(out_new, &mut prop);
            if changed {
                if let (Some(k), ValueState::Types(s)) = (sat, &flow.out_state) {
                    if s.len() > k {
                        flow.out_state = ValueState::Any;
                        prop = ValueState::Any;
                    }
                }
            }
            changed
        };
        if !changed {
            return;
        }
        let mut cur = self.g.uses.cursor(f);
        while let Some(t) = self.g.uses.next(&mut cur) {
            self.join_in(t, &prop);
        }
        if self.g.flow(f).out_state.is_non_empty() {
            let mut cur = self.g.preds.cursor(f);
            while let Some(t) = self.g.preds.next(&mut cur) {
                self.enable(t);
            }
        }
        let mut cur = self.g.observes.cursor(f);
        while let Some(t) = self.g.observes.next(&mut cur) {
            self.notify_observer(t);
        }
    }

    /// Observer notification: comparisons re-filter; receivers of loads,
    /// stores, and invokes trigger field wiring / method linking.
    fn notify_observer(&mut self, o: FlowId) {
        match self.g.flow(o).kind {
            FlowKind::CmpFilter { .. } => self.enqueue(o),
            FlowKind::Invoke { .. } | FlowKind::Load { .. } | FlowKind::Store { .. } => {
                self.handle_receiver_update(o)
            }
            _ => {}
        }
    }

    /// Load / Store / Invoke rules: react to the receiver's current value
    /// state (requires the acting flow to be enabled).
    fn handle_receiver_update(&mut self, f: FlowId) {
        if !self.g.flow(f).enabled {
            return;
        }
        match self.g.flow(f).kind.clone() {
            FlowKind::Invoke { site } => {
                let recv = self.g.site(site).receiver.expect("virtual site has receiver");
                match self.g.flow(recv).out_state.clone() {
                    ValueState::Types(s) => {
                        for t in s.iter() {
                            self.dispatch_type(site, t);
                        }
                    }
                    ValueState::Any
                        // Saturated receiver: dispatch over every
                        // instantiated type, now and in the future. The
                        // order list is walked by index — it can grow while
                        // dispatching (a callee can instantiate), and
                        // `instantiate` forwards late arrivals to this site.
                        if !self.saturated_set.contains(site.index()) => {
                            self.saturated_set.insert(site.index());
                            self.saturated_sites.push(site);
                            let mut i = 0;
                            while i < self.instantiated_order.len() {
                                let t = self.instantiated_order[i];
                                self.dispatch_type(site, t);
                                i += 1;
                            }
                        }
                    _ => {}
                }
            }
            FlowKind::Load { field, receiver }
                if self.receiver_reaches_field(receiver, field) => {
                    let sink = self.field_sink(field);
                    if self.add_use_edge(sink, f) {
                        self.push_state(sink, f);
                    }
                }
            FlowKind::Store { field, receiver }
                if self.receiver_reaches_field(receiver, field) => {
                    let sink = self.field_sink(field);
                    if self.add_use_edge(f, sink) {
                        self.push_state(f, sink);
                    }
                }
            _ => {}
        }
    }

    /// The Load/Store rules' premise `t ∈ VSout(r), LookUp(t, x)` — whether
    /// some receiver type declares/inherits the field. One flow exists per
    /// field declaration, so a single positive answer wires the access.
    fn receiver_reaches_field(&self, receiver: Option<FlowId>, field: skipflow_ir::FieldId) -> bool {
        let Some(recv) = receiver else {
            return false; // static accesses are wired at construction
        };
        match &self.g.flow(recv).out_state {
            ValueState::Types(s) => s
                .iter()
                .any(|t| self.program.lookup_field(t, field).is_some()),
            // Saturated receiver: connect conservatively.
            ValueState::Any => true,
            _ => false,
        }
    }

    /// Virtual dispatch for one receiver type at one site (the Invoke rule).
    fn dispatch_type(&mut self, site: SiteId, t: TypeId) {
        if t.is_null() {
            return;
        }
        {
            let s = self.g.site_mut(site);
            if !s.seen_receiver_types.insert(t.index()) {
                return;
            }
        }
        let selector = self.g.site(site).selector.expect("virtual site");
        if let Some(target) = self.program.resolve(t, selector) {
            self.link(site, target);
        }
    }

    /// Links a call site to a resolved target: marks the target reachable and
    /// wires arguments to parameters and the callee return to the invoke flow
    /// (the Invoke rule's conclusion).
    fn link(&mut self, site: SiteId, target: MethodId) {
        {
            let s = self.g.site_mut(site);
            if !s.linked_set.insert(target.index()) {
                return;
            }
            s.linked.push(target);
        }
        if self.program.method(target).is_abstract {
            return;
        }
        self.make_reachable(target);
        let (args, invoke_flow) = {
            let s = self.g.site(site);
            (s.args.clone(), s.flow)
        };
        let Some(callee) = self.g.methods.get(&target) else { return };
        let params = callee.params.clone();
        let ret = callee.ret;
        for (a, p) in args.iter().zip(params.iter()) {
            if self.add_use_edge(*a, *p) {
                self.push_state(*a, *p);
            }
        }
        if let Some(r) = ret {
            if self.add_use_edge(r, invoke_flow) {
                self.push_state(r, invoke_flow);
            }
        }
    }

    /// Pushes `s`'s current output into `t`'s input, respecting the
    /// only-enabled-flows-propagate rule. Used when an edge is added after
    /// its source already carries state (not on the steady-state step path).
    fn push_state(&mut self, s: FlowId, t: FlowId) {
        let src = self.g.flow(s);
        if src.enabled && src.out_state.is_non_empty() {
            let out = src.out_state.clone();
            self.join_in(t, &out);
        }
    }

    // ---- solvers ----------------------------------------------------------

    pub(crate) fn solve_sequential(&mut self) {
        // Initial condensation over the sealed root fragments (a no-op for
        // FIFO); later recomputes are batched behind the dirty counter.
        self.recompute_sccs();
        loop {
            self.maybe_recompute();
            let next = match &mut self.worklist {
                Worklist::Fifo(q) => q.pop_front(),
                Worklist::Scc(q) => q.pop(),
            };
            let Some(f) = next else { break };
            self.queued[f.index()] = false;
            self.process(f);
        }
    }

    /// Deterministic bulk-synchronous parallel solver: each round computes
    /// the prospective delta outputs of the queued flows in parallel (phase
    /// A, a pure function of the current states), then applies them in
    /// queue order (phase B). The final fixpoint is bit-identical to the
    /// sequential solver's: all joins are monotone and every propagated
    /// delta is part of the corresponding full state, so both orders
    /// converge to the same least fixpoint.
    ///
    /// Under the SCC scheduler a round's batch is one whole SCC bucket (the
    /// lowest-priority one), so the local-fixpoint-before-successor order
    /// holds round-granularly; under FIFO a round drains the entire
    /// worklist (the PR 1 behaviour).
    pub(crate) fn solve_parallel(&mut self, threads: usize) {
        self.recompute_sccs();
        loop {
            self.maybe_recompute();
            let batch: Vec<FlowId> = match &mut self.worklist {
                Worklist::Fifo(q) => q.drain(..).collect(),
                Worklist::Scc(q) => q.pop_bucket(),
            };
            if batch.is_empty() {
                break;
            }
            for f in &batch {
                self.queued[f.index()] = false;
            }
            // Phase A: compute prospective delta outputs in parallel
            // (read-only).
            type StepOut = (FlowId, ValueState, Option<ValueState>);
            let outputs: Vec<StepOut> = if threads <= 1 || batch.len() < 64 {
                batch
                    .iter()
                    .filter_map(|f| self.compute_step(*f))
                    .collect()
            } else {
                let chunk = batch.len().div_ceil(threads);
                let engine = &*self;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = batch
                        .chunks(chunk)
                        .map(|flows| {
                            scope.spawn(move || {
                                flows
                                    .iter()
                                    .filter_map(|f| engine.compute_step(*f))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
                })
            };
            // Phase B: apply sequentially in batch order. Each flow's delta
            // is reduced by exactly the part phase A consumed — input that
            // arrived *during* phase B (from applying earlier flows) stays
            // pending and re-queues the flow for the next round.
            for (f, out_new, consumed) in outputs {
                self.steps += 1;
                if self.in_cycle.get(f.index()).copied().unwrap_or(false) {
                    self.sched_stats.steps_in_cycles += 1;
                }
                if let Some(max) = self.config.max_steps {
                    assert!(self.steps <= max, "analysis exceeded max_steps = {max}");
                }
                // `consumed` is `None` for pass-through kinds, whose output
                // *is* the consumed delta.
                self.g
                    .flow_mut(f)
                    .delta
                    .remove(consumed.as_ref().unwrap_or(&out_new));
                self.apply_out(f, out_new);
            }
        }
    }

    /// Phase A of the parallel solver: what [`Engine::process`] would
    /// produce for `f`, read-only. Returns `(flow, prospective output,
    /// consumed delta)`, or `None` when the step would be a no-op. The
    /// consumed delta is `None` for pass-through kinds, where the output
    /// itself is the consumed delta (avoids a redundant clone).
    fn compute_step(&self, f: FlowId) -> Option<(FlowId, ValueState, Option<ValueState>)> {
        let flow = self.g.flow(f);
        if !flow.enabled {
            return None;
        }
        let out_new = match &flow.kind {
            FlowKind::CmpFilter { .. } | FlowKind::CatchAll { .. } | FlowKind::PredOn => {
                self.compute_out(f)
            }
            FlowKind::TypeFilter { ty, negated } => {
                if flow.delta.is_empty() {
                    return None;
                }
                filter_typecheck(self.program, &flow.delta, *ty, *negated)
            }
            FlowKind::Param { declared, .. } if self.config.declared_type_filtering => {
                if flow.delta.is_empty() {
                    return None;
                }
                declared_filter(self.program, &flow.delta, *declared)
            }
            _ => {
                if flow.delta.is_empty() {
                    return None;
                }
                return Some((f, flow.delta.clone(), None));
            }
        };
        Some((f, out_new, Some(flow.delta.clone())))
    }

    /// The full-join reference loop: recomputes each dequeued flow's output
    /// from its entire input and re-joins the entire output into every
    /// successor. Kept as the differential-testing oracle and the perf
    /// baseline the trajectory harness compares against.
    pub(crate) fn solve_reference(&mut self) {
        // [`Engine::new`] forces the FIFO worklist for the reference solver.
        let Worklist::Fifo(_) = &self.worklist else {
            unreachable!("reference solver always runs FIFO");
        };
        loop {
            let Worklist::Fifo(q) = &mut self.worklist else { unreachable!() };
            let Some(f) = q.pop_front() else { break };
            self.queued[f.index()] = false;
            self.process_reference(f);
        }
    }

    /// One full-join step (reference solver only).
    fn process_reference(&mut self, f: FlowId) {
        self.steps += 1;
        if let Some(max) = self.config.max_steps {
            assert!(self.steps <= max, "analysis exceeded max_steps = {max}");
        }
        if !self.g.flow(f).enabled {
            return;
        }
        // The reference solver propagates full states; the delta bookkeeping
        // is drained so the invariant `delta ⊑ in_state` stays meaningful.
        let _ = self.g.flow_mut(f).delta.take();
        let new_out = self.compute_out(f);
        let sat = self.config.saturation_threshold;
        let changed = {
            let flow = self.g.flow_mut(f);
            let changed = flow.out_state.join(&new_out);
            if changed {
                maybe_saturate(&mut flow.out_state, sat);
            }
            changed
        };
        if !changed {
            return;
        }
        let out = self.g.flow(f).out_state.clone();
        let mut cur = self.g.uses.cursor(f);
        while let Some(t) = self.g.uses.next(&mut cur) {
            self.join_in(t, &out);
        }
        if out.is_non_empty() {
            let mut cur = self.g.preds.cursor(f);
            while let Some(t) = self.g.preds.next(&mut cur) {
                self.enable(t);
            }
        }
        let mut cur = self.g.observes.cursor(f);
        while let Some(t) = self.g.observes.next(&mut cur) {
            self.notify_observer(t);
        }
    }

    /// Consumes the engine into an owned [`AnalysisResult`] (zero-copy: the
    /// PVPG moves out).
    pub(crate) fn finish(self, elapsed: Duration, solves: u64) -> AnalysisResult {
        let stats = self.stats_snapshot(elapsed, solves);
        AnalysisResult::new(
            self.g,
            ReachableSet::from_discovery(self.reachable, self.reachable_order),
            self.instantiated,
            self.config,
            stats,
        )
    }
}

/// The TypeCheck rule: keep (or remove, negated) subtypes of `ty`.
/// `instanceof` is false for `null`, so the positive filter drops it and the
/// negative filter keeps it.
fn filter_typecheck(
    program: &Program,
    input: &ValueState,
    ty: TypeId,
    negated: bool,
) -> ValueState {
    match input {
        ValueState::Empty => ValueState::Empty,
        // Type tests on primitives are ill-typed; nothing flows.
        ValueState::Const(_) => ValueState::Empty,
        // A saturated object state cannot be narrowed without re-expanding
        // it; Any is the sound over-approximation (only reachable when
        // saturation is configured).
        ValueState::Any => ValueState::Any,
        ValueState::Types(s) => {
            let mask = program.subtypes(ty);
            let filtered = if negated {
                s.difference_mask(mask)
            } else {
                s.intersect_mask(mask, false)
            };
            ValueState::from_types(filtered)
        }
    }
}

/// [`filter_typecheck`] over an owned input (a drained delta): the same
/// filter, with the pass-through cases moved instead of cloned.
fn filter_typecheck_owned(
    program: &Program,
    input: ValueState,
    ty: TypeId,
    negated: bool,
) -> ValueState {
    match input {
        ValueState::Empty | ValueState::Const(_) => ValueState::Empty,
        ValueState::Any => ValueState::Any,
        ValueState::Types(s) => {
            let mask = program.subtypes(ty);
            let filtered = if negated {
                s.difference_mask(mask)
            } else {
                s.intersect_mask(mask, false)
            };
            ValueState::from_types(filtered)
        }
    }
}

/// Declared-type filtering for parameters: object parameters admit subtypes
/// of the declared type plus `null`; primitive parameters admit everything.
fn declared_filter(program: &Program, input: &ValueState, declared: TypeRef) -> ValueState {
    match (input, declared) {
        (ValueState::Types(s), TypeRef::Object(t)) => {
            ValueState::from_types(s.intersect_mask(program.subtypes(t), true))
        }
        _ => input.clone(),
    }
}

/// [`declared_filter`] over an owned input (a drained delta).
fn declared_filter_owned(program: &Program, input: ValueState, declared: TypeRef) -> ValueState {
    match (input, declared) {
        (ValueState::Types(s), TypeRef::Object(t)) => {
            ValueState::from_types(s.intersect_mask(program.subtypes(t), true))
        }
        (other, _) => other,
    }
}

/// Saturation (Wimmer et al. [60]): widen oversized type sets to `Any`.
fn maybe_saturate(state: &mut ValueState, threshold: Option<usize>) {
    if let (Some(k), ValueState::Types(s)) = (threshold, &*state) {
        if s.len() > k {
            *state = ValueState::Any;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::TypeSet;
    use skipflow_ir::ProgramBuilder;

    /// Object <- Animal <- Dog; Cat extends Animal.
    fn hierarchy() -> (Program, TypeId, TypeId, TypeId) {
        let mut pb = ProgramBuilder::new();
        let animal = pb.add_class("Animal");
        let dog = pb.class("Dog").extends(animal).build();
        let cat = pb.class("Cat").extends(animal).build();
        let m = pb.method(animal, "noop").static_().returns(TypeRef::Void).build();
        pb.set_trivial_body(m, None);
        (pb.finish().unwrap(), animal, dog, cat)
    }

    fn types_of(ids: &[TypeId]) -> ValueState {
        ValueState::Types(ids.iter().copied().collect::<TypeSet>())
    }

    #[test]
    fn typecheck_filter_keeps_subtypes_and_drops_null() {
        let (p, animal, dog, cat) = hierarchy();
        let mut input = TypeSet::null_only();
        input.insert(dog);
        input.insert(cat);
        let input = ValueState::Types(input);

        // instanceof Dog: only Dog survives; null is filtered (instanceof is
        // false for null).
        let out = filter_typecheck(&p, &input, dog, false);
        assert_eq!(out, types_of(&[dog]));

        // !instanceof Dog: Cat and null survive.
        let out = filter_typecheck(&p, &input, dog, true);
        let s = out.types().unwrap();
        assert!(s.contains(cat) && s.contains_null() && !s.contains(dog));

        // instanceof Animal admits both subclasses.
        let out = filter_typecheck(&p, &input, animal, false);
        assert_eq!(out, types_of(&[dog, cat]));

        // The owned (delta) variant agrees everywhere.
        for (ty, negated) in [(dog, false), (dog, true), (animal, false)] {
            assert_eq!(
                filter_typecheck(&p, &input, ty, negated),
                filter_typecheck_owned(&p, input.clone(), ty, negated)
            );
        }
    }

    #[test]
    fn typecheck_filter_edge_cases() {
        let (p, _, dog, _) = hierarchy();
        assert_eq!(filter_typecheck(&p, &ValueState::Empty, dog, false), ValueState::Empty);
        // Primitives never pass a type test (ill-typed).
        assert_eq!(filter_typecheck(&p, &ValueState::Const(3), dog, false), ValueState::Empty);
        // Saturated input stays saturated (sound over-approximation).
        assert_eq!(filter_typecheck(&p, &ValueState::Any, dog, false), ValueState::Any);
        // Filtering to nothing normalizes to Empty.
        let only_null = ValueState::null();
        assert_eq!(filter_typecheck(&p, &only_null, dog, false), ValueState::Empty);
        for input in [ValueState::Empty, ValueState::Const(3), ValueState::Any, only_null] {
            assert_eq!(
                filter_typecheck(&p, &input, dog, false),
                filter_typecheck_owned(&p, input, dog, false)
            );
        }
    }

    #[test]
    fn declared_filter_keeps_null_but_drops_foreign_types() {
        let (p, animal, dog, cat) = hierarchy();
        let mut input = TypeSet::null_only();
        input.insert(dog);
        input.insert(cat);
        let input = ValueState::Types(input);

        // Declared Dog: null stays (a reference parameter may be null).
        let out = declared_filter(&p, &input, TypeRef::Object(dog));
        let s = out.types().unwrap();
        assert!(s.contains(dog) && s.contains_null() && !s.contains(cat));

        // Declared Animal keeps everything.
        let out = declared_filter(&p, &input, TypeRef::Object(animal));
        assert_eq!(out.types().unwrap().len(), 3);

        // Primitive declarations pass anything through.
        assert_eq!(declared_filter(&p, &ValueState::Const(7), TypeRef::Prim), ValueState::Const(7));
        assert_eq!(declared_filter(&p, &input, TypeRef::Prim), input);

        // The owned (delta) variant agrees everywhere.
        for declared in [TypeRef::Object(dog), TypeRef::Object(animal), TypeRef::Prim] {
            assert_eq!(
                declared_filter(&p, &input, declared),
                declared_filter_owned(&p, input.clone(), declared)
            );
        }
    }

    #[test]
    fn scc_queue_orders_buckets_and_adopts_current_priority() {
        let mut q = SccQueue::new();
        // Flows 0 and 2 share priority 1; flow 1 is the upstream SCC.
        let migrated = q.apply(vec![1, 0, 1], 2);
        assert_eq!(migrated, 0);
        q.push(FlowId::from_index(0));
        q.push(FlowId::from_index(1));
        q.push(FlowId::from_index(2));
        // Lowest priority first, FIFO within a bucket.
        assert_eq!(q.pop(), Some(FlowId::from_index(1)));
        assert_eq!(q.pop(), Some(FlowId::from_index(0)));
        assert_eq!(q.pop(), Some(FlowId::from_index(2)));
        assert_eq!(q.pop(), None);
        // Flows newer than the priority table adopt the drained bucket.
        q.push(FlowId::from_index(7));
        assert_eq!(q.pop(), Some(FlowId::from_index(7)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn scc_queue_pop_bucket_drains_one_scc() {
        let mut q = SccQueue::new();
        q.apply(vec![0, 1, 0], 2);
        q.push(FlowId::from_index(1));
        q.push(FlowId::from_index(0));
        q.push(FlowId::from_index(2));
        // The whole priority-0 bucket comes out as one batch, then the rest.
        assert_eq!(
            q.pop_bucket(),
            vec![FlowId::from_index(0), FlowId::from_index(2)]
        );
        assert_eq!(q.pop_bucket(), vec![FlowId::from_index(1)]);
        assert!(q.pop_bucket().is_empty());
    }

    #[test]
    fn scc_queue_rebucket_migrates_queued_flows() {
        let mut q = SccQueue::new();
        q.push(FlowId::from_index(0));
        q.push(FlowId::from_index(1));
        // A recompute reverses the priorities; both queued flows migrate.
        let migrated = q.apply(vec![1, 0], 2);
        assert_eq!(migrated, 2);
        assert_eq!(q.pop(), Some(FlowId::from_index(1)));
        assert_eq!(q.pop(), Some(FlowId::from_index(0)));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "resident in two priority buckets")]
    fn scc_queue_rejects_duplicate_residency() {
        let mut q = SccQueue::new();
        q.push(FlowId::from_index(0));
        q.push(FlowId::from_index(0));
    }

    #[test]
    fn saturation_widens_only_above_threshold() {
        let (_, animal, dog, cat) = hierarchy();
        let mut s = types_of(&[animal, dog, cat]);
        maybe_saturate(&mut s, None);
        assert!(matches!(s, ValueState::Types(_)), "no threshold, no widening");
        maybe_saturate(&mut s, Some(3));
        assert!(matches!(s, ValueState::Types(_)), "at the threshold, keep");
        maybe_saturate(&mut s, Some(2));
        assert_eq!(s, ValueState::Any, "above the threshold, widen");
        // Primitives are never saturated.
        let mut c = ValueState::Const(1);
        maybe_saturate(&mut c, Some(0));
        assert_eq!(c, ValueState::Const(1));
    }
}
