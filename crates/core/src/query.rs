//! The unified call-graph query interface.
//!
//! Every analysis in the precision ladder — CHA, RTA, the PTA baseline, and
//! SkipFlow itself — produces *some* call graph. [`CallGraphQuery`] is the
//! one interface they all answer: reachable-set membership and size, edge
//! and PolyCalls counts, and refinement comparison. The SkipFlow engine's
//! [`AnalysisResult`]/[`AnalysisSnapshot`] implement it here; the
//! `skipflow-baselines` crate implements it for its `CallGraph`, so ladder
//! comparisons (`SkipFlow ⊆ PTA ⊆ RTA ⊆ CHA`) and reporting tools can be
//! written once against `&dyn CallGraphQuery` / `impl CallGraphQuery`.

use crate::interrupt::Completeness;
use crate::report::{AnalysisResult, AnalysisSnapshot, OwnedSnapshot};
use skipflow_ir::MethodId;

/// Queries over a computed call graph, implemented by every analysis in the
/// precision ladder.
pub trait CallGraphQuery {
    /// Whether the answers describe a reached fixpoint
    /// ([`Completeness::Complete`], the default — CHA/RTA/PTA always run to
    /// completion) or the checkpoint of an interrupted solve
    /// ([`Completeness::Partial`]): a sound under-approximation where every
    /// reported method/edge is real but more may be discovered by resuming.
    /// Refinement comparisons against a partial graph are only meaningful
    /// in the `partial ⊆ complete` direction.
    fn completeness(&self) -> Completeness {
        Completeness::Complete
    }

    /// Whether `m` is reachable from the roots.
    fn is_reachable(&self, m: MethodId) -> bool;

    /// Number of reachable methods.
    fn reachable_count(&self) -> usize;

    /// The reachable methods in ascending id order.
    fn reachable_ids(&self) -> Vec<MethodId>;

    /// Total call edges discovered (one per `(site, target)` pair).
    fn call_edge_count(&self) -> usize;

    /// Virtual call sites with two or more targets (the PolyCalls metric).
    fn poly_call_count(&self) -> usize;

    /// Whether this analysis is at least as precise as `coarser` on
    /// reachability: every method `self` reaches, `coarser` reaches too
    /// (`R_self ⊆ R_coarser`). This is the precision-ladder relation —
    /// `skipflow.refines(&pta)`, `pta.refines(&rta)`, `rta.refines(&cha)`.
    fn refines(&self, coarser: &dyn CallGraphQuery) -> bool {
        self.reachable_ids().iter().all(|&m| coarser.is_reachable(m))
    }

    /// The reachability difference between two analyses: methods only this
    /// one reaches, methods only the other reaches, and the common count.
    fn reachable_delta(&self, other: &dyn CallGraphQuery) -> CallGraphDelta {
        let mut delta = CallGraphDelta::default();
        for m in self.reachable_ids() {
            if other.is_reachable(m) {
                delta.common += 1;
            } else {
                delta.only_in_self.push(m);
            }
        }
        for m in other.reachable_ids() {
            if !self.is_reachable(m) {
                delta.only_in_other.push(m);
            }
        }
        delta
    }
}

/// The reachability difference computed by
/// [`CallGraphQuery::reachable_delta`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CallGraphDelta {
    /// Methods reachable for `self` but not for `other` (ascending ids).
    pub only_in_self: Vec<MethodId>,
    /// Methods reachable for `other` but not for `self` (ascending ids).
    pub only_in_other: Vec<MethodId>,
    /// Methods both analyses reach.
    pub common: usize,
}

impl CallGraphDelta {
    /// Whether both analyses reach exactly the same methods.
    pub fn is_identical(&self) -> bool {
        self.only_in_self.is_empty() && self.only_in_other.is_empty()
    }
}

impl CallGraphQuery for AnalysisSnapshot<'_> {
    fn completeness(&self) -> Completeness {
        AnalysisSnapshot::completeness(self)
    }

    fn is_reachable(&self, m: MethodId) -> bool {
        AnalysisSnapshot::is_reachable(self, m)
    }

    fn reachable_count(&self) -> usize {
        self.reachable_methods().len()
    }

    fn reachable_ids(&self) -> Vec<MethodId> {
        self.reachable_methods().as_slice().to_vec()
    }

    fn call_edge_count(&self) -> usize {
        self.call_graph_edges().len()
    }

    fn poly_call_count(&self) -> usize {
        self.poly_call_sites()
    }
}

impl CallGraphQuery for AnalysisResult {
    fn completeness(&self) -> Completeness {
        AnalysisResult::completeness(self)
    }

    fn is_reachable(&self, m: MethodId) -> bool {
        AnalysisResult::is_reachable(self, m)
    }

    fn reachable_count(&self) -> usize {
        self.reachable_methods().len()
    }

    fn reachable_ids(&self) -> Vec<MethodId> {
        self.reachable_methods().as_slice().to_vec()
    }

    fn call_edge_count(&self) -> usize {
        self.snapshot().call_graph_edges().len()
    }

    fn poly_call_count(&self) -> usize {
        self.snapshot().poly_call_sites()
    }
}

impl CallGraphQuery for OwnedSnapshot {
    fn completeness(&self) -> Completeness {
        OwnedSnapshot::completeness(self)
    }

    fn is_reachable(&self, m: MethodId) -> bool {
        self.result().is_reachable(m)
    }

    fn reachable_count(&self) -> usize {
        self.reachable_methods().len()
    }

    fn reachable_ids(&self) -> Vec<MethodId> {
        self.reachable_methods().as_slice().to_vec()
    }

    fn call_edge_count(&self) -> usize {
        self.view().call_graph_edges().len()
    }

    fn poly_call_count(&self) -> usize {
        self.view().poly_call_sites()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal stand-in so the default methods are testable without an
    /// engine run.
    struct Fixed(Vec<usize>);

    impl CallGraphQuery for Fixed {
        fn is_reachable(&self, m: MethodId) -> bool {
            self.0.contains(&m.index())
        }
        fn reachable_count(&self) -> usize {
            self.0.len()
        }
        fn reachable_ids(&self) -> Vec<MethodId> {
            self.0.iter().map(|&i| MethodId::from_index(i)).collect()
        }
        fn call_edge_count(&self) -> usize {
            0
        }
        fn poly_call_count(&self) -> usize {
            0
        }
    }

    #[test]
    fn refines_is_subset_on_reachable_sets() {
        let fine = Fixed(vec![1, 2]);
        let coarse = Fixed(vec![1, 2, 3]);
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
        assert!(fine.refines(&fine), "refinement is reflexive");
    }

    #[test]
    fn reachable_delta_partitions_the_sets() {
        let a = Fixed(vec![1, 2, 4]);
        let b = Fixed(vec![2, 3]);
        let d = a.reachable_delta(&b);
        assert_eq!(
            d.only_in_self,
            vec![MethodId::from_index(1), MethodId::from_index(4)]
        );
        assert_eq!(d.only_in_other, vec![MethodId::from_index(3)]);
        assert_eq!(d.common, 1);
        assert!(!d.is_identical());
        assert!(a.reachable_delta(&a).is_identical());
    }
}
