//! Analysis results: reachability, value states, call-graph queries,
//! liveness, and dead-code reports.
//!
//! Two views share one query surface:
//!
//! * [`AnalysisSnapshot`] — a cheap borrowed view of a (paused)
//!   [`AnalysisSession`](crate::AnalysisSession). Every query method lives
//!   here; taking a snapshot copies five references.
//! * [`AnalysisResult`] — the owned form, produced by
//!   [`AnalysisSession::into_result`](crate::AnalysisSession::into_result)
//!   (or the [`crate::analyze`] convenience wrapper). It stores the final
//!   PVPG and delegates every query to an internal snapshot.
//!
//! Reachability is stored as a [`ReachableSet`] — a bitset for O(1)
//! membership plus a sorted id vector for deterministic iteration.

use crate::config::AnalysisConfig;
use crate::flow::{CallKind, FlowKind, SiteId};
use crate::graph::Pvpg;
use crate::interrupt::Completeness;
use crate::lattice::ValueState;
use crate::metrics::{compute_metrics, InterruptStats, InvalidationStats, Metrics, SchedulerStats};
use skipflow_ir::{BitSet, BlockId, MethodId, Program, TypeId};
use std::time::Duration;

/// Solver statistics.
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// Worklist steps executed (cumulative across session resumes).
    pub steps: u64,
    /// Of [`SolveStats::steps`], how many took the width-adaptive full-join
    /// fast path (the flow's narrow input state made a plain monotone
    /// re-join cheaper than delta bookkeeping). Always 0 when
    /// [`crate::AnalysisConfig::narrow_join_width`] is 0 and for the
    /// reference solver (whose every step is a full join by definition).
    pub full_join_steps: u64,
    /// Input-state joins that actually changed a state (propagation volume).
    pub state_joins: u64,
    /// Of [`SolveStats::state_joins`], how many skipped the delta tracking
    /// via the narrow-join fast path.
    pub narrow_joins: u64,
    /// Flows in the final PVPG (the arena only grows, so this is the peak).
    pub flows: usize,
    /// Use edges.
    pub use_edges: usize,
    /// Predicate edges.
    pub pred_edges: usize,
    /// Observe edges.
    pub obs_edges: usize,
    /// `solve()` calls that contributed to these numbers (1 for a one-shot
    /// [`crate::analyze`] run; grows as a session is resumed).
    pub solves: u64,
    /// SCC-scheduler statistics (zero under FIFO / reference).
    pub scheduler: SchedulerStats,
    /// Interrupt / resume / worker-panic counters (all zero for a session
    /// that never hit a budget, cancel token, or panicking worker).
    pub interrupt: InterruptStats,
    /// Retraction / edit invalidation counters (all zero for a session that
    /// never retracted roots or applied a method edit).
    pub invalidation: InvalidationStats,
    /// Wall-clock analysis time (cumulative across session resumes).
    pub duration: Duration,
}

/// The set of reachable methods: a bitset for O(1) membership plus the ids
/// in ascending order for deterministic iteration (the replacement for the
/// former `BTreeSet<MethodId>` representation).
///
/// Equality is set equality — two solvers that discover the same methods in
/// different orders compare equal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReachableSet {
    bits: BitSet,
    /// Ascending method ids (sorted once at construction).
    order: Vec<MethodId>,
}

impl ReachableSet {
    /// Builds the set from the engine's membership bitset and discovery
    /// order. The order is re-sorted into ascending id order so iteration is
    /// deterministic across solvers and schedulers.
    pub(crate) fn from_discovery(bits: BitSet, mut order: Vec<MethodId>) -> Self {
        order.sort_unstable();
        debug_assert_eq!(bits.len(), order.len(), "bitset and order must agree");
        ReachableSet { bits, order }
    }

    /// Number of reachable methods.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no method is reachable.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// O(1) membership test.
    pub fn contains(&self, m: MethodId) -> bool {
        self.bits.contains(m.index())
    }

    /// Iterates the methods in ascending id order.
    pub fn iter(&self) -> std::slice::Iter<'_, MethodId> {
        self.order.iter()
    }

    /// The methods as a sorted slice.
    pub fn as_slice(&self) -> &[MethodId] {
        &self.order
    }

    /// Whether every method of `self` is also in `other`.
    pub fn is_subset(&self, other: &ReachableSet) -> bool {
        self.order.iter().all(|&m| other.contains(m))
    }
}

impl<'a> IntoIterator for &'a ReachableSet {
    type Item = &'a MethodId;
    type IntoIter = std::slice::Iter<'a, MethodId>;
    fn into_iter(self) -> Self::IntoIter {
        self.order.iter()
    }
}

/// A cheap borrowed view of an analysis fixpoint: all query methods, no
/// ownership. Obtained from [`AnalysisSession::solve`](crate::AnalysisSession::solve),
/// [`AnalysisSession::snapshot`](crate::AnalysisSession::snapshot), or
/// [`AnalysisResult::snapshot`].
#[derive(Clone, Copy, Debug)]
pub struct AnalysisSnapshot<'a> {
    graph: &'a Pvpg,
    reachable: &'a ReachableSet,
    instantiated: &'a BitSet,
    config: &'a AnalysisConfig,
    stats: &'a SolveStats,
    completeness: Completeness,
}

impl<'a> AnalysisSnapshot<'a> {
    pub(crate) fn new(
        graph: &'a Pvpg,
        reachable: &'a ReachableSet,
        instantiated: &'a BitSet,
        config: &'a AnalysisConfig,
        stats: &'a SolveStats,
        completeness: Completeness,
    ) -> Self {
        AnalysisSnapshot {
            graph,
            reachable,
            instantiated,
            config,
            stats,
            completeness,
        }
    }

    /// Whether this view is a reached fixpoint
    /// ([`Completeness::Complete`]) or the checkpoint of an interrupted
    /// solve ([`Completeness::Partial`]). Partial answers are sound
    /// under-approximations: everything reported reachable/live *is*, but
    /// further propagation may add more.
    pub fn completeness(&self) -> Completeness {
        self.completeness
    }

    /// The PVPG (for advanced inspection and the bench harness).
    pub fn graph(&self) -> &'a Pvpg {
        self.graph
    }

    /// The configuration the analysis ran under.
    pub fn config(&self) -> &'a AnalysisConfig {
        self.config
    }

    /// Solver statistics (cumulative across session resumes).
    pub fn stats(&self) -> &'a SolveStats {
        self.stats
    }

    /// The set of reachable methods (the paper's `R`).
    pub fn reachable_methods(&self) -> &'a ReachableSet {
        self.reachable
    }

    /// Whether `m` was marked reachable (O(1)).
    pub fn is_reachable(&self, m: MethodId) -> bool {
        self.reachable.contains(m)
    }

    /// Whether any enabled `new T` for this exact type was reached.
    pub fn is_instantiated(&self, t: TypeId) -> bool {
        self.instantiated.contains(t.index())
    }

    /// The value state returned by `m` (the out-state of its method-return
    /// flow). `None` if `m` is unreachable or never returns.
    pub fn return_state(&self, m: MethodId) -> Option<&'a ValueState> {
        let mg = self.graph.method_graph(m)?;
        let ret = mg.ret?;
        Some(&self.graph.flow(ret).out_state)
    }

    /// The value state of parameter `i` of `m` (receiver = 0 for instance
    /// methods).
    pub fn param_state(&self, m: MethodId, i: usize) -> Option<&'a ValueState> {
        let mg = self.graph.method_graph(m)?;
        let p = *mg.params.get(i)?;
        Some(&self.graph.flow(p).out_state)
    }

    /// The resolved targets of each call site in `m`, in source order:
    /// `(site, kind, linked targets, enabled)`.
    pub fn call_sites(&self, m: MethodId) -> Vec<CallSiteInfo> {
        let Some(mg) = self.graph.method_graph(m) else {
            return Vec::new();
        };
        mg.sites
            .iter()
            .map(|&s| {
                let site = self.graph.site(s);
                CallSiteInfo {
                    site: s,
                    kind: site.kind,
                    targets: site.linked.clone(),
                    enabled: self.graph.flow(site.flow).enabled,
                }
            })
            .collect()
    }

    /// Per-block liveness of `m`'s body (`true` = the block's entry
    /// predicate is active). Empty if `m` is unreachable.
    pub fn live_blocks(&self, m: MethodId) -> Vec<bool> {
        let Some(mg) = self.graph.method_graph(m) else {
            return Vec::new();
        };
        mg.block_preds
            .iter()
            .map(|&p| self.graph.flow(p).is_active())
            .collect()
    }

    /// The blocks of `m` proven unreachable by the analysis — the dead-code
    /// elimination opportunities of §6 "Impact on Compiler Optimizations".
    pub fn dead_blocks(&self, m: MethodId) -> Vec<BlockId> {
        self.live_blocks(m)
            .iter()
            .enumerate()
            .filter(|(_, live)| !**live)
            .map(|(i, _)| BlockId::from_index(i))
            .collect()
    }

    /// Virtual call sites in `m` devirtualized to exactly one target.
    pub fn devirtualized_sites(&self, m: MethodId) -> Vec<(SiteId, MethodId)> {
        self.call_sites(m)
            .into_iter()
            .filter(|s| s.enabled && s.kind == CallKind::Virtual && s.targets.len() == 1)
            .map(|s| (s.site, s.targets[0]))
            .collect()
    }

    /// The out-state of the flow created for statement `stmt` of block
    /// `block` in `m` (for fine-grained assertions in tests).
    pub fn stmt_state(&self, m: MethodId, block: BlockId, stmt: usize) -> Option<&'a ValueState> {
        let mg = self.graph.method_graph(m)?;
        let f = *mg.stmt_flows.get(block.index())?.get(stmt)?;
        Some(&self.graph.flow(f).out_state)
    }

    /// Whether the flow of statement `stmt` in `block` of `m` is enabled.
    pub fn stmt_enabled(&self, m: MethodId, block: BlockId, stmt: usize) -> Option<bool> {
        let mg = self.graph.method_graph(m)?;
        let f = *mg.stmt_flows.get(block.index())?.get(stmt)?;
        Some(self.graph.flow(f).enabled)
    }

    /// Computes the paper's counter metrics.
    pub fn metrics(&self, program: &Program) -> Metrics {
        compute_metrics(self, program)
    }

    /// Renders a human-readable dead-code report for one method.
    pub fn dead_code_report(&self, program: &Program, m: MethodId) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let label = program.method_label(m);
        if !self.is_reachable(m) {
            let _ = writeln!(out, "{label}: unreachable (entire method removed)");
            return out;
        }
        let dead = self.dead_blocks(m);
        if dead.is_empty() {
            let _ = writeln!(out, "{label}: fully live");
        } else {
            let _ = writeln!(out, "{label}: dead blocks {dead:?}");
        }
        for info in self.call_sites(m) {
            if !info.enabled {
                let _ = writeln!(out, "  call site {:?}: unreachable", info.site);
            } else if info.kind == CallKind::Virtual {
                let names: Vec<String> = info
                    .targets
                    .iter()
                    .map(|t| program.method_label(*t))
                    .collect();
                let tag = match names.len() {
                    0 => "no targets (dead receiver)".to_string(),
                    1 => format!("devirtualized -> {}", names[0]),
                    _ => format!("polymorphic -> {{{}}}", names.join(", ")),
                };
                let _ = writeln!(out, "  call site {:?}: {tag}", info.site);
            }
        }
        out
    }

    /// Flow-level view used by debugging tests: the out-state of the `new T`
    /// flows of a type, if any were created.
    pub fn allocation_enabled(&self, t: TypeId) -> bool {
        self.graph
            .flows
            .iter()
            .any(|f| matches!(f.kind, FlowKind::New(ty) if ty == t) && f.enabled)
    }

    /// The call graph induced by the analysis: one `(caller, site, callee)`
    /// edge per linked target of every enabled call site, in deterministic
    /// order. This is the artifact consumed by the call-graph-construction
    /// applications the paper's introduction cites.
    pub fn call_graph_edges(&self) -> Vec<CallEdge> {
        let mut edges = Vec::new();
        for (&caller, mg) in &self.graph.methods {
            for &site in &mg.sites {
                let s = self.graph.site(site);
                if !self.graph.flow(s.flow).enabled {
                    continue;
                }
                for &callee in &s.linked {
                    edges.push(CallEdge {
                        caller,
                        site,
                        callee,
                        kind: s.kind,
                    });
                }
            }
        }
        edges
    }

    /// Enabled virtual call sites with two or more resolved targets (the
    /// PolyCalls counter, shared with [`crate::CallGraphQuery`]).
    pub fn poly_call_sites(&self) -> usize {
        let mut n = 0;
        for mg in self.graph.methods.values() {
            for &site in &mg.sites {
                let s = self.graph.site(site);
                if s.kind == CallKind::Virtual
                    && self.graph.flow(s.flow).enabled
                    && s.linked.len() >= 2
                {
                    n += 1;
                }
            }
        }
        n
    }

    /// Clones this view into an [`OwnedSnapshot`] suitable for publication
    /// across threads (the serving seam used by `skipflow-server`). The
    /// clone copies the PVPG once; every subsequent [`OwnedSnapshot::clone`]
    /// is an `Arc` bump.
    pub fn to_owned_snapshot(&self) -> OwnedSnapshot {
        OwnedSnapshot::from(AnalysisResult::new(
            self.graph.clone(),
            self.reachable.clone(),
            self.instantiated.clone(),
            self.config.clone(),
            self.stats.clone(),
            self.completeness,
        ))
    }

    /// Renders the call graph as Graphviz `dot` (method-level nodes;
    /// polymorphic sites produce multiple out-edges).
    pub fn call_graph_dot(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n");
        for &m in self.reachable.iter() {
            let _ = writeln!(out, "  m{} [label=\"{}\"];", m.index(), program.method_label(m));
        }
        let mut seen = std::collections::BTreeSet::new();
        for e in self.call_graph_edges() {
            if seen.insert((e.caller, e.callee)) {
                let style = match e.kind {
                    CallKind::Virtual => "",
                    CallKind::Static => " [style=dashed]",
                };
                let _ = writeln!(out, "  m{} -> m{}{style};", e.caller.index(), e.callee.index());
            }
        }
        out.push_str("}\n");
        out
    }
}

/// The owned outcome of one analysis (see [`crate::analyze`] and
/// [`AnalysisSession::into_result`](crate::AnalysisSession::into_result)).
/// Every query delegates to [`AnalysisSnapshot`].
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    graph: Pvpg,
    reachable: ReachableSet,
    instantiated: BitSet,
    config: AnalysisConfig,
    stats: SolveStats,
    completeness: Completeness,
}

impl AnalysisResult {
    pub(crate) fn new(
        graph: Pvpg,
        reachable: ReachableSet,
        instantiated: BitSet,
        config: AnalysisConfig,
        mut stats: SolveStats,
        completeness: Completeness,
    ) -> Self {
        stats.flows = graph.flow_count();
        AnalysisResult {
            graph,
            reachable,
            instantiated,
            config,
            stats,
            completeness,
        }
    }

    /// A borrowed view of this result carrying the full query surface.
    pub fn snapshot(&self) -> AnalysisSnapshot<'_> {
        AnalysisSnapshot::new(
            &self.graph,
            &self.reachable,
            &self.instantiated,
            &self.config,
            &self.stats,
            self.completeness,
        )
    }

    /// Whether this result is a reached fixpoint or an interrupted
    /// checkpoint; see [`AnalysisSnapshot::completeness`].
    pub fn completeness(&self) -> Completeness {
        self.completeness
    }

    /// The final PVPG (for advanced inspection and the bench harness).
    pub fn graph(&self) -> &Pvpg {
        &self.graph
    }

    /// The configuration the analysis ran under.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Solver statistics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The set of reachable methods (the paper's `R`).
    pub fn reachable_methods(&self) -> &ReachableSet {
        &self.reachable
    }

    /// Whether `m` was marked reachable (O(1)).
    pub fn is_reachable(&self, m: MethodId) -> bool {
        self.reachable.contains(m)
    }

    /// Whether any enabled `new T` for this exact type was reached.
    pub fn is_instantiated(&self, t: TypeId) -> bool {
        self.instantiated.contains(t.index())
    }

    /// The value state returned by `m`; see [`AnalysisSnapshot::return_state`].
    pub fn return_state(&self, m: MethodId) -> Option<&ValueState> {
        self.snapshot().return_state(m)
    }

    /// The value state of parameter `i` of `m`; see
    /// [`AnalysisSnapshot::param_state`].
    pub fn param_state(&self, m: MethodId, i: usize) -> Option<&ValueState> {
        self.snapshot().param_state(m, i)
    }

    /// The resolved targets of each call site in `m`, in source order.
    pub fn call_sites(&self, m: MethodId) -> Vec<CallSiteInfo> {
        self.snapshot().call_sites(m)
    }

    /// Per-block liveness of `m`'s body; see [`AnalysisSnapshot::live_blocks`].
    pub fn live_blocks(&self, m: MethodId) -> Vec<bool> {
        self.snapshot().live_blocks(m)
    }

    /// The blocks of `m` proven unreachable by the analysis.
    pub fn dead_blocks(&self, m: MethodId) -> Vec<BlockId> {
        self.snapshot().dead_blocks(m)
    }

    /// Virtual call sites in `m` devirtualized to exactly one target.
    pub fn devirtualized_sites(&self, m: MethodId) -> Vec<(SiteId, MethodId)> {
        self.snapshot().devirtualized_sites(m)
    }

    /// The out-state of the flow created for statement `stmt` of `block`.
    pub fn stmt_state(&self, m: MethodId, block: BlockId, stmt: usize) -> Option<&ValueState> {
        self.snapshot().stmt_state(m, block, stmt)
    }

    /// Whether the flow of statement `stmt` in `block` of `m` is enabled.
    pub fn stmt_enabled(&self, m: MethodId, block: BlockId, stmt: usize) -> Option<bool> {
        self.snapshot().stmt_enabled(m, block, stmt)
    }

    /// Computes the paper's counter metrics.
    pub fn metrics(&self, program: &Program) -> Metrics {
        self.snapshot().metrics(program)
    }

    /// Renders a human-readable dead-code report for one method.
    pub fn dead_code_report(&self, program: &Program, m: MethodId) -> String {
        self.snapshot().dead_code_report(program, m)
    }

    /// Flow-level view used by debugging tests.
    pub fn allocation_enabled(&self, t: TypeId) -> bool {
        self.snapshot().allocation_enabled(t)
    }

    /// The call graph induced by the analysis.
    pub fn call_graph_edges(&self) -> Vec<CallEdge> {
        self.snapshot().call_graph_edges()
    }

    /// Renders the call graph as Graphviz `dot`.
    pub fn call_graph_dot(&self, program: &Program) -> String {
        self.snapshot().call_graph_dot(program)
    }
}

/// An owned, cheaply clonable snapshot for cross-thread publication.
///
/// [`AnalysisSnapshot`] borrows a paused session, so it cannot outlive the
/// solve loop that produced it; a server that answers queries *while* the
/// next solve runs needs a form it can hand to reader threads. An
/// `OwnedSnapshot` wraps an [`AnalysisResult`] in an `Arc`:
///
/// * building one ([`AnalysisSnapshot::to_owned_snapshot`] or
///   [`AnalysisSession::owned_snapshot`](crate::AnalysisSession::owned_snapshot))
///   deep-copies the PVPG once, on the writer's thread;
/// * cloning one is a reference-count bump, so publication schemes (e.g. the
///   epoch cell in `skipflow-server`) can hand a clone to every concurrent
///   reader without blocking or re-copying;
/// * it is `Send + Sync` and implements [`crate::CallGraphQuery`], and
///   [`OwnedSnapshot::view`] recovers the full borrowed query surface.
#[derive(Clone, Debug)]
pub struct OwnedSnapshot {
    inner: std::sync::Arc<AnalysisResult>,
}

impl OwnedSnapshot {
    /// A borrowed view carrying the full query surface.
    pub fn view(&self) -> AnalysisSnapshot<'_> {
        self.inner.snapshot()
    }

    /// The underlying owned result.
    pub fn result(&self) -> &AnalysisResult {
        &self.inner
    }

    /// Whether the snapshot is a reached fixpoint or an interrupted
    /// checkpoint; see [`AnalysisSnapshot::completeness`].
    pub fn completeness(&self) -> Completeness {
        self.inner.completeness()
    }

    /// Solver statistics at the time the snapshot was taken.
    pub fn stats(&self) -> &SolveStats {
        self.inner.stats()
    }

    /// The set of reachable methods.
    pub fn reachable_methods(&self) -> &ReachableSet {
        self.inner.reachable_methods()
    }

    /// Whether two handles share the same underlying allocation (used by
    /// publication tests; cheaper than comparing contents).
    pub fn ptr_eq(&self, other: &OwnedSnapshot) -> bool {
        std::sync::Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl From<AnalysisResult> for OwnedSnapshot {
    fn from(result: AnalysisResult) -> Self {
        OwnedSnapshot {
            inner: std::sync::Arc::new(result),
        }
    }
}

/// One edge of the computed call graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallEdge {
    /// The calling method.
    pub caller: MethodId,
    /// The call site within the caller.
    pub site: SiteId,
    /// The resolved target.
    pub callee: MethodId,
    /// Virtual or static dispatch.
    pub kind: CallKind,
}

/// Summary of one call site for reports.
#[derive(Clone, Debug)]
pub struct CallSiteInfo {
    /// Site id.
    pub site: SiteId,
    /// Virtual or static.
    pub kind: CallKind,
    /// Targets linked by the analysis.
    pub targets: Vec<MethodId>,
    /// Whether the invoke flow was ever enabled.
    pub enabled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachable_set_sorts_membership_and_iteration() {
        let mut bits = BitSet::new();
        for i in [5usize, 1, 9] {
            bits.insert(i);
        }
        let order = vec![
            MethodId::from_index(9),
            MethodId::from_index(1),
            MethodId::from_index(5),
        ];
        let set = ReachableSet::from_discovery(bits, order);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert!(set.contains(MethodId::from_index(5)));
        assert!(!set.contains(MethodId::from_index(2)));
        let ids: Vec<usize> = set.iter().map(|m| m.index()).collect();
        assert_eq!(ids, vec![1, 5, 9], "ascending regardless of discovery order");
        // `for &m in &set` works like the former BTreeSet.
        let mut n = 0;
        for &m in &set {
            assert!(set.contains(m));
            n += 1;
        }
        assert_eq!(n, 3);
    }

    #[test]
    fn reachable_set_equality_ignores_discovery_order() {
        let build = |order: &[usize]| {
            let mut bits = BitSet::new();
            for &i in order {
                bits.insert(i);
            }
            ReachableSet::from_discovery(
                bits,
                order.iter().map(|&i| MethodId::from_index(i)).collect(),
            )
        };
        assert_eq!(build(&[3, 1, 2]), build(&[1, 2, 3]));
        assert_ne!(build(&[1, 2]), build(&[1, 2, 3]));
        assert!(build(&[1, 2]).is_subset(&build(&[1, 2, 3])));
        assert!(!build(&[1, 4]).is_subset(&build(&[1, 2, 3])));
    }
}
