//! The analysis result: reachability, value states, call-graph queries,
//! liveness, and dead-code reports.

use crate::config::AnalysisConfig;
use crate::flow::{CallKind, FlowKind, SiteId};
use crate::graph::Pvpg;
use crate::lattice::ValueState;
use crate::metrics::{compute_metrics, Metrics, SchedulerStats};
use skipflow_ir::{BitSet, BlockId, MethodId, Program, TypeId};
use std::collections::BTreeSet;
use std::time::Duration;

/// Solver statistics.
#[derive(Clone, Debug, Default)]
pub struct SolveStats {
    /// Worklist steps executed.
    pub steps: u64,
    /// Input-state joins that actually changed a state (propagation volume).
    pub state_joins: u64,
    /// Flows in the final PVPG (the arena only grows, so this is the peak).
    pub flows: usize,
    /// Use edges.
    pub use_edges: usize,
    /// Predicate edges.
    pub pred_edges: usize,
    /// Observe edges.
    pub obs_edges: usize,
    /// SCC-scheduler statistics (zero under FIFO / reference).
    pub scheduler: SchedulerStats,
    /// Wall-clock analysis time.
    pub duration: Duration,
}

/// The outcome of one analysis run (see [`crate::analyze`]).
#[derive(Clone, Debug)]
pub struct AnalysisResult {
    graph: Pvpg,
    reachable: BTreeSet<MethodId>,
    instantiated: BitSet,
    config: AnalysisConfig,
    stats: SolveStats,
}

impl AnalysisResult {
    pub(crate) fn new(
        graph: Pvpg,
        reachable: BTreeSet<MethodId>,
        instantiated: BitSet,
        config: AnalysisConfig,
        mut stats: SolveStats,
    ) -> Self {
        stats.flows = graph.flow_count();
        AnalysisResult {
            graph,
            reachable,
            instantiated,
            config,
            stats,
        }
    }

    /// The final PVPG (for advanced inspection and the bench harness).
    pub fn graph(&self) -> &Pvpg {
        &self.graph
    }

    /// The configuration the analysis ran under.
    pub fn config(&self) -> &AnalysisConfig {
        &self.config
    }

    /// Solver statistics.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The set of reachable methods (the paper's `R`).
    pub fn reachable_methods(&self) -> &BTreeSet<MethodId> {
        &self.reachable
    }

    /// Whether `m` was marked reachable.
    pub fn is_reachable(&self, m: MethodId) -> bool {
        self.reachable.contains(&m)
    }

    /// Whether any enabled `new T` for this exact type was reached.
    pub fn is_instantiated(&self, t: TypeId) -> bool {
        self.instantiated.contains(t.index())
    }

    /// The value state returned by `m` (the out-state of its method-return
    /// flow). `None` if `m` is unreachable or never returns.
    pub fn return_state(&self, m: MethodId) -> Option<&ValueState> {
        let mg = self.graph.method_graph(m)?;
        let ret = mg.ret?;
        Some(&self.graph.flow(ret).out_state)
    }

    /// The value state of parameter `i` of `m` (receiver = 0 for instance
    /// methods).
    pub fn param_state(&self, m: MethodId, i: usize) -> Option<&ValueState> {
        let mg = self.graph.method_graph(m)?;
        let p = *mg.params.get(i)?;
        Some(&self.graph.flow(p).out_state)
    }

    /// The resolved targets of each call site in `m`, in source order:
    /// `(site, kind, linked targets, enabled)`.
    pub fn call_sites(&self, m: MethodId) -> Vec<CallSiteInfo> {
        let Some(mg) = self.graph.method_graph(m) else {
            return Vec::new();
        };
        mg.sites
            .iter()
            .map(|&s| {
                let site = self.graph.site(s);
                CallSiteInfo {
                    site: s,
                    kind: site.kind,
                    targets: site.linked.clone(),
                    enabled: self.graph.flow(site.flow).enabled,
                }
            })
            .collect()
    }

    /// Per-block liveness of `m`'s body (`true` = the block's entry
    /// predicate is active). Empty if `m` is unreachable.
    pub fn live_blocks(&self, m: MethodId) -> Vec<bool> {
        let Some(mg) = self.graph.method_graph(m) else {
            return Vec::new();
        };
        mg.block_preds
            .iter()
            .map(|&p| self.graph.flow(p).is_active())
            .collect()
    }

    /// The blocks of `m` proven unreachable by the analysis — the dead-code
    /// elimination opportunities of §6 "Impact on Compiler Optimizations".
    pub fn dead_blocks(&self, m: MethodId) -> Vec<BlockId> {
        self.live_blocks(m)
            .iter()
            .enumerate()
            .filter(|(_, live)| !**live)
            .map(|(i, _)| BlockId::from_index(i))
            .collect()
    }

    /// Virtual call sites in `m` devirtualized to exactly one target.
    pub fn devirtualized_sites(&self, m: MethodId) -> Vec<(SiteId, MethodId)> {
        self.call_sites(m)
            .into_iter()
            .filter(|s| s.enabled && s.kind == CallKind::Virtual && s.targets.len() == 1)
            .map(|s| (s.site, s.targets[0]))
            .collect()
    }

    /// The out-state of the flow created for statement `stmt` of block
    /// `block` in `m` (for fine-grained assertions in tests).
    pub fn stmt_state(&self, m: MethodId, block: BlockId, stmt: usize) -> Option<&ValueState> {
        let mg = self.graph.method_graph(m)?;
        let f = *mg.stmt_flows.get(block.index())?.get(stmt)?;
        Some(&self.graph.flow(f).out_state)
    }

    /// Whether the flow of statement `stmt` in `block` of `m` is enabled.
    pub fn stmt_enabled(&self, m: MethodId, block: BlockId, stmt: usize) -> Option<bool> {
        let mg = self.graph.method_graph(m)?;
        let f = *mg.stmt_flows.get(block.index())?.get(stmt)?;
        Some(self.graph.flow(f).enabled)
    }

    /// Computes the paper's counter metrics.
    pub fn metrics(&self, program: &Program) -> Metrics {
        compute_metrics(self, program)
    }

    /// Renders a human-readable dead-code report for one method.
    pub fn dead_code_report(&self, program: &Program, m: MethodId) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let label = program.method_label(m);
        if !self.is_reachable(m) {
            let _ = writeln!(out, "{label}: unreachable (entire method removed)");
            return out;
        }
        let dead = self.dead_blocks(m);
        if dead.is_empty() {
            let _ = writeln!(out, "{label}: fully live");
        } else {
            let _ = writeln!(out, "{label}: dead blocks {dead:?}");
        }
        for info in self.call_sites(m) {
            if !info.enabled {
                let _ = writeln!(out, "  call site {:?}: unreachable", info.site);
            } else if info.kind == CallKind::Virtual {
                let names: Vec<String> = info
                    .targets
                    .iter()
                    .map(|t| program.method_label(*t))
                    .collect();
                let tag = match names.len() {
                    0 => "no targets (dead receiver)".to_string(),
                    1 => format!("devirtualized -> {}", names[0]),
                    _ => format!("polymorphic -> {{{}}}", names.join(", ")),
                };
                let _ = writeln!(out, "  call site {:?}: {tag}", info.site);
            }
        }
        out
    }

    /// Flow-level view used by debugging tests: the out-state of the `new T`
    /// flows of a type, if any were created.
    pub fn allocation_enabled(&self, t: TypeId) -> bool {
        self.graph
            .flows
            .iter()
            .any(|f| matches!(f.kind, FlowKind::New(ty) if ty == t) && f.enabled)
    }

    /// The call graph induced by the analysis: one `(caller, site, callee)`
    /// edge per linked target of every enabled call site, in deterministic
    /// order. This is the artifact consumed by the call-graph-construction
    /// applications the paper's introduction cites.
    pub fn call_graph_edges(&self) -> Vec<CallEdge> {
        let mut edges = Vec::new();
        for (&caller, mg) in &self.graph.methods {
            for &site in &mg.sites {
                let s = self.graph.site(site);
                if !self.graph.flow(s.flow).enabled {
                    continue;
                }
                for &callee in &s.linked {
                    edges.push(CallEdge {
                        caller,
                        site,
                        callee,
                        kind: s.kind,
                    });
                }
            }
        }
        edges
    }

    /// Renders the call graph as Graphviz `dot` (method-level nodes;
    /// polymorphic sites produce multiple out-edges).
    pub fn call_graph_dot(&self, program: &Program) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n");
        for &m in &self.reachable {
            let _ = writeln!(out, "  m{} [label=\"{}\"];", m.index(), program.method_label(m));
        }
        let mut seen = std::collections::BTreeSet::new();
        for e in self.call_graph_edges() {
            if seen.insert((e.caller, e.callee)) {
                let style = match e.kind {
                    CallKind::Virtual => "",
                    CallKind::Static => " [style=dashed]",
                };
                let _ = writeln!(out, "  m{} -> m{}{style};", e.caller.index(), e.callee.index());
            }
        }
        out.push_str("}\n");
        out
    }
}

/// One edge of the computed call graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallEdge {
    /// The calling method.
    pub caller: MethodId,
    /// The call site within the caller.
    pub site: SiteId,
    /// The resolved target.
    pub callee: MethodId,
    /// Virtual or static dispatch.
    pub kind: CallKind,
}

/// Summary of one call site for reports.
#[derive(Clone, Debug)]
pub struct CallSiteInfo {
    /// Site id.
    pub site: SiteId,
    /// Virtual or static.
    pub kind: CallKind,
    /// Targets linked by the analysis.
    pub targets: Vec<MethodId>,
    /// Whether the invoke flow was ever enabled.
    pub enabled: bool,
}
