//! Graphviz export of PVPG fragments, using the paper's figure conventions:
//! solid edges are *use* edges, dashed edges are *predicate* edges, dotted
//! edges are *observe* edges; enabled flows are drawn red, disabled flows
//! grey (Figures 7 and 8).

use crate::flow::{FlowId, FlowKind};
use crate::report::AnalysisSnapshot;
use skipflow_ir::{MethodId, Program};
use std::collections::BTreeSet;
use std::fmt::Write as _;

fn flow_label(result: &AnalysisSnapshot<'_>, program: &Program, f: FlowId) -> String {
    let flow = result.graph().flow(f);
    let kind = match &flow.kind {
        FlowKind::PredOn => "pred_on".to_string(),
        FlowKind::Param { index, .. } => format!("p{index}"),
        FlowKind::Const(n) => format!("{n}"),
        FlowKind::AnyPrim => "Any".to_string(),
        FlowKind::New(t) => format!("new {}", program.type_data(*t).name),
        FlowKind::NullSource => "null".to_string(),
        FlowKind::Load { field, .. } => format!("LoadField {}", program.field(*field).name),
        FlowKind::Store { field, .. } => format!("StoreField {}", program.field(*field).name),
        FlowKind::FieldSink { field } => format!("Field {}", program.field(*field).name),
        FlowKind::Invoke { site } => {
            let s = result.graph().site(*site);
            let sel = s.selector.expect("virtual site");
            format!("Invoke {}()", program.selector(sel).name)
        }
        FlowKind::InvokeStatic { site } => {
            let s = result.graph().site(*site);
            let t = s.static_target.expect("static site");
            format!("Invoke {}()", program.method_label(t))
        }
        FlowKind::MethodReturn => "Return".to_string(),
        FlowKind::ReturnSite => "return-site".to_string(),
        FlowKind::TypeFilter { ty, negated } => format!(
            "{}instanceof {}",
            if *negated { "!" } else { "" },
            program.type_data(*ty).name
        ),
        FlowKind::CmpFilter { op, .. } => format!("cmp {}", op.symbol()),
        FlowKind::Phi => "φ".to_string(),
        FlowKind::PhiPred => "φ_pred".to_string(),
        FlowKind::ThrowSite => "throw".to_string(),
        FlowKind::ThrownSink => "thrown-pool".to_string(),
        FlowKind::CatchAll { ty } => format!("catch {}", program.type_data(*ty).name),
        FlowKind::UnsafeSink => "unsafe-pool".to_string(),
        FlowKind::RootSource { .. } => "root-source".to_string(),
    };
    let state = format!("{:?}", flow.out_state);
    format!("{kind}\\n{state}")
}

/// Renders the PVPG fragment of one reachable method as Graphviz `dot`.
/// Returns `None` if the method was never reached (it has no fragment).
/// Takes any [`AnalysisSnapshot`] view — pass `result.snapshot()` for an
/// owned [`crate::AnalysisResult`].
pub fn method_pvpg_dot(
    result: &AnalysisSnapshot<'_>,
    program: &Program,
    method: MethodId,
) -> Option<String> {
    let mg = result.graph().method_graph(method)?;
    let in_set: BTreeSet<FlowId> = mg.flows.iter().copied().collect();
    let mut out = String::new();
    let _ = writeln!(out, "digraph pvpg {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(
        out,
        "  label=\"PVPG of {}\"; labelloc=top;",
        program.method_label(method)
    );
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for &f in &mg.flows {
        let flow = result.graph().flow(f);
        let color = if flow.is_active() {
            "red"
        } else if flow.enabled {
            "orange"
        } else {
            "grey"
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", color={color}];",
            f.index(),
            flow_label(result, program, f)
        );
    }
    // Edges within the fragment (cross-method edges are summarized).
    let g = result.graph();
    for &f in &mg.flows {
        for t in g.use_targets(f) {
            if in_set.contains(&t) {
                let _ = writeln!(out, "  n{} -> n{};", f.index(), t.index());
            }
        }
        for t in g.pred_targets(f) {
            if in_set.contains(&t) {
                let _ = writeln!(
                    out,
                    "  n{} -> n{} [style=dashed, arrowhead=empty];",
                    f.index(),
                    t.index()
                );
            }
        }
        for t in g.observe_targets(f) {
            if in_set.contains(&t) {
                let _ = writeln!(out, "  n{} -> n{} [style=dotted];", f.index(), t.index());
            }
        }
    }
    let _ = writeln!(out, "}}");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use skipflow_ir::frontend::compile;

    #[test]
    fn renders_the_isvirtual_pvpg() {
        let program = compile(
            "abstract class BaseVirtualThread extends Thread { }
             class Thread {
               method isVirtual(): int {
                 if (this instanceof BaseVirtualThread) { return 1; }
                 return 0;
               }
             }
             class PlatformThread extends Thread { }
             class Main {
               static method main(): int {
                 var t = new PlatformThread();
                 return t.isVirtual();
               }
             }",
        )
        .unwrap();
        let main_cls = program.type_by_name("Main").unwrap();
        let main = program.method_by_name(main_cls, "main").unwrap();
        let result = analyze(&program, &[main], &AnalysisConfig::skipflow());
        let thread = program.type_by_name("Thread").unwrap();
        let is_virtual = program.method_by_name(thread, "isVirtual").unwrap();
        let dot = method_pvpg_dot(&result.snapshot(), &program, is_virtual).expect("reachable");
        assert!(dot.starts_with("digraph"), "{dot}");
        assert!(dot.contains("instanceof BaseVirtualThread"), "{dot}");
        assert!(dot.contains("!instanceof BaseVirtualThread"), "{dot}");
        assert!(dot.contains("style=dashed"), "predicate edges present");
        // The then-branch constant 1 is disabled (grey); the constant 0 is
        // active (red).
        assert!(dot.contains("color=grey"), "{dot}");
        assert!(dot.contains("color=red"), "{dot}");
    }

    #[test]
    fn unreachable_method_has_no_dot() {
        let program = compile(
            "class Main {
               static method dead(): void { return; }
               static method main(): void { return; }
             }",
        )
        .unwrap();
        let main_cls = program.type_by_name("Main").unwrap();
        let main = program.method_by_name(main_cls, "main").unwrap();
        let dead = program.method_by_name(main_cls, "dead").unwrap();
        let result = analyze(&program, &[main], &AnalysisConfig::skipflow());
        assert!(method_pvpg_dot(&result.snapshot(), &program, dead).is_none());
    }
}
