//! The paper's evaluation metrics (§6 "Counter Metrics"): per benchmark and
//! configuration, the number of reachable methods, the branching
//! instructions that cannot be removed or simplified using the analysis
//! results (split into Type / Null / Prim checks), the virtual calls that
//! could not be devirtualized (PolyCalls), and the binary-size proxy.

use crate::graph::CheckCategory;
use crate::report::AnalysisSnapshot;
use skipflow_ir::Program;
use std::fmt;

/// Bytes charged per surviving instruction by the binary-size proxy.
pub const BYTES_PER_INSTRUCTION: usize = 16;
/// Fixed per-method overhead (metadata, frames) charged by the proxy.
pub const BYTES_PER_METHOD: usize = 48;

/// The metric set of one (benchmark × configuration) cell of Table 1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Methods marked reachable by the analysis.
    pub reachable_methods: usize,
    /// `instanceof` branches where both successors stay live.
    pub type_checks: usize,
    /// Null-comparison branches where both successors stay live.
    pub null_checks: usize,
    /// Primitive-comparison branches where both successors stay live.
    pub prim_checks: usize,
    /// Virtual call sites with two or more resolved targets.
    pub poly_calls: usize,
    /// Instructions in reachable methods whose flows are enabled (dead
    /// branches excluded).
    pub live_instructions: usize,
    /// The binary-size proxy in bytes (see [`BYTES_PER_INSTRUCTION`]).
    pub binary_size_bytes: usize,
}

impl Metrics {
    /// Binary size in (fractional) megabytes.
    pub fn binary_size_mb(&self) -> f64 {
        self.binary_size_bytes as f64 / (1024.0 * 1024.0)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "methods={} type={} null={} prim={} poly={} instrs={} size={}B",
            self.reachable_methods,
            self.type_checks,
            self.null_checks,
            self.prim_checks,
            self.poly_calls,
            self.live_instructions,
            self.binary_size_bytes
        )
    }
}

/// Statistics of the SCC-aware priority scheduler, embedded in
/// [`crate::SolveStats`]. All zero under the forced FIFO scheduler and the
/// reference solver (which never maintain the online order).
///
/// Two kinds of fields live here, explicitly separated:
///
/// * **Session-cumulative** — condensation snapshots and maintenance totals
///   that accumulate monotonically across every solve of a session
///   (everything not listed as per-solve below, plus the `*_total` pop
///   counters).
/// * **Per-solve** — [`SchedulerStats::adaptive_pops`] and
///   [`SchedulerStats::adaptive_re_pops`] are re-based at the start of each
///   `solve()`, and [`SchedulerStats::flip_at_step`] is relative to the
///   solve that flipped; a *resumed* solve therefore reports its own
///   behaviour, never residue from the prior solve. (The flip itself stays
///   sticky: `flips` is cumulative and at most 1 per session.)
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Live strongly connected components of the PVPG (including
    /// singletons) under the online order.
    pub scc_count: usize,
    /// Live flows sitting in SCCs of size ≥ 2 (the cyclic region mass the
    /// priority ordering localizes).
    pub cyclic_flows: usize,
    /// Size of the largest SCC.
    pub max_scc_size: usize,
    /// Order-violating edge insertions repaired in place by the online
    /// order (the bounded work that replaced the PR 2–4 batch condensation
    /// recomputes; those reported as `scc_recomputes`, which no longer
    /// exist).
    pub order_repairs: u64,
    /// Components relocated by those repairs — the total affected-region
    /// mass, bounded per repair by the smaller side of the bidirectional
    /// search.
    pub order_comps_moved: u64,
    /// Component unions performed by cycle collapses.
    pub scc_merges: u64,
    /// Components relabeled by list-labeling gap maintenance.
    pub order_relabels: u64,
    /// Worklist steps taken on flows inside non-trivial SCCs while the SCC
    /// queue was active — with `steps` this yields the steps-per-SCC
    /// profile of the cyclic regions.
    pub steps_in_cycles: u64,
    /// Queued flows re-bucketed because an order repair relocated their
    /// component while they sat in the queue (the pop paths self-heal
    /// stale entries; this is the bounded replacement for the old
    /// wholesale bucket migration at recompute time).
    pub rebucketed_flows: u64,
    /// Adaptive-scheduler FIFO→SCC flips (0 when the re-enqueue rate never
    /// tripped the detector, or under a forced scheduler). At most 1 per
    /// session: the flip is sticky — once a workload has demonstrated
    /// re-processing, resumed solves stay on the SCC queue.
    pub flips: u64,
    /// Worklist steps *into the solve that flipped* at which the flip
    /// occurred (0 when no flip happened). An event record: it keeps its
    /// value on later solves of the same session.
    pub flip_at_step: u64,
    /// **Per-solve**: worklist dequeues observed by the adaptive flip
    /// detector during the most recent solve's FIFO phase (0 under forced
    /// schedulers and for solves after the flip).
    pub adaptive_pops: u64,
    /// **Per-solve**: of [`SchedulerStats::adaptive_pops`], how many
    /// dequeued a flow that had already been processed at least once —
    /// every re-enqueue is observed when it drains, so this is the
    /// numerator of the re-enqueue rate the flip decision is based on.
    pub adaptive_re_pops: u64,
    /// Session-cumulative total behind [`SchedulerStats::adaptive_pops`].
    pub adaptive_pops_total: u64,
    /// Session-cumulative total behind
    /// [`SchedulerStats::adaptive_re_pops`].
    pub adaptive_re_pops_total: u64,
    /// Parallel SCC rounds taken (each drains at least one bucket).
    pub antichain_rounds: u64,
    /// Total buckets drained by those rounds — strictly greater than
    /// [`SchedulerStats::antichain_rounds`] exactly when multi-bucket
    /// antichain batching happened.
    pub antichain_batched_buckets: u64,
    /// Parallel rounds that declined antichain batching because pending
    /// structural changes made readiness untrustworthy. Structurally **0**
    /// since the online-order scheduler (PR 5): readiness is answered from
    /// live predecessor lists, so there is no dirty window to skip on.
    /// Retained so captures and regression tests can assert the guarantee.
    pub antichain_dirty_round_skips: u64,
    /// Lazy in-edge dedup passes run by the antichain readiness query when
    /// its predecessor budget was exhausted (duplicate in-edge entries
    /// accumulate through cycle collapses and fan-in wiring; the dedup
    /// keeps them from permanently starving readiness detection).
    pub in_edge_dedups: u64,
    /// In-edge entries pruned by those passes (duplicates of an already
    /// seen predecessor component, plus intra-component entries).
    pub in_edges_pruned: u64,
}

/// Interrupt, resume, and worker-panic counters of a session, embedded in
/// [`crate::SolveStats`]. Session-cumulative, like `steps`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InterruptStats {
    /// Solves that ended at a checkpoint instead of the fixpoint (budget
    /// exhausted or cancel token tripped — see
    /// [`crate::SolveOutcome::Interrupted`]).
    pub interrupts: u64,
    /// Solves that resumed after an interrupted one (for a session that
    /// always runs to completion this stays 0).
    pub resumed_after_interrupt: u64,
    /// Parallel phase-A worker panics caught and rolled back (each one
    /// degraded the session to sequential solving —
    /// [`crate::AnalysisError::WorkerPanicked`]).
    pub worker_panics: u64,
}

/// Retraction / edit invalidation counters of a session, embedded in
/// [`crate::SolveStats`]. Session-cumulative, like `steps`. All zero for a
/// session that never called
/// [`retract_roots`](crate::AnalysisSession::retract_roots) or
/// [`apply_edit`](crate::AnalysisSession::apply_edit).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InvalidationStats {
    /// Root methods retracted from the engine after having been solved in
    /// (roots removed while still pending are not counted — nothing was
    /// derived from them).
    pub retractions: u64,
    /// Method-body edits applied ([`crate::MethodEdit`] — each disable and
    /// each restore counts once).
    pub edits: u64,
    /// Methods whose PVPG fragments were deactivated by the taint closure
    /// (the over-delete region of the DRed-style invalidation; see the
    /// checkpoint argument in `engine.rs`).
    pub invalidated_methods: u64,
    /// Flows reset to bottom by invalidations (fragment flows, killed
    /// injection sources, and tainted global sinks).
    pub invalidated_flows: u64,
    /// Worklist steps spent re-deriving after an invalidation: the steps
    /// between the first invalidation since the last completed solve and
    /// the completion of the solve that drained it. The `edit-` trajectory
    /// family compares this against the fresh-solve step count.
    pub rederive_steps: u64,
}

/// Computes the counter metrics from a finished analysis (any
/// [`AnalysisSnapshot`] view — owned results delegate through
/// [`crate::AnalysisResult::metrics`]).
pub fn compute_metrics(result: &AnalysisSnapshot<'_>, program: &Program) -> Metrics {
    let g = result.graph();
    let mut m = Metrics {
        reachable_methods: result.reachable_methods().len(),
        // PolyCalls shares one definition with `CallGraphQuery::poly_call_count`.
        poly_calls: result.poly_call_sites(),
        ..Metrics::default()
    };

    for (&method, mg) in &g.methods {
        let body = match &program.method(method).body {
            Some(b) => b,
            None => continue,
        };

        // Branching-instruction counters: a check survives when the `if`
        // itself is live and neither branch is proven dead.
        for rec in &mg.ifs {
            let if_live = g.flow(mg.block_preds[rec.block.index()]).is_active();
            if !if_live {
                continue;
            }
            let then_live = g.flow(rec.then_pred).is_active();
            let else_live = g.flow(rec.else_pred).is_active();
            if then_live && else_live {
                match rec.category {
                    CheckCategory::Type => m.type_checks += 1,
                    CheckCategory::Null => m.null_checks += 1,
                    CheckCategory::Prim => m.prim_checks += 1,
                }
            }
        }

        // Live instructions: statements whose flows are enabled, plus one
        // terminator per live block.
        for (bi, _block) in body.iter_blocks() {
            let block_live = g.flow(mg.block_preds[bi.index()]).is_active();
            if block_live {
                m.live_instructions += 1; // terminator
            }
            for &f in &mg.stmt_flows[bi.index()] {
                if g.flow(f).enabled {
                    m.live_instructions += 1;
                }
            }
        }
    }

    m.binary_size_bytes =
        m.live_instructions * BYTES_PER_INSTRUCTION + m.reachable_methods * BYTES_PER_METHOD;
    m
}
