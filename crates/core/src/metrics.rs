//! The paper's evaluation metrics (§6 "Counter Metrics"): per benchmark and
//! configuration, the number of reachable methods, the branching
//! instructions that cannot be removed or simplified using the analysis
//! results (split into Type / Null / Prim checks), the virtual calls that
//! could not be devirtualized (PolyCalls), and the binary-size proxy.

use crate::graph::CheckCategory;
use crate::report::AnalysisSnapshot;
use skipflow_ir::Program;
use std::fmt;

/// Bytes charged per surviving instruction by the binary-size proxy.
pub const BYTES_PER_INSTRUCTION: usize = 16;
/// Fixed per-method overhead (metadata, frames) charged by the proxy.
pub const BYTES_PER_METHOD: usize = 48;

/// The metric set of one (benchmark × configuration) cell of Table 1.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Methods marked reachable by the analysis.
    pub reachable_methods: usize,
    /// `instanceof` branches where both successors stay live.
    pub type_checks: usize,
    /// Null-comparison branches where both successors stay live.
    pub null_checks: usize,
    /// Primitive-comparison branches where both successors stay live.
    pub prim_checks: usize,
    /// Virtual call sites with two or more resolved targets.
    pub poly_calls: usize,
    /// Instructions in reachable methods whose flows are enabled (dead
    /// branches excluded).
    pub live_instructions: usize,
    /// The binary-size proxy in bytes (see [`BYTES_PER_INSTRUCTION`]).
    pub binary_size_bytes: usize,
}

impl Metrics {
    /// Binary size in (fractional) megabytes.
    pub fn binary_size_mb(&self) -> f64 {
        self.binary_size_bytes as f64 / (1024.0 * 1024.0)
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "methods={} type={} null={} prim={} poly={} instrs={} size={}B",
            self.reachable_methods,
            self.type_checks,
            self.null_checks,
            self.prim_checks,
            self.poly_calls,
            self.live_instructions,
            self.binary_size_bytes
        )
    }
}

/// Statistics of the SCC-aware priority scheduler, embedded in
/// [`crate::SolveStats`]. All zero under the FIFO scheduler and the
/// reference solver.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// SCCs in the PVPG at the last condensation recompute.
    pub scc_count: usize,
    /// Flows sitting in SCCs of size ≥ 2 at the last recompute (the cyclic
    /// region mass the priority ordering localizes).
    pub cyclic_flows: usize,
    /// Size of the largest SCC at the last recompute.
    pub max_scc_size: usize,
    /// Condensation recomputations (1 at solve start + one per tripped
    /// dirty-counter batch).
    pub scc_recomputes: u64,
    /// Worklist steps taken on flows inside non-trivial SCCs — with
    /// `steps` this yields the steps-per-SCC profile of the cyclic regions.
    pub steps_in_cycles: u64,
    /// Queued flows migrated between priority buckets across recomputes.
    pub rebucketed_flows: u64,
    /// Adaptive-scheduler FIFO→SCC flips (0 when the re-enqueue rate never
    /// tripped the detector, or under a forced scheduler). At most 1 per
    /// session: the flip is sticky — once a workload has demonstrated
    /// re-processing, resumed solves stay on the SCC queue.
    pub flips: u64,
    /// Cumulative worklist-step count at the most recent flip (0 when no
    /// flip happened) — how long the FIFO phase ran before the re-push rate
    /// tripped.
    pub flip_at_step: u64,
    /// Worklist dequeues observed by the adaptive flip detector while in
    /// the FIFO phase (0 under forced schedulers).
    pub adaptive_pops: u64,
    /// Of [`SchedulerStats::adaptive_pops`], how many dequeued a flow that
    /// had already been processed at least once — every re-enqueue is
    /// observed when it drains, so this is the numerator of the re-enqueue
    /// rate the flip decision is based on.
    pub adaptive_re_pops: u64,
    /// Parallel rounds that fell back to a singleton bucket because
    /// pending structural changes (`dirty > 0`) made the antichain
    /// readiness check untrustworthy — how much multi-bucket batching the
    /// round scheduler conservatively declined (0 for sequential solves
    /// and FIFO rounds).
    pub antichain_dirty_round_skips: u64,
}

/// Computes the counter metrics from a finished analysis (any
/// [`AnalysisSnapshot`] view — owned results delegate through
/// [`crate::AnalysisResult::metrics`]).
pub fn compute_metrics(result: &AnalysisSnapshot<'_>, program: &Program) -> Metrics {
    let g = result.graph();
    let mut m = Metrics {
        reachable_methods: result.reachable_methods().len(),
        // PolyCalls shares one definition with `CallGraphQuery::poly_call_count`.
        poly_calls: result.poly_call_sites(),
        ..Metrics::default()
    };

    for (&method, mg) in &g.methods {
        let body = match &program.method(method).body {
            Some(b) => b,
            None => continue,
        };

        // Branching-instruction counters: a check survives when the `if`
        // itself is live and neither branch is proven dead.
        for rec in &mg.ifs {
            let if_live = g.flow(mg.block_preds[rec.block.index()]).is_active();
            if !if_live {
                continue;
            }
            let then_live = g.flow(rec.then_pred).is_active();
            let else_live = g.flow(rec.else_pred).is_active();
            if then_live && else_live {
                match rec.category {
                    CheckCategory::Type => m.type_checks += 1,
                    CheckCategory::Null => m.null_checks += 1,
                    CheckCategory::Prim => m.prim_checks += 1,
                }
            }
        }

        // Live instructions: statements whose flows are enabled, plus one
        // terminator per live block.
        for (bi, _block) in body.iter_blocks() {
            let block_live = g.flow(mg.block_preds[bi.index()]).is_active();
            if block_live {
                m.live_instructions += 1; // terminator
            }
            for &f in &mg.stmt_flows[bi.index()] {
                if g.flow(f).enabled {
                    m.live_instructions += 1;
                }
            }
        }
    }

    m.binary_size_bytes =
        m.live_instructions * BYTES_PER_INSTRUCTION + m.reachable_methods * BYTES_PER_METHOD;
    m
}
