//! # skipflow-core
//!
//! SkipFlow (Kozak, Stancu, Vojnar, Wimmer — CGO 2025): a predicated
//! points-to analysis that
//!
//! 1. tracks **primitive constant values** interprocedurally through the
//!    lattice `Empty ⊑ {c} ⊑ Any`, and
//! 2. models the branching structure of the program with **predicate
//!    edges**: a flow only propagates values once the condition guarding it
//!    has a non-empty value state.
//!
//! Both features ride on a **predicated value propagation graph** (PVPG)
//! whose vertices ("flows") are connected by *use*, *predicate*, and
//! *observe* edges (paper §4). The baseline type-based points-to analysis of
//! GraalVM Native Image is the same engine with both features switched off —
//! see [`AnalysisConfig::baseline_pta`].
//!
//! ## Quick example
//!
//! ```
//! use skipflow_core::{analyze, AnalysisConfig};
//! use skipflow_ir::frontend::compile;
//!
//! let program = compile(
//!     "class Config { static method flag(): int { return 0; } }
//!      class App {
//!        static method used(): void { return; }
//!        static method dead(): void { return; }
//!        static method main(): void {
//!          if (Config.flag()) { App.dead(); } else { App.used(); }
//!        }
//!      }",
//! )?;
//! let app = program.type_by_name("App").unwrap();
//! let main = program.method_by_name(app, "main").unwrap();
//!
//! let result = analyze(&program, &[main], &AnalysisConfig::skipflow());
//!
//! // SkipFlow propagates the constant 0 out of Config.flag() and proves the
//! // then-branch dead: App.dead is never analyzed.
//! let dead = program.method_by_name(app, "dead").unwrap();
//! let used = program.method_by_name(app, "used").unwrap();
//! assert!(!result.is_reachable(dead));
//! assert!(result.is_reachable(used));
//! # Ok::<(), skipflow_ir::frontend::FrontendError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod build;
pub mod compare;
mod config;
pub mod dot;
mod engine;
mod flow;
mod graph;
pub mod lattice;
pub mod metrics;
mod report;
pub mod shrink;

pub use compare::compare;
pub use config::{AnalysisConfig, SchedulerKind, SolverKind};
pub use engine::analyze;
pub use flow::{CallKind, CallSite, Flow, FlowId, FlowKind, SiteId};
pub use graph::{CheckCategory, IfRecord, MethodGraph, Pvpg, SccInfo};
pub use lattice::{TypeSet, ValueState};
pub use metrics::{compute_metrics, Metrics, SchedulerStats};
pub use report::{AnalysisResult, CallEdge, CallSiteInfo, SolveStats};
