//! # skipflow-core
//!
//! SkipFlow (Kozak, Stancu, Vojnar, Wimmer — CGO 2025): a predicated
//! points-to analysis that
//!
//! 1. tracks **primitive constant values** interprocedurally through the
//!    lattice `Empty ⊑ {c} ⊑ Any`, and
//! 2. models the branching structure of the program with **predicate
//!    edges**: a flow only propagates values once the condition guarding it
//!    has a non-empty value state.
//!
//! Both features ride on a **predicated value propagation graph** (PVPG)
//! whose vertices ("flows") are connected by *use*, *predicate*, and
//! *observe* edges (paper §4). The baseline type-based points-to analysis of
//! GraalVM Native Image is the same engine with both features switched off —
//! see [`AnalysisConfig::baseline_pta`].
//!
//! ## The session API
//!
//! The public surface is built around a reusable [`AnalysisSession`]: a
//! typed builder assembles the configuration and entry points, and the
//! session owns the PVPG, solver state, and scheduler *across* solves.
//! [`AnalysisSession::solve`] drives the fixpoint and yields an
//! [`AnalysisSnapshot`] — a cheap borrowed view carrying every query
//! (reachability, value states, liveness, call-graph edges, metrics).
//! [`AnalysisSession::add_roots`] registers new entry points and the next
//! `solve()` *resumes* the existing fixpoint instead of rebuilding it —
//! result-identical to a fresh run by monotonicity (see the resume notes at
//! the top of `engine.rs`). Invalid inputs surface as a structured
//! [`AnalysisError`] at build time instead of panics mid-solve.
//!
//! The [`CallGraphQuery`] trait is the common query interface across the
//! precision ladder: snapshots, owned results, and the CHA/RTA baselines of
//! the `skipflow-baselines` crate all implement it, so ladder comparisons
//! are written once (`skipflow.refines(&pta)`).
//!
//! One-shot callers can keep using the [`analyze`] convenience wrapper (a
//! build-solve-finish session in one call).
//!
//! ## Interruptible solves
//!
//! Long solves can be stopped at a clean checkpoint and resumed later:
//! budgets on the configuration ([`AnalysisConfig::with_step_budget`],
//! [`AnalysisConfig::with_wall_budget`],
//! [`AnalysisConfig::with_memory_budget`]) and a cooperative [`CancelToken`]
//! interrupt [`AnalysisSession::solve_interruptible`], which returns
//! [`SolveOutcome::Interrupted`] carrying a *partial* snapshot — a sound
//! under-approximation tagged [`Completeness::Partial`]. The next solve
//! resumes from the exact checkpoint, and the eventually completed fixpoint
//! is bit-identical to an uninterrupted run (the checkpoint
//! invariant). Parallel solves additionally isolate worker panics: a
//! panicked round is rolled back, surfaced as
//! [`AnalysisError::WorkerPanicked`], and the session degrades to
//! sequential solving while staying fully usable.
//!
//! For serving, [`AnalysisSession::owned_snapshot`] clones the current
//! state into an [`OwnedSnapshot`] — an `Arc`-backed, `Send + Sync`,
//! cheaply clonable form of the fixpoint that reader threads can query
//! (it implements [`CallGraphQuery`]) while the session keeps solving.
//! The `skipflow-server` crate builds its epoch-based publication and
//! multi-session registry on exactly this primitive.
//!
//! ## Quick example
//!
//! ```
//! use skipflow_core::AnalysisSession;
//! use skipflow_ir::frontend::compile;
//!
//! let program = compile(
//!     "class Config { static method flag(): int { return 0; } }
//!      class App {
//!        static method used(): void { return; }
//!        static method dead(): void { return; }
//!        static method main(): void {
//!          if (Config.flag()) { App.dead(); } else { App.used(); }
//!        }
//!      }",
//! )?;
//! let app = program.type_by_name("App").unwrap();
//! let main = program.method_by_name(app, "main").unwrap();
//!
//! let mut session = AnalysisSession::builder(&program)
//!     .skipflow()
//!     .roots([main])
//!     .build()
//!     .expect("valid inputs");
//! let result = session.solve();
//!
//! // SkipFlow propagates the constant 0 out of Config.flag() and proves the
//! // then-branch dead: App.dead is never analyzed.
//! let dead = program.method_by_name(app, "dead").unwrap();
//! let used = program.method_by_name(app, "used").unwrap();
//! assert!(!result.is_reachable(dead));
//! assert!(result.is_reachable(used));
//! # Ok::<(), skipflow_ir::frontend::FrontendError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod build;
pub mod compare;
mod config;
pub mod dot;
mod engine;
mod error;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod flow;
mod graph;
mod interrupt;
pub mod lattice;
pub mod metrics;
mod query;
mod report;
mod session;
pub mod shrink;

pub use compare::compare;
pub use config::{AnalysisConfig, SchedulerKind, SolverKind, DEFAULT_NARROW_JOIN_WIDTH};
pub use error::{AnalysisError, WorkerPanic};
pub use flow::{CallKind, CallSite, Flow, FlowId, FlowKind, SiteId, MAX_FLOW_COUNT};
pub use graph::{CheckCategory, IfRecord, MethodGraph, OrderStats, Pvpg, SccInfo};
pub use interrupt::{CancelToken, Completeness, InterruptReason, SolveOutcome};
pub use lattice::{TypeSet, ValueState};
pub use metrics::{compute_metrics, InterruptStats, InvalidationStats, Metrics, SchedulerStats};
pub use query::{CallGraphDelta, CallGraphQuery};
pub use report::{
    AnalysisResult, AnalysisSnapshot, CallEdge, CallSiteInfo, OwnedSnapshot, ReachableSet,
    SolveStats,
};
pub use session::{analyze, AnalysisSession, MethodEdit, SessionBuilder};
