//! Flows — the vertices of a predicated value propagation graph (paper §4,
//! Appendix B.3).
//!
//! Flows represent values of parameters, variables, and fields; method calls
//! (doubling as the returned value in the caller); values returned to
//! callers; conditions (including negated/flipped versions); φ joins;
//! φ_pred predicate joins; and the always-enabled predicate `pred_on`.

use crate::error::AnalysisError;
use crate::lattice::ValueState;
use skipflow_ir::{BlockId, CmpOp, FieldId, MethodId, TypeId, TypeRef};
use std::fmt;

/// Identifier of a flow in the PVPG arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub(crate) u32);

/// The hard flow-count capacity: `u32::MAX` itself is reserved as the
/// scheduler's intrusive-list sentinel (`NO_FLOW`), so valid flow indices
/// are `0..MAX_FLOW_COUNT` and at most `MAX_FLOW_COUNT` flows can exist. A
/// graph allowed to reach the sentinel index would silently corrupt the
/// bucket lists — [`FlowId::try_from_index`] rejects it with a structured
/// [`AnalysisError::TooManyFlows`] instead.
pub const MAX_FLOW_COUNT: usize = u32::MAX as usize;

impl FlowId {
    /// Dense arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `FlowId` from a dense arena index (tests and tools; real
    /// ids come from the engine).
    ///
    /// # Panics
    ///
    /// Panics at the [`MAX_FLOW_COUNT`] capacity limit.
    pub fn from_index(i: usize) -> Self {
        // `< u32::MAX`, not `<=`: the sentinel index must never become a
        // real flow id (see [`MAX_FLOW_COUNT`]).
        assert!(i < u32::MAX as usize, "flow id overflow (index {i} collides with NO_FLOW)");
        FlowId(i as u32)
    }

    /// Checked conversion: rejects indices at or beyond the `NO_FLOW`
    /// sentinel with a structured error instead of panicking or (worse)
    /// wrapping into the sentinel value. The engine checks graph capacity
    /// through this before building new method fragments.
    pub fn try_from_index(i: usize) -> Result<Self, AnalysisError> {
        if i >= MAX_FLOW_COUNT {
            return Err(AnalysisError::TooManyFlows {
                flows: i,
                limit: MAX_FLOW_COUNT,
            });
        }
        Ok(FlowId(i as u32))
    }
}

impl fmt::Debug for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fl{}", self.0)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fl{}", self.0)
    }
}

/// Identifier of a call site in the PVPG.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub(crate) u32);

impl SiteId {
    /// Dense arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_index(i: usize) -> Self {
        assert!(i <= u32::MAX as usize, "site id overflow");
        SiteId(i as u32)
    }
}

impl fmt::Debug for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site{}", self.0)
    }
}

/// What a flow stands for, and how its output state is computed from its
/// input state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowKind {
    /// The always-enabled predicate `pred_on`.
    PredOn,
    /// A formal parameter; filters by its declared type when declared-type
    /// filtering is configured.
    Param {
        /// Parameter index (0 = receiver for instance methods).
        index: usize,
        /// Declared type, used for the optional filter and for root
        /// injection.
        declared: TypeRef,
    },
    /// `v ← n`.
    Const(i64),
    /// `v ← Any` — opaque arithmetic.
    AnyPrim,
    /// `v ← new T`; enabling this flow marks `T` instantiated.
    New(TypeId),
    /// `v ← null`.
    NullSource,
    /// A field load `v ← r.x`; observes the receiver, receives use edges
    /// from field sinks as receiver types appear.
    Load {
        /// The accessed field (declaration site).
        field: FieldId,
        /// The observed receiver flow (`None` for static fields, which are
        /// wired at construction time).
        receiver: Option<FlowId>,
    },
    /// A field store `r.x ← v`; observes the receiver, sends use edges into
    /// field sinks as receiver types appear.
    Store {
        /// The accessed field (declaration site).
        field: FieldId,
        /// The observed receiver flow (`None` for static fields).
        receiver: Option<FlowId>,
    },
    /// The single flow representing a field's value state (the paper's
    /// `LookUp(t, x)` target; one per field declaration,
    /// context-insensitive).
    FieldSink {
        /// The field.
        field: FieldId,
    },
    /// A virtual invocation; doubles as the returned value in the caller and
    /// as the predicate for the following statements.
    Invoke {
        /// The call-site record.
        site: SiteId,
    },
    /// A static invocation (extension; see `skipflow_ir::Stmt::InvokeStatic`).
    InvokeStatic {
        /// The call-site record.
        site: SiteId,
    },
    /// The per-method return flow joining all return sites; linked back to
    /// invoke flows in callers.
    MethodReturn,
    /// A pass-through flow at one `return v` site (void returns use a
    /// constant token instead; paper §3 "Method Invocations as Predicates").
    ReturnSite,
    /// A type-check filtering flow: keeps (or, negated, removes) subtypes of
    /// `ty`; `instanceof` always filters `null` out, its negation keeps it.
    TypeFilter {
        /// Tested type.
        ty: TypeId,
        /// `true` for the `!instanceof` branch.
        negated: bool,
    },
    /// A comparison filtering flow: filters its use-input with
    /// [`crate::compare::compare`] against the observed `other` flow.
    CmpFilter {
        /// Comparison operator (already inverted/flipped as required).
        op: CmpOp,
        /// The flow whose output is the right operand.
        other: FlowId,
    },
    /// A φ flow joining values at a control-flow merge.
    Phi,
    /// A φ_pred flow joining predicates at a control-flow merge; enabled as
    /// soon as *any* incoming predicate is (paper §3 "Joining Values").
    PhiPred,
    /// A `throw v` site; passes the thrown value into the global thrown
    /// sink when reachable.
    ThrowSite,
    /// The global pool of thrown exception values.
    ThrownSink,
    /// An exception-handler entry `v ← catch T`: filters the thrown pool
    /// (and, under the coarse policy, all instantiated subtypes of `T`).
    CatchAll {
        /// Handler type bound.
        ty: TypeId,
    },
    /// The global pool unifying unsafe-accessed field values (paper §5).
    UnsafeSink,
    /// An injection source: receives every instantiated subtype of
    /// `declared` (or `Any` for primitives). Used for root-method
    /// parameters and reflectively-accessed fields.
    RootSource {
        /// Declared type bound of the injected values.
        declared: TypeRef,
    },
}

/// One vertex of the PVPG together with its state.
///
/// Adjacency (use / predicate / observe successors) is *not* stored here:
/// it lives in the graph-owned CSR pools of [`crate::graph::Pvpg`], so a
/// worklist step can iterate successors without cloning edge lists.
#[derive(Clone, Debug)]
pub struct Flow {
    /// What the flow stands for.
    pub kind: FlowKind,
    /// The containing method (`None` for the global flows: `pred_on`, field
    /// sinks, the thrown/unsafe pools, and root sources).
    pub method: Option<MethodId>,
    /// The basic block the flow was created for, when applicable (used by
    /// liveness reporting).
    pub block: Option<BlockId>,
    /// Joined input state (from use edges and injections).
    pub in_state: ValueState,
    /// The pending delta: the part of `in_state` that has not yet been
    /// pushed through this flow (difference propagation). Invariants:
    /// `delta ⊑ in_state`, and the delta is drained exactly once per
    /// dequeue of an enabled flow.
    pub delta: ValueState,
    /// Filtered output state; grows monotonically.
    pub out_state: ValueState,
    /// Whether the flow has been enabled by its predicate (paper: only
    /// enabled flows propagate).
    pub enabled: bool,
    /// Width-adaptive fast path: set when a join into this flow skipped the
    /// delta bookkeeping (the flow's live input state was below the
    /// configured narrow-join width), so the pending `delta` may
    /// under-represent the unpushed information. The next worklist step must
    /// then recompute from the *full* input (the Reference step) instead of
    /// draining the delta; the step clears the flag.
    pub needs_full: bool,
}

impl Flow {
    pub(crate) fn new(kind: FlowKind, method: Option<MethodId>, block: Option<BlockId>) -> Self {
        Flow {
            kind,
            method,
            block,
            in_state: ValueState::Empty,
            delta: ValueState::Empty,
            out_state: ValueState::Empty,
            enabled: false,
            needs_full: false,
        }
    }

    /// Enabled with a non-empty output — the condition under which this flow
    /// triggers its outgoing predicate edges.
    pub fn is_active(&self) -> bool {
        self.enabled && self.out_state.is_non_empty()
    }
}

/// Whether a call site dispatches virtually or statically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `v ← v0.m(…)` — resolved per receiver type.
    Virtual,
    /// `v ← T::m(…)` — statically bound.
    Static,
}

/// One invocation site in the PVPG.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Virtual or static.
    pub kind: CallKind,
    /// The invoke flow (result value + predicate for following statements).
    pub flow: FlowId,
    /// The receiver flow (virtual calls only).
    pub receiver: Option<FlowId>,
    /// Argument flows, *including* the receiver at index 0 for virtual
    /// calls — positionally aligned with the callee's body parameters.
    pub args: Vec<FlowId>,
    /// Dispatch selector (virtual calls).
    pub selector: Option<skipflow_ir::SelectorId>,
    /// Statically bound target (static calls).
    pub static_target: Option<MethodId>,
    /// The containing method.
    pub caller: MethodId,
    /// Targets linked so far, in link order (deduplicated; kept as a list
    /// for deterministic reports).
    pub linked: Vec<MethodId>,
    /// O(1) membership companion of `linked`, indexed by method id.
    pub linked_set: skipflow_ir::BitSet,
    /// Receiver types already dispatched (dedup for the Invoke rule).
    pub seen_receiver_types: skipflow_ir::BitSet,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_starts_disabled_and_empty() {
        let f = Flow::new(FlowKind::Phi, None, None);
        assert!(!f.enabled);
        assert!(f.in_state.is_empty());
        assert!(!f.is_active());
    }

    #[test]
    fn is_active_requires_enabled_and_non_empty() {
        let mut f = Flow::new(FlowKind::Const(0), None, None);
        f.enabled = true;
        assert!(!f.is_active(), "empty out-state is inactive");
        f.out_state = ValueState::Const(0);
        assert!(f.is_active(), "false (0) still activates predicates");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(FlowId::from_index(1) < FlowId::from_index(2));
        assert_eq!(SiteId::from_index(3).index(), 3);
    }

    #[test]
    fn flow_id_capacity_excludes_the_sentinel() {
        // The last valid index is one below NO_FLOW (= u32::MAX).
        let last = FlowId::try_from_index(MAX_FLOW_COUNT - 1).unwrap();
        assert_eq!(last.index(), MAX_FLOW_COUNT - 1);
        // The sentinel index itself and anything beyond are structured
        // errors, never a silent wrap or an id equal to NO_FLOW.
        for i in [MAX_FLOW_COUNT, MAX_FLOW_COUNT + 1, usize::MAX] {
            match FlowId::try_from_index(i) {
                Err(AnalysisError::TooManyFlows { flows, limit }) => {
                    assert_eq!(flows, i);
                    assert_eq!(limit, MAX_FLOW_COUNT);
                }
                other => panic!("expected TooManyFlows, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "collides with NO_FLOW")]
    fn flow_id_from_index_rejects_the_sentinel() {
        let _ = FlowId::from_index(u32::MAX as usize);
    }
}
