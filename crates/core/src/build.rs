//! PVPG construction: one sequential pass over a method body
//! (paper Appendix B.4, Figures 12–14).
//!
//! Basic blocks are visited in reverse postorder; each block carries a state
//! `(m, pred)` — a mapping from SSA variables to their current flows, and the
//! most recent predicate. Statements create flows with a predicate edge from
//! `pred`; invokes become the new `pred`; `if` terminators create filtering
//! flows that both refine the tested variables and predicate their branches;
//! `jump` terminators propagate `(m, pred)` into merge blocks, joining
//! predicates with φ_pred flows and colliding variable flows with φ flows.
//!
//! Deviation from the paper's Figure 13 (documented in `DESIGN.md`): flows
//! for the *declared* φ instructions of a merge are created eagerly so that
//! loop back-edges connect loop-carried values correctly; the paper's lazy
//! collision mechanism is kept for the analysis-internal redefinitions
//! introduced by filtering flows. A collision on a back edge can only be a
//! filter refinement of an already-joined definition and is dropped (a sound
//! over-approximation).

use crate::config::AnalysisConfig;
use crate::flow::{CallKind, CallSite, Flow, FlowId, FlowKind};
use crate::graph::{CheckCategory, IfRecord, MethodGraph, Pvpg};
use skipflow_ir::{
    BlockBegin, BlockEnd, BlockId, Cond, Expr, MethodId, Program, Stmt, TypeId, VarId,
};

/// Everything the engine needs to integrate a freshly built method graph.
#[derive(Debug, Default)]
pub(crate) struct BuildOutput {
    /// The per-method graph summary.
    pub graph: MethodGraph,
    /// Index of the first flow created for this method (all flows from here
    /// to the current end of the arena belong to it).
    pub first_flow: usize,
    /// Flows gated directly by `pred_on`, to be enabled immediately (under
    /// the predicate-less baseline the engine enables the whole range
    /// instead).
    pub enables: Vec<FlowId>,
    /// Build-time edges from global flows that may already carry state
    /// (field sinks, the thrown/unsafe pools) and need an initial push.
    pub pushes: Vec<(FlowId, FlowId)>,
    /// Catch flows to subscribe to instantiated exception types (coarse
    /// exception policy).
    pub catch_subscribers: Vec<(TypeId, FlowId)>,
}

/// A small variable→flow map kept sorted by [`VarId`]: method bodies bind a
/// handful of SSA variables, so a sorted vector beats a `BTreeMap` on both
/// lookup and (especially) the per-branch clones `initBlock` performs —
/// cloning is one allocation instead of one per tree node. The sorted order
/// also keeps iteration deterministic, which fixes the order implicit φs
/// are created in.
#[derive(Clone, Debug, Default)]
struct VarMap {
    entries: Vec<(VarId, FlowId)>,
}

impl VarMap {
    fn get(&self, v: VarId) -> Option<FlowId> {
        self.entries
            .binary_search_by_key(&v, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    fn insert(&mut self, v: VarId, f: FlowId) {
        match self.entries.binary_search_by_key(&v, |e| e.0) {
            Ok(i) => self.entries[i].1 = f,
            Err(i) => self.entries.insert(i, (v, f)),
        }
    }

    fn iter(&self) -> impl Iterator<Item = (VarId, FlowId)> + '_ {
        self.entries.iter().copied()
    }
}

/// Per-block construction state (the paper's `(m, pred)` plus the merge
/// bookkeeping). The φ bookkeeping lists are tiny, so plain vectors with
/// linear membership tests replace hash sets.
#[derive(Clone, Debug, Default)]
struct BlockCtx {
    map: VarMap,
    pred: Option<FlowId>,
    phi_pred: Option<FlowId>,
    /// Flows of the declared φs, positionally aligned with the merge's φ list.
    phi_flows: Vec<FlowId>,
    /// Defs of the declared φs (skipped during collision propagation).
    phi_defs: Vec<VarId>,
    /// Implicit φ flows created by collisions (paper Figure 13 `isPhi`).
    implicit_phis: Vec<FlowId>,
    /// Set once the block's own instructions have been processed; back edges
    /// into a visited merge drop refinements instead of creating φs.
    visited: bool,
}

struct Builder<'a> {
    g: &'a mut Pvpg,
    program: &'a Program,
    config: &'a AnalysisConfig,
    method: MethodId,
    out: BuildOutput,
    states: Vec<BlockCtx>,
}

/// Builds the PVPG fragment for method `m` (which must have a body).
pub(crate) fn build_method_graph(
    g: &mut Pvpg,
    program: &Program,
    config: &AnalysisConfig,
    m: MethodId,
) -> BuildOutput {
    let first_flow = g.flow_count();
    let body = program
        .method(m)
        .body
        .as_ref()
        .expect("reachable methods have bodies");
    let n_blocks = body.block_count();

    let mut b = Builder {
        g,
        program,
        config,
        method: m,
        out: BuildOutput {
            first_flow,
            ..BuildOutput::default()
        },
        states: vec![BlockCtx::default(); n_blocks],
    };
    b.out.graph.stmt_flows = vec![Vec::new(); n_blocks];
    b.out.graph.block_preds = vec![FlowId(0); n_blocks];

    // Pre-create φ_pred and declared-φ flows for every merge, so back edges
    // can connect loop-carried values.
    for (id, block) in body.iter_blocks() {
        if let BlockBegin::Merge { phis, .. } = &block.begin {
            let phi_pred = b.new_flow(FlowKind::PhiPred, Some(id));
            let ctx = &mut b.states[id.index()];
            ctx.phi_pred = Some(phi_pred);
            ctx.pred = Some(phi_pred);
            for phi in phis {
                ctx.phi_defs.push(phi.def);
            }
            // φ flows need the φ_pred as predicate.
            let defs: Vec<VarId> = phis.iter().map(|p| p.def).collect();
            for def in defs {
                let f = b.new_flow(FlowKind::Phi, Some(id));
                b.g.add_pred(phi_pred, f);
                let ctx = &mut b.states[id.index()];
                ctx.phi_flows.push(f);
                ctx.map.insert(def, f);
            }
        }
    }

    for block_id in body.reverse_postorder() {
        b.process_block(body, block_id);
    }

    // Record created flows.
    let graph_flows: Vec<FlowId> = (first_flow..b.g.flow_count())
        .map(FlowId::from_index)
        .collect();
    b.out.graph.flows = graph_flows;
    let mut out = b.out;
    // Stamp sites into the method graph (collected during the walk).
    out.graph.sites.sort_unstable();
    out.graph.sites.dedup();
    // Freeze this fragment's construction-time edges into CSR storage.
    g.seal_batch(first_flow);
    out
}

impl Builder<'_> {
    fn new_flow(&mut self, kind: FlowKind, block: Option<BlockId>) -> FlowId {
        self.g.add_flow(Flow::new(kind, Some(self.method), block))
    }

    /// Creates a flow predicated on `pred` (the paper: "each flow is assigned
    /// a predicate edge b.pred ⇝pred f upon its creation"). Flows gated by
    /// `pred_on` are queued for immediate enabling.
    fn new_predicated_flow(&mut self, kind: FlowKind, block: BlockId, pred: FlowId) -> FlowId {
        let f = self.new_flow(kind, Some(block));
        self.g.add_pred(pred, f);
        if pred == self.g.pred_on {
            self.out.enables.push(f);
        }
        f
    }

    fn lookup(&self, ctx: &BlockCtx, v: VarId) -> FlowId {
        ctx.map
            .get(v)
            .unwrap_or_else(|| panic!("validated SSA: {v} must be mapped"))
    }

    fn process_block(&mut self, body: &skipflow_ir::Body, id: BlockId) {
        // Take the accumulated entry context.
        let mut ctx = std::mem::take(&mut self.states[id.index()]);

        match &body.block(id).begin {
            BlockBegin::Start { params } => {
                ctx.pred = Some(self.g.pred_on);
                let md = self.program.method(self.method);
                for (i, p) in params.iter().enumerate() {
                    let declared = md.param_type(i);
                    let f = self.new_predicated_flow(
                        FlowKind::Param { index: i, declared },
                        id,
                        self.g.pred_on,
                    );
                    ctx.map.insert(*p, f);
                    self.out.graph.params.push(f);
                }
            }
            BlockBegin::Merge { .. } => {
                // φ_pred / φ flows pre-created; map already primed by the
                // forward predecessors' propagate calls.
            }
            BlockBegin::Label => {
                // Entry state installed by the predecessor's `if`. A label
                // inside an unreachable region may have none; give it a dead
                // predicate so the block's flows simply stay disabled.
                if ctx.pred.is_none() {
                    let dead = self.new_flow(FlowKind::PhiPred, Some(id));
                    ctx.pred = Some(dead);
                }
            }
        }

        let pred0 = ctx.pred.expect("entry predicate installed");
        self.out.graph.block_preds[id.index()] = pred0;

        // Statements (paper Figure 12). `body` is not reachable through
        // `self`, so iterating it borrows nothing from the builder.
        for stmt in &body.block(id).stmts {
            let f = self.process_stmt(&mut ctx, id, stmt);
            self.out.graph.stmt_flows[id.index()].push(f);
        }

        // Terminator.
        match &body.block(id).end {
            BlockEnd::Return(v) => {
                let pred = ctx.pred.unwrap();
                let site = match *v {
                    Some(v) => {
                        let f = self.new_predicated_flow(FlowKind::ReturnSite, id, pred);
                        let src = self.lookup(&ctx, v);
                        self.g.add_use(src, f);
                        f
                    }
                    None => {
                        // Void return: an artificial constant token signals
                        // that the return is reachable (paper §3).
                        self.new_predicated_flow(FlowKind::Const(0), id, pred)
                    }
                };
                let ret = match self.out.graph.ret {
                    Some(r) => r,
                    None => {
                        let r = self.new_flow(FlowKind::MethodReturn, Some(id));
                        self.out.graph.ret = Some(r);
                        r
                    }
                };
                self.g.add_use(site, ret);
                self.g.add_pred(site, ret);
            }
            BlockEnd::Throw(v) => {
                let pred = ctx.pred.unwrap();
                let f = self.new_predicated_flow(FlowKind::ThrowSite, id, pred);
                let src = self.lookup(&ctx, *v);
                self.g.add_use(src, f);
                let sink = self.g.thrown_sink;
                self.g.add_use(f, sink);
            }
            BlockEnd::Jump(target) => {
                self.propagate(body, &ctx, id, *target);
            }
            BlockEnd::If {
                cond,
                then_block,
                else_block,
            } => {
                let category = self.classify(&ctx, cond);
                let then_pred = self.init_branch(&ctx, id, *then_block, *cond);
                let else_pred = self.init_branch(&ctx, id, *else_block, cond.invert());
                self.out.graph.ifs.push(IfRecord {
                    block: id,
                    category,
                    then_pred,
                    else_pred,
                });
            }
        }

        ctx.visited = true;
        self.states[id.index()] = ctx;
    }

    fn process_stmt(&mut self, ctx: &mut BlockCtx, id: BlockId, stmt: &Stmt) -> FlowId {
        let pred = ctx.pred.unwrap();
        match stmt {
            Stmt::Assign { def, expr } => {
                let kind = match expr {
                    Expr::Const(n) => FlowKind::Const(*n),
                    Expr::AnyPrim => FlowKind::AnyPrim,
                    Expr::New(t) => FlowKind::New(*t),
                    Expr::Null => FlowKind::NullSource,
                };
                let f = self.new_predicated_flow(kind, id, pred);
                ctx.map.insert(*def, f);
                f
            }
            Stmt::Load { def, object, field } => {
                let is_static = self.program.field(*field).is_static;
                let receiver = if is_static {
                    None
                } else {
                    Some(self.lookup(ctx, *object))
                };
                let f = self.new_predicated_flow(
                    FlowKind::Load { field: *field, receiver },
                    id,
                    pred,
                );
                if let Some(recv) = receiver {
                    self.g.add_observe(recv, f);
                } else {
                    let sink = self.g.field_sink(*field);
                    self.g.add_use_dedup(sink, f);
                    self.out.pushes.push((sink, f));
                }
                if self.config.unsafe_fields.contains(field) {
                    let us = self.g.unsafe_sink;
                    self.g.add_use_dedup(us, f);
                    self.out.pushes.push((us, f));
                }
                ctx.map.insert(*def, f);
                f
            }
            Stmt::Store {
                object,
                field,
                value,
            } => {
                let is_static = self.program.field(*field).is_static;
                let receiver = if is_static {
                    None
                } else {
                    Some(self.lookup(ctx, *object))
                };
                let f = self.new_predicated_flow(
                    FlowKind::Store { field: *field, receiver },
                    id,
                    pred,
                );
                let v = self.lookup(ctx, *value);
                self.g.add_use(v, f);
                if let Some(recv) = receiver {
                    self.g.add_observe(recv, f);
                } else {
                    let sink = self.g.field_sink(*field);
                    self.g.add_use_dedup(f, sink);
                }
                if self.config.unsafe_fields.contains(field) {
                    let us = self.g.unsafe_sink;
                    self.g.add_use_dedup(f, us);
                }
                f
            }
            Stmt::Invoke {
                def,
                receiver,
                selector,
                args,
            } => {
                let recv = self.lookup(ctx, *receiver);
                let mut arg_flows = vec![recv];
                for a in args {
                    arg_flows.push(self.lookup(ctx, *a));
                }
                let site = self.g.add_site(CallSite {
                    kind: CallKind::Virtual,
                    flow: FlowId(0), // patched below
                    receiver: Some(recv),
                    args: arg_flows,
                    selector: Some(*selector),
                    static_target: None,
                    caller: self.method,
                    linked: Vec::new(),
                    linked_set: skipflow_ir::BitSet::new(),
                    seen_receiver_types: skipflow_ir::BitSet::new(),
                });
                let f = self.new_predicated_flow(FlowKind::Invoke { site }, id, pred);
                self.g.site_mut(site).flow = f;
                self.g.add_observe(recv, f);
                self.out.graph.sites.push(site);
                ctx.map.insert(*def, f);
                // The invocation becomes the predicate for what follows
                // (paper §3 "Method Invocations as Predicates").
                ctx.pred = Some(f);
                f
            }
            Stmt::InvokeStatic { def, target, args } => {
                let arg_flows: Vec<FlowId> = args.iter().map(|a| self.lookup(ctx, *a)).collect();
                let site = self.g.add_site(CallSite {
                    kind: CallKind::Static,
                    flow: FlowId(0),
                    receiver: None,
                    args: arg_flows,
                    selector: None,
                    static_target: Some(*target),
                    caller: self.method,
                    linked: Vec::new(),
                    linked_set: skipflow_ir::BitSet::new(),
                    seen_receiver_types: skipflow_ir::BitSet::new(),
                });
                let f = self.new_predicated_flow(FlowKind::InvokeStatic { site }, id, pred);
                self.g.site_mut(site).flow = f;
                self.out.graph.sites.push(site);
                ctx.map.insert(*def, f);
                ctx.pred = Some(f);
                f
            }
            Stmt::Catch { def, ty } => {
                let f = self.new_predicated_flow(FlowKind::CatchAll { ty: *ty }, id, pred);
                let sink = self.g.thrown_sink;
                self.g.add_use_dedup(sink, f);
                self.out.pushes.push((sink, f));
                if self.config.coarse_exceptions {
                    self.out.catch_subscribers.push((*ty, f));
                }
                ctx.map.insert(*def, f);
                f
            }
        }
    }

    /// The paper's `propagate` (Figure 13), adjusted for pre-created φs.
    fn propagate(&mut self, body: &skipflow_ir::Body, ctx: &BlockCtx, from: BlockId, target: BlockId) {
        let t_idx = target.index();
        let phi_pred = self.states[t_idx]
            .phi_pred
            .expect("jump targets are merge blocks");
        let pred = ctx.pred.unwrap();
        self.g.add_pred(pred, phi_pred);
        // A φ_pred hanging directly off `pred_on` must be queued for
        // immediate enabling, exactly like the flows `new_predicated_flow`
        // collects: when this fragment is built *during* solving (a callee
        // discovered by dispatch), `pred_on` has already fired and will
        // never walk its predicate successors again — without this, a loop
        // header whose predecessor predicate is `pred_on` would stay
        // disabled and everything in the loop body would be wrongly dead.
        if pred == self.g.pred_on {
            self.out.enables.push(phi_pred);
        }

        // Connect declared φ arguments for this predecessor position.
        if let BlockBegin::Merge { phis, preds } = &body.block(target).begin {
            let j = preds
                .iter()
                .position(|p| *p == from)
                .expect("validated merge predecessor lists");
            for (phi, k) in phis.iter().zip(0..) {
                let phi_flow = self.states[t_idx].phi_flows[k];
                let src = self.lookup(ctx, phi.args[j]);
                self.g.add_use(src, phi_flow);
            }
        }

        // Collision-based propagation of the remaining mappings (filter
        // redefinitions and plain inherited values). `ctx` is the caller's
        // local context, disjoint from `self.states`, so no copy is needed.
        for (v, f) in ctx.map.iter() {
            if self.states[t_idx].phi_defs.contains(&v) {
                continue;
            }
            let existing = self.states[t_idx].map.get(v);
            match existing {
                None => {
                    if !self.states[t_idx].visited {
                        self.states[t_idx].map.insert(v, f);
                    }
                }
                Some(e) if e == f => {}
                Some(e) => {
                    if self.states[t_idx].visited {
                        // Back edge: the collision is a filter refinement of
                        // an already-joined definition; drop it (sound).
                        continue;
                    }
                    if self.states[t_idx].implicit_phis.contains(&e) {
                        self.g.add_use(f, e);
                    } else {
                        let nf = self.new_flow(FlowKind::Phi, Some(target));
                        self.g.add_pred(phi_pred, nf);
                        self.g.add_use(e, nf);
                        self.g.add_use(f, nf);
                        let st = &mut self.states[t_idx];
                        st.map.insert(v, nf);
                        st.implicit_phis.push(nf);
                    }
                }
            }
        }
    }

    /// The paper's `initBlock`/`initUnary`/`initBinary` (Figure 14); installs
    /// the branch block's entry state and returns its entry predicate.
    fn init_branch(&mut self, ctx: &BlockCtx, from: BlockId, target: BlockId, cond: Cond) -> FlowId {
        let pred = ctx.pred.unwrap();
        let mut t_map = ctx.map.clone();
        let t_pred = match cond {
            Cond::InstanceOf { var, ty, negated } => {
                let f = self.new_predicated_flow(FlowKind::TypeFilter { ty, negated }, from, pred);
                let src = self.lookup(ctx, var);
                self.g.add_use(src, f);
                t_map.insert(var, f);
                f
            }
            Cond::Cmp { op, lhs, rhs } => {
                let l = self.lookup(ctx, lhs);
                let r = self.lookup(ctx, rhs);
                let fl = self.new_predicated_flow(FlowKind::CmpFilter { op, other: r }, from, pred);
                self.g.add_use(l, fl);
                self.g.add_observe(r, fl);
                t_map.insert(lhs, fl);
                let fr = self
                    .new_predicated_flow(FlowKind::CmpFilter { op: op.flip(), other: l }, from, fl);
                // Chained predicates: b.pred ⇝ f_l ⇝ f_r.
                self.g.add_use(r, fr);
                self.g.add_observe(l, fr);
                t_map.insert(rhs, fr);
                fr
            }
        };
        let st = &mut self.states[target.index()];
        st.map = t_map;
        st.pred = Some(t_pred);
        st
            .phi_pred = None;
        t_pred
    }

    /// Classification for the counter metrics: `instanceof` → Type; a
    /// comparison against a `null` source → Null; anything else → Prim.
    fn classify(&self, ctx: &BlockCtx, cond: &Cond) -> CheckCategory {
        match cond {
            Cond::InstanceOf { .. } => CheckCategory::Type,
            Cond::Cmp { lhs, rhs, .. } => {
                let is_null = |v: VarId| {
                    ctx.map
                        .get(v)
                        .is_some_and(|f| matches!(self.g.flow(f).kind, FlowKind::NullSource))
                };
                if is_null(*lhs) || is_null(*rhs) {
                    CheckCategory::Null
                } else {
                    CheckCategory::Prim
                }
            }
        }
    }
}

// The unit tests for construction live in `engine.rs` alongside the value
// propagation tests (graph shape is easiest to assert through behaviour),
// plus dedicated structural tests here.
#[cfg(test)]
mod tests {
    use super::*;
    use skipflow_ir::{BodyBuilder, BranchExit, CmpOp, ProgramBuilder, TypeRef};

    fn build_single(
        body_f: impl FnOnce(&mut BodyBuilder),
    ) -> (Program, Pvpg, BuildOutput) {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let m = pb.method(a, "run").static_().returns(TypeRef::Prim).build();
        let mut bb = BodyBuilder::new(&[]);
        body_f(&mut bb);
        pb.set_body(m, bb.finish());
        let program = pb.finish().unwrap();
        let mut g = Pvpg::new();
        let config = AnalysisConfig::skipflow();
        let m = program.method_by_name(program.type_by_name("A").unwrap(), "run").unwrap();
        let out = build_method_graph(&mut g, &program, &config, m);
        (program, g, out)
    }

    #[test]
    fn straight_line_flows_are_pred_on_gated() {
        let (_, g, out) = build_single(|bb| {
            let c = bb.const_(5);
            bb.ret(Some(c));
        });
        // const + return site + method return.
        assert_eq!(out.graph.flows.len(), 3);
        // The constant is gated by pred_on and queued for enabling.
        assert_eq!(out.enables.len(), 2, "const and return site");
        let (_, preds, _) = g.edge_counts();
        assert!(preds >= 2);
        assert!(out.graph.ret.is_some());
    }

    #[test]
    fn if_creates_filter_chain_and_records_category() {
        let (_, g, out) = build_single(|bb| {
            let x = bb.any_prim();
            let ten = bb.const_(10);
            let j = bb.if_else(
                skipflow_ir::Cond::Cmp { op: CmpOp::Lt, lhs: x, rhs: ten },
                |bb| BranchExit::value(bb.const_(1)),
                |bb| BranchExit::value(bb.const_(2)),
            );
            bb.ret(Some(j[0]));
        });
        assert_eq!(out.graph.ifs.len(), 1);
        let rec = &out.graph.ifs[0];
        assert_eq!(rec.category, CheckCategory::Prim);
        // then_pred is the flipped filter f_r whose predicate is f_l.
        let fr = g.flow(rec.then_pred);
        assert!(matches!(fr.kind, FlowKind::CmpFilter { op: CmpOp::Gt, .. }));
        // The else branch uses the inverted condition `x >= 10` (flipped: ≤).
        let er = g.flow(rec.else_pred);
        assert!(matches!(er.kind, FlowKind::CmpFilter { op: CmpOp::Le, .. }));
    }

    #[test]
    fn null_check_is_classified_null() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let m = pb
            .method(a, "run")
            .static_()
            .params(vec![TypeRef::Object(a)])
            .returns(TypeRef::Prim)
            .build();
        pb.build_body(m, |bb| {
            let p = bb.param(0);
            let nl = bb.null_();
            let j = bb.if_else(
                skipflow_ir::Cond::Cmp { op: CmpOp::Eq, lhs: p, rhs: nl },
                |bb| BranchExit::value(bb.const_(1)),
                |bb| BranchExit::value(bb.const_(0)),
            );
            bb.ret(Some(j[0]));
        });
        let program = pb.finish().unwrap();
        let mut g = Pvpg::new();
        let config = AnalysisConfig::skipflow();
        let out = build_method_graph(&mut g, &program, &config, m);
        assert_eq!(out.graph.ifs[0].category, CheckCategory::Null);
    }

    #[test]
    fn instanceof_is_classified_type_and_creates_type_filters() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let m = pb
            .method(a, "run")
            .static_()
            .params(vec![TypeRef::Object(a)])
            .returns(TypeRef::Prim)
            .build();
        pb.build_body(m, |bb| {
            let p = bb.param(0);
            let j = bb.if_else(
                skipflow_ir::Cond::InstanceOf { var: p, ty: a, negated: false },
                |bb| BranchExit::value(bb.const_(1)),
                |bb| BranchExit::value(bb.const_(0)),
            );
            bb.ret(Some(j[0]));
        });
        let program = pb.finish().unwrap();
        let mut g = Pvpg::new();
        let config = AnalysisConfig::skipflow();
        let out = build_method_graph(&mut g, &program, &config, m);
        let rec = &out.graph.ifs[0];
        assert_eq!(rec.category, CheckCategory::Type);
        assert!(matches!(
            g.flow(rec.then_pred).kind,
            FlowKind::TypeFilter { negated: false, .. }
        ));
        assert!(matches!(
            g.flow(rec.else_pred).kind,
            FlowKind::TypeFilter { negated: true, .. }
        ));
    }

    #[test]
    fn invoke_becomes_predicate_of_following_statements() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let callee = pb.method(a, "f").returns(TypeRef::Prim).build();
        pb.set_trivial_body(callee, Some(1));
        let sel = pb.selector("f", 0);
        let m = pb
            .method(a, "run")
            .static_()
            .params(vec![TypeRef::Object(a)])
            .returns(TypeRef::Prim)
            .build();
        pb.build_body(m, |bb| {
            let p = bb.param(0);
            let r = bb.invoke(p, sel, &[]);
            let c = bb.const_(9);
            let _ = c;
            bb.ret(Some(r));
        });
        let program = pb.finish().unwrap();
        let mut g = Pvpg::new();
        let config = AnalysisConfig::skipflow();
        let out = build_method_graph(&mut g, &program, &config, m);
        assert_eq!(out.graph.sites.len(), 1);
        let site = g.site(out.graph.sites[0]);
        let invoke_flow = site.flow;
        // The const created after the invoke is predicated by the invoke.
        let const_flow = out
            .graph
            .flows
            .iter()
            .find(|&&f| matches!(g.flow(f).kind, FlowKind::Const(9)))
            .copied()
            .unwrap();
        assert!(
            g.pred_targets(invoke_flow).any(|t| t == const_flow),
            "invoke must predicate the following statement"
        );
    }

    #[test]
    fn loop_phis_receive_back_edge_use_edges() {
        let (_, g, out) = build_single(|bb| {
            let zero = bb.const_(0);
            let hundred = bb.const_(100);
            let after = bb.while_loop(
                &[zero],
                |_, p| skipflow_ir::Cond::Cmp { op: CmpOp::Lt, lhs: p[0], rhs: hundred },
                |bb, _| BranchExit::Values(vec![bb.any_prim()]),
            );
            bb.ret(Some(after[0]));
        });
        // Find the φ flow: it must have two incoming use edges — one from the
        // initial constant, one from the loop-body AnyPrim.
        let phi = out
            .graph
            .flows
            .iter()
            .find(|&&f| matches!(g.flow(f).kind, FlowKind::Phi))
            .copied()
            .expect("loop φ exists");
        let incoming: Vec<FlowId> = out
            .graph
            .flows
            .iter()
            .copied()
            .filter(|&f| g.use_targets(f).any(|t| t == phi))
            .collect();
        assert_eq!(incoming.len(), 2, "initial value and back-edge value");
        assert!(incoming
            .iter()
            .any(|&f| matches!(g.flow(f).kind, FlowKind::AnyPrim)));
    }

    #[test]
    fn void_return_produces_token_const() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let m = pb.method(a, "run").static_().returns(TypeRef::Void).build();
        pb.set_trivial_body(m, None);
        let program = pb.finish().unwrap();
        let mut g = Pvpg::new();
        let config = AnalysisConfig::skipflow();
        let out = build_method_graph(&mut g, &program, &config, m);
        let ret = out.graph.ret.unwrap();
        // The return site feeding the method return is a Const(0) token.
        let token = out
            .graph
            .flows
            .iter()
            .copied()
            .find(|&f| g.use_targets(f).any(|t| t == ret))
            .unwrap();
        assert!(matches!(g.flow(token).kind, FlowKind::Const(0)));
    }

    #[test]
    fn throw_connects_to_thrown_sink() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let exc = pb.add_class("Err");
        let m = pb.method(a, "boom").static_().returns(TypeRef::Void).build();
        pb.build_body(m, |bb| {
            let e = bb.new_obj(exc);
            bb.throw(e);
        });
        let program = pb.finish().unwrap();
        let mut g = Pvpg::new();
        let config = AnalysisConfig::skipflow();
        let out = build_method_graph(&mut g, &program, &config, m);
        assert!(out.graph.ret.is_none(), "throwing methods have no return flow");
        let throw_site = out
            .graph
            .flows
            .iter()
            .copied()
            .find(|&f| matches!(g.flow(f).kind, FlowKind::ThrowSite))
            .unwrap();
        assert!(g.use_targets(throw_site).any(|t| t == g.thrown_sink));
    }
}
