//! Deterministic fault injection for the engine (`fault-inject` feature).
//!
//! The interrupt/recovery machinery has paths no public API can reach
//! deterministically: a cancel token tripping at an exact worklist step, or
//! a worker thread panicking inside a specific parallel round. This module
//! provides a step-indexed [`FaultPlan`] the engine consults (only when the
//! `fault-inject` feature is compiled in — the hooks do not exist in normal
//! builds) so the differential test family can interrupt at every `k` along
//! a sweep and prove resume is bit-identical, and can crash a worker on
//! purpose to verify the session degrades instead of poisoning.
//!
//! Every injection fires **once**: the engine consumes the trigger when it
//! fires, so a resumed solve is not re-interrupted at the same index.

/// A deterministic, step-indexed injection plan, installed with
/// [`crate::AnalysisConfig::with_fault_plan`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Behave as if the cancel token tripped once the cumulative worklist
    /// step count reaches this value (checked before every step, ignoring
    /// the production check stride, so the interrupt lands exactly).
    pub cancel_at_step: Option<u64>,
    /// Report a step-budget exhaustion once the cumulative step count
    /// reaches this value (exercises the budget path without configuring a
    /// real budget).
    pub budget_exhaust_at_step: Option<u64>,
    /// Panic inside a phase-A worker of the parallel solver during this
    /// (0-based, cumulative) round. The panic payload contains
    /// [`INJECTED_PANIC_MARKER`] so test panic hooks can recognize it.
    pub panic_in_worker_at_round: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self == &Self::default()
    }
}

/// Substring present in every injected worker-panic payload.
pub const INJECTED_PANIC_MARKER: &str = "fault-inject: injected worker panic";

/// The engine's mutable view of a plan: triggers are consumed as they fire.
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    pub(crate) plan: FaultPlan,
    /// Armed by the parallel solver at the start of the target round; the
    /// first phase-A worker to observe it panics (atomic swap, so exactly
    /// one panic fires even with many workers).
    pub(crate) panic_armed: skipflow_modelcheck::sync::atomic::AtomicBool,
    /// Cumulative parallel rounds taken (the index `panic_in_worker_at_round`
    /// refers to).
    pub(crate) rounds: u64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            ..Default::default()
        }
    }

    /// Step-indexed interrupt injections; consumed on fire.
    pub(crate) fn poll_step(&mut self, steps: u64) -> Option<crate::InterruptReason> {
        if let Some(k) = self.plan.cancel_at_step {
            if steps >= k {
                self.plan.cancel_at_step = None;
                return Some(crate::InterruptReason::Cancelled);
            }
        }
        if let Some(k) = self.plan.budget_exhaust_at_step {
            if steps >= k {
                self.plan.budget_exhaust_at_step = None;
                return Some(crate::InterruptReason::StepBudget { budget: k });
            }
        }
        None
    }

    /// Called by the parallel solver at each round start: arms the worker
    /// panic when this round is the target (consumed on arm).
    pub(crate) fn begin_round(&mut self) {
        let round = self.rounds;
        self.rounds += 1;
        if self.plan.panic_in_worker_at_round == Some(round) {
            self.plan.panic_in_worker_at_round = None;
            self.panic_armed
                .store(true, skipflow_modelcheck::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Polled from phase-A workers (shared context): the first caller after
    /// arming wins and must panic.
    pub(crate) fn take_worker_panic(&self) -> bool {
        self.panic_armed
            .swap(false, skipflow_modelcheck::sync::atomic::Ordering::Relaxed)
    }
}
