//! The compiler client of §6 "Impact on Compiler Optimizations": consume an
//! [`AnalysisResult`] and produce a *smaller program*.
//!
//! Native Image uses the analysis to decide what to compile into the binary;
//! this module performs the equivalent ahead-of-time shrinking on the base
//! language:
//!
//! * **unreachable methods are dropped** entirely (their declarations
//!   disappear; virtual dispatch can never select them because the analysis
//!   proved no reachable receiver resolves to them);
//! * **dead blocks are stubbed**: their statements are removed and replaced
//!   by `throw new UnreachableStub()` — the moral equivalent of the
//!   deoptimization/abort stubs an AOT compiler plants on paths the analysis
//!   proved dead;
//! * merge blocks lose the predecessors whose jumps disappeared, and φs drop
//!   the corresponding arguments.
//!
//! The shrunk program re-validates from scratch, and (by the differential
//! tests) behaves identically under the reference interpreter: execution
//! never enters the stubbed regions. Encoding both programs with
//! [`skipflow_ir::encode`] turns the paper's binary-size metric into real
//! bytes.

use crate::report::AnalysisResult;
use skipflow_ir::{
    Block, BlockBegin, BlockEnd, Body, MethodId, Phi, Program, ProgramBuilder, Stmt, TypeId, VarData, VarId, ValidationErrors,
};
use std::collections::HashMap;

/// Statistics of one shrink run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Concrete methods in the input program.
    pub methods_before: usize,
    /// Concrete methods kept.
    pub methods_after: usize,
    /// Blocks replaced by unreachable stubs.
    pub blocks_stubbed: usize,
    /// Statements removed (from dropped methods and stubbed blocks).
    pub instructions_removed: usize,
}

/// The outcome of shrinking: the new program plus the method id mapping.
#[derive(Debug)]
pub struct Shrunk {
    /// The shrunk, re-validated program.
    pub program: Program,
    /// Old method id → new method id, for kept methods.
    pub method_map: HashMap<MethodId, MethodId>,
    /// Statistics.
    pub stats: ShrinkStats,
}

/// Shrinks `program` according to `result` (which must have been computed
/// for this exact program).
///
/// Types, fields, and selectors are kept wholesale — their metadata is cheap
/// and keeping ids stable avoids remapping every instruction operand; the
/// savings live in the method bodies, as in the paper's binary-size metric.
///
/// # Examples
///
/// ```
/// use skipflow_core::{analyze, AnalysisConfig};
/// use skipflow_core::shrink::shrink;
/// use skipflow_ir::frontend::compile;
///
/// let program = compile(
///     "class Dead { static method never(): void { return; } }
///      class Main { static method main(): void { return; } }",
/// )?;
/// let main_cls = program.type_by_name("Main").unwrap();
/// let main = program.method_by_name(main_cls, "main").unwrap();
/// let result = analyze(&program, &[main], &AnalysisConfig::skipflow());
///
/// let shrunk = shrink(&program, &result).expect("rebuild validates");
/// assert_eq!(shrunk.stats.methods_after, 1, "only main survives");
/// # Ok::<(), skipflow_ir::frontend::FrontendError>(())
/// ```
///
/// # Errors
///
/// Returns the validation failures of the rebuilt program — impossible
/// unless there is a bug in the shrinker (the tests lean on this).
pub fn shrink(program: &Program, result: &AnalysisResult) -> Result<Shrunk, ValidationErrors> {
    let mut pb = ProgramBuilder::new();
    let mut stats = ShrinkStats::default();

    // 1. Types, verbatim (ids preserved: same declaration order).
    for t in program.iter_types().skip(1) {
        let td = program.type_data(t);
        match td.kind {
            skipflow_ir::TypeKind::Interface => {
                pb.add_interface(&td.name, &td.interfaces);
            }
            kind => {
                let mut cb = pb.class(&td.name);
                if let Some(s) = td.superclass {
                    cb = cb.extends(s);
                }
                for &i in &td.interfaces {
                    cb = cb.implements_(i);
                }
                if kind == skipflow_ir::TypeKind::AbstractClass {
                    cb = cb.abstract_();
                }
                cb.build();
            }
        }
    }
    // The stub error class used by dead-block stubs.
    let stub_error = pb.add_class("UnreachableStub");

    // 2. Selectors in id order (ids preserved).
    for i in 0..program.selector_count() {
        let s = program.selector(skipflow_ir::SelectorId::from_index(i));
        pb.selector(&s.name, s.arity);
    }

    // 3. Fields, verbatim (ids preserved).
    for f in program.iter_fields() {
        let fd = program.field(f);
        if fd.is_static {
            pb.add_static_field(fd.owner, &fd.name, fd.ty);
        } else {
            pb.add_field(fd.owner, &fd.name, fd.ty);
        }
    }

    // 4. Methods: abstract declarations survive (they shape dispatch);
    //    concrete methods survive iff reachable.
    let mut method_map: HashMap<MethodId, MethodId> = HashMap::new();
    for m in program.iter_methods() {
        let md = program.method(m);
        if md.body.is_some() {
            stats.methods_before += 1;
        }
        let keep = md.is_abstract || result.is_reachable(m);
        if !keep {
            stats.instructions_removed += md
                .body
                .as_ref()
                .map(Body::instruction_count)
                .unwrap_or(0);
            continue;
        }
        let mut mb = pb
            .method(md.owner, &md.name)
            .params(md.sig.params.clone())
            .returns(md.sig.ret);
        if md.is_static {
            mb = mb.static_();
        }
        if md.is_abstract {
            mb = mb.abstract_();
        }
        let new_id = mb.build();
        method_map.insert(m, new_id);
        if md.body.is_some() {
            stats.methods_after += 1;
        }
    }

    // 5. Bodies: live statements verbatim (static targets remapped); dead
    //    blocks — and dead block *tails* after never-returning calls — are
    //    stubbed.
    for (old, new) in method_map.clone() {
        let md = program.method(old);
        let Some(body) = &md.body else { continue };
        let shrunk = shrink_body(body, result, old, stub_error, &method_map, &mut stats);
        pb.set_body(new, shrunk);
    }

    let program = pb.finish()?;
    Ok(Shrunk {
        program,
        method_map,
        stats,
    })
}

fn shrink_body(
    body: &Body,
    result: &AnalysisResult,
    method: MethodId,
    stub_error: TypeId,
    method_map: &HashMap<MethodId, MethodId>,
    stats: &mut ShrinkStats,
) -> Body {
    let live = result.live_blocks(method);
    let mut vars: Vec<VarData> = body.vars.clone();
    let fresh_var = |vars: &mut Vec<VarData>| -> VarId {
        let id = VarId::from_index(vars.len());
        vars.push(VarData {
            name: "stub".to_string(),
        });
        id
    };

    let is_live = |b: skipflow_ir::BlockId| live.get(b.index()).copied().unwrap_or(false);
    // A live block may still have a dead *tail*: statements after a
    // never-returning call are disabled. The prefix of enabled statements is
    // kept; a truncated block loses its terminator (and so its jump).
    let live_prefix = |b: skipflow_ir::BlockId| -> usize {
        let n = body.block(b).stmts.len();
        (0..n)
            .find(|&i| result.stmt_enabled(method, b, i) == Some(false))
            .unwrap_or(n)
    };
    // A block reaches its original terminator iff it is live and untruncated;
    // merges must drop the predecessors whose jumps disappeared.
    let exits_normally =
        |b: skipflow_ir::BlockId| is_live(b) && live_prefix(b) == body.block(b).stmts.len();

    let mut blocks = Vec::with_capacity(body.blocks.len());
    for (id, block) in body.iter_blocks() {
        // Rebuild the header: merges lose dead predecessors.
        let begin = match &block.begin {
            BlockBegin::Merge { phis, preds } => {
                let kept: Vec<usize> = (0..preds.len())
                    .filter(|&j| exits_normally(preds[j]))
                    .collect();
                let new_preds: Vec<_> = kept.iter().map(|&j| preds[j]).collect();
                let new_phis: Vec<Phi> = phis
                    .iter()
                    .map(|phi| Phi {
                        def: phi.def,
                        args: kept.iter().map(|&j| phi.args[j]).collect(),
                    })
                    .collect();
                BlockBegin::Merge {
                    phis: new_phis,
                    preds: new_preds,
                }
            }
            other => other.clone(),
        };

        if !is_live(id) {
            // Whole block stubbed: `throw new UnreachableStub()`.
            stats.blocks_stubbed += 1;
            stats.instructions_removed += block.stmts.len();
            let err = fresh_var(&mut vars);
            blocks.push(Block {
                begin,
                stmts: vec![Stmt::Assign {
                    def: err,
                    expr: skipflow_ir::Expr::New(stub_error),
                }],
                end: BlockEnd::Throw(err),
            });
            continue;
        }

        let prefix = live_prefix(id);
        let mut stmts: Vec<Stmt> = block.stmts[..prefix]
            .iter()
            .map(|s| remap_stmt(s, method_map))
            .collect();
        if prefix == block.stmts.len() {
            blocks.push(Block {
                begin,
                stmts,
                end: block.end.clone(),
            });
        } else {
            // Dead tail after a never-returning call: truncate and stub.
            stats.blocks_stubbed += 1;
            stats.instructions_removed += block.stmts.len() - prefix;
            let err = fresh_var(&mut vars);
            stmts.push(Stmt::Assign {
                def: err,
                expr: skipflow_ir::Expr::New(stub_error),
            });
            blocks.push(Block {
                begin,
                stmts,
                end: BlockEnd::Throw(err),
            });
        }
    }

    Body { blocks, vars }
}

/// Rewrites statically bound call targets through the method map. Targets in
/// live blocks are reachable by construction, so the lookup cannot fail.
fn remap_stmt(stmt: &Stmt, method_map: &HashMap<MethodId, MethodId>) -> Stmt {
    match stmt {
        Stmt::InvokeStatic { def, target, args } => Stmt::InvokeStatic {
            def: *def,
            target: *method_map
                .get(target)
                .expect("static targets in live code are reachable"),
            args: args.clone(),
        },
        other => other.clone(),
    }
}

/// Convenience: the encoded (`SFBC`) sizes before and after shrinking — the
/// honest version of the binary-size metric.
pub fn encoded_sizes(program: &Program, shrunk: &Shrunk) -> (usize, usize) {
    (
        skipflow_ir::encode::encode(program).len(),
        skipflow_ir::encode::encode(&shrunk.program).len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze, AnalysisConfig};
    use skipflow_ir::frontend::compile;

    fn fixture() -> (Program, AnalysisResult, MethodId) {
        let program = compile(
            "class Config { static method flag(): int { return 0; } }
             class Tracer {
               static method init(): void { Tracer.connect(); }
               static method connect(): void { return; }
             }
             class Main {
               static method main(): int {
                 if (Config.flag()) { Tracer.init(); }
                 return 41;
               }
             }",
        )
        .unwrap();
        let main_cls = program.type_by_name("Main").unwrap();
        let main = program.method_by_name(main_cls, "main").unwrap();
        let result = analyze(&program, &[main], &AnalysisConfig::skipflow());
        (program, result, main)
    }

    #[test]
    fn drops_unreachable_methods_and_stubs_dead_blocks() {
        let (program, result, _) = fixture();
        let shrunk = shrink(&program, &result).expect("rebuild validates");
        assert_eq!(shrunk.stats.methods_before, 4);
        assert_eq!(shrunk.stats.methods_after, 2, "main + flag survive");
        assert!(shrunk.stats.blocks_stubbed >= 1, "the then-branch is stubbed");
        assert!(shrunk.stats.instructions_removed > 0);
        // Tracer methods are gone from the new program.
        let tracer = shrunk.program.type_by_name("Tracer").unwrap();
        assert!(shrunk.program.method_by_name(tracer, "init").is_none());
        assert!(shrunk.program.method_by_name(tracer, "connect").is_none());
    }

    #[test]
    fn shrunk_program_behaves_identically() {
        let (program, result, main) = fixture();
        let shrunk = shrink(&program, &result).unwrap();
        let new_main = shrunk.method_map[&main];
        let cfg = skipflow_ir::interp::InterpConfig::default();
        let a = skipflow_ir::interp::run(&program, main, &[], &cfg);
        let b = skipflow_ir::interp::run(&shrunk.program, new_main, &[], &cfg);
        assert_eq!(a.outcome, b.outcome, "execution never enters the stubs");
    }

    #[test]
    fn encoded_size_shrinks() {
        let (program, result, _) = fixture();
        let shrunk = shrink(&program, &result).unwrap();
        let (before, after) = encoded_sizes(&program, &shrunk);
        assert!(
            after < before,
            "real binary size must drop: {after} vs {before}"
        );
    }

    #[test]
    fn reanalyzing_the_shrunk_program_is_stable() {
        let (program, result, main) = fixture();
        let shrunk = shrink(&program, &result).unwrap();
        let new_main = shrunk.method_map[&main];
        let again = analyze(&shrunk.program, &[new_main], &AnalysisConfig::skipflow());
        // Everything kept stays reachable (modulo nothing new appearing).
        assert_eq!(
            again.reachable_methods().len(),
            result.reachable_methods().len()
        );
    }

    #[test]
    fn baseline_shrink_keeps_more() {
        let (program, _, main) = fixture();
        let skf = analyze(&program, &[main], &AnalysisConfig::skipflow());
        let pta = analyze(&program, &[main], &AnalysisConfig::baseline_pta());
        let s = shrink(&program, &skf).unwrap();
        let p = shrink(&program, &pta).unwrap();
        assert!(s.stats.methods_after < p.stats.methods_after);
        let (_, s_bytes) = encoded_sizes(&program, &s);
        let (_, p_bytes) = encoded_sizes(&program, &p);
        assert!(s_bytes < p_bytes, "SkipFlow's binary is smaller than PTA's");
    }
}
