//! The session-based analysis API.
//!
//! An [`AnalysisSession`] owns the PVPG, the solver state, and the scheduler
//! across calls, so the fixpoint can be *resumed*: after a solve, new entry
//! points can be added ([`AnalysisSession::add_roots`]) and the next
//! [`AnalysisSession::solve`] continues from the saturated graph instead of
//! rebuilding it. By the checkpoint invariant (documented at the top of
//! `engine.rs`) the resumed fixpoint is bit-identical to a fresh analysis
//! over the union of all roots — only cheaper, which the trajectory
//! harness's `resume` rung measures. The scheduler's topological order is
//! part of the carried state: it is maintained online through every graph
//! mutation, so a resumed solve starts from current priorities instead of
//! recomputing a condensation, and per-solve scheduler statistics are
//! re-based per solve (see [`crate::SchedulerStats`] for the per-solve vs
//! session-cumulative split).
//!
//! Sessions are assembled with a typed builder:
//!
//! ```
//! use skipflow_core::{AnalysisSession, SolverKind};
//! use skipflow_ir::frontend::compile;
//!
//! let program = compile(
//!     "class App { static method main(): void { return; } }",
//! ).unwrap();
//! let app = program.type_by_name("App").unwrap();
//! let main = program.method_by_name(app, "main").unwrap();
//!
//! let mut session = AnalysisSession::builder(&program)
//!     .skipflow()
//!     .solver(SolverKind::Sequential)
//!     .roots([main])
//!     .build()
//!     .unwrap();
//! let snapshot = session.solve();
//! assert!(snapshot.is_reachable(main));
//! ```
//!
//! Solves are *interruptible*: budgets on the configuration
//! ([`AnalysisConfig::with_step_budget`] and friends) and a cooperative
//! [`crate::CancelToken`] stop a solve at a clean checkpoint instead of the
//! fixpoint. [`AnalysisSession::solve_interruptible`] surfaces the
//! checkpoint as [`crate::SolveOutcome::Interrupted`] carrying a *partial*
//! snapshot — a sound under-approximation whose queries are tagged
//! [`crate::Completeness::Partial`] — and the next solve resumes exactly
//! where the interrupted one stopped. By the checkpoint invariant the
//! eventually completed fixpoint is bit-identical to an uninterrupted run.
//!
//! Sessions are also *non-monotone*: entry points can be removed again
//! ([`AnalysisSession::retract_roots`]) and method bodies can be edited out
//! and back ([`AnalysisSession::apply_edit`]). Both run the engine's
//! DRed-style over-delete + re-derive (the checkpoint argument at the top of
//! `engine.rs`): the affected region is reset to bottom and the next solve
//! re-derives it, reaching a fixpoint bit-identical to a fresh analysis of
//! the surviving roots under the current edit state
//! ([`AnalysisConfig::with_masked_methods`] reproduces that state for a
//! fresh oracle). The per-session cost shows up in
//! [`SolveStats::invalidation`](crate::InvalidationStats).
//!
//! The one-shot [`analyze`] free function remains as a thin convenience
//! wrapper over a single-solve session.

use crate::config::{AnalysisConfig, SchedulerKind, SolverKind};
use crate::engine::{Engine, SolveEnd};
use crate::error::AnalysisError;
use crate::interrupt::{CancelToken, Completeness, SolveOutcome};
use crate::report::{AnalysisResult, AnalysisSnapshot, OwnedSnapshot, ReachableSet, SolveStats};
use skipflow_ir::{BitSet, FieldId, MethodId, Program};
use std::time::{Duration, Instant};

/// Runs the analysis on `program`, starting from `roots`.
///
/// A thin convenience wrapper over [`AnalysisSession`] for one-shot runs —
/// build, solve once, convert to an owned result. New code that re-analyzes
/// (added entry points, baseline comparisons, long-lived servers) should use
/// the session API directly; this wrapper rebuilds the whole fixpoint on
/// every call.
///
/// # Panics
///
/// Panics on invalid input (unknown root/field ids, zero parallel threads) —
/// the session builder reports these as [`AnalysisError`] instead — and if
/// `config.max_steps` is exceeded (a fail-fast valve for engine bugs in
/// tests; production runs leave it `None`).
pub fn analyze(program: &Program, roots: &[MethodId], config: &AnalysisConfig) -> AnalysisResult {
    let mut session = AnalysisSession::builder(program)
        .config(config.clone())
        .roots(roots.iter().copied())
        .build()
        .unwrap_or_else(|e| panic!("analyze: invalid input: {e}"));
    session.solve();
    session.into_result()
}

/// A method-level program edit applied to a live session
/// ([`AnalysisSession::apply_edit`]).
///
/// The edit model is deliberately minimal — a body is either present or
/// absent. That is exactly the granularity the engine's invalidation works
/// at (method-level DRed; see `engine.rs`), and any statement-level edit can
/// be expressed as disable + (externally) swap the program + restore in a
/// future PR. A disabled method stays a discoverable call target, but calls
/// into it never return, matching a fresh solve under
/// [`AnalysisConfig::with_masked_methods`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodEdit {
    /// Masks the method's body out: its fragment is deactivated and every
    /// fact derived through it is invalidated and re-derived.
    DisableBody,
    /// Restores a previously disabled body (monotone: nothing is
    /// invalidated; the fragment is rebuilt/re-activated and re-wired).
    RestoreBody,
}

/// Typed builder for [`AnalysisSession`] (see the module docs for the
/// canonical chain). Configuration presets (`skipflow()`, `baseline_pta()`,
/// …) *replace* the whole configuration, so apply them before the
/// fine-grained knobs (`solver`, `scheduler`, `saturation`, …).
#[derive(Clone, Debug)]
pub struct SessionBuilder<'p> {
    program: &'p Program,
    config: AnalysisConfig,
    roots: Vec<MethodId>,
}

impl<'p> SessionBuilder<'p> {
    fn new(program: &'p Program) -> Self {
        SessionBuilder {
            program,
            config: AnalysisConfig::skipflow(),
            roots: Vec::new(),
        }
    }

    /// Preset: full SkipFlow (predicate edges + primitive tracking). This is
    /// the default configuration of a fresh builder.
    pub fn skipflow(mut self) -> Self {
        self.config = AnalysisConfig::skipflow();
        self
    }

    /// Preset: the baseline type-based points-to analysis (`PTA`).
    pub fn baseline_pta(mut self) -> Self {
        self.config = AnalysisConfig::baseline_pta();
        self
    }

    /// Preset: predicate edges without primitive tracking.
    pub fn predicates_only(mut self) -> Self {
        self.config = AnalysisConfig::predicates_only();
        self
    }

    /// Preset: primitive tracking without predicate edges.
    pub fn primitives_only(mut self) -> Self {
        self.config = AnalysisConfig::primitives_only();
        self
    }

    /// Replaces the entire configuration (for callers that already hold an
    /// [`AnalysisConfig`], e.g. the bench harness sweeping ablations).
    pub fn config(mut self, config: AnalysisConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the fixpoint solver.
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.config = self.config.with_solver(solver);
        self
    }

    /// Selects the delta solvers' worklist scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.config = self.config.with_scheduler(scheduler);
        self
    }

    /// Sets (or clears) the saturation threshold.
    pub fn saturation(mut self, threshold: impl Into<Option<usize>>) -> Self {
        self.config = self.config.with_saturation(threshold);
        self
    }

    /// Sets the width-adaptive narrow-join fast-path threshold in 64-bit
    /// words (see [`AnalysisConfig::with_narrow_join_width`]; 0 disables).
    pub fn narrow_join_width(mut self, width: usize) -> Self {
        self.config = self.config.with_narrow_join_width(width);
        self
    }

    /// Sets (or clears) the fixpoint step bound (tests' fail-fast valve).
    pub fn max_steps(mut self, max_steps: impl Into<Option<u64>>) -> Self {
        self.config = self.config.with_max_steps(max_steps);
        self
    }

    /// Registers methods invokable via Reflection/JNI (§5).
    pub fn reflective_roots(mut self, roots: impl IntoIterator<Item = MethodId>) -> Self {
        self.config = self.config.with_reflective_roots(roots);
        self
    }

    /// Registers fields accessible via Reflection/JNI (§5).
    pub fn reflective_fields(mut self, fields: impl IntoIterator<Item = FieldId>) -> Self {
        self.config = self.config.with_reflective_fields(fields);
        self
    }

    /// Registers fields accessed via `Unsafe` (§5).
    pub fn unsafe_fields(mut self, fields: impl IntoIterator<Item = FieldId>) -> Self {
        self.config = self.config.with_unsafe_fields(fields);
        self
    }

    /// Adds analysis entry points (accumulates across calls; duplicates are
    /// accepted and deduplicated at build).
    pub fn roots(mut self, roots: impl IntoIterator<Item = MethodId>) -> Self {
        self.roots.extend(roots);
        self
    }

    /// Validates the inputs and builds the session. Nothing is solved yet —
    /// the first [`AnalysisSession::solve`] runs the fixpoint.
    pub fn build(self) -> Result<AnalysisSession<'p>, AnalysisError> {
        let SessionBuilder {
            program,
            config,
            roots,
        } = self;
        if let SolverKind::Parallel { threads: 0 } = config.solver() {
            return Err(AnalysisError::ZeroThreads);
        }
        let method_count = program.method_count();
        for &m in roots.iter().chain(config.reflective_roots()) {
            if m.index() >= method_count {
                return Err(AnalysisError::UnknownMethod {
                    method: m,
                    method_count,
                });
            }
        }
        for &m in config.masked_methods() {
            if m.index() >= method_count {
                return Err(AnalysisError::UnknownMethod {
                    method: m,
                    method_count,
                });
            }
        }
        let field_count = program.field_count();
        for &f in config.reflective_fields().iter().chain(config.unsafe_fields()) {
            if f.index() >= field_count {
                return Err(AnalysisError::UnknownField {
                    field: f,
                    field_count,
                });
            }
        }
        let mut engine = Engine::new(program, config);
        engine.bootstrap();
        let mut session = AnalysisSession {
            program,
            engine,
            roots: Vec::new(),
            root_bits: BitSet::new(),
            pending_roots: Vec::new(),
            reachable: ReachableSet::default(),
            stats: SolveStats::default(),
            total_duration: Duration::ZERO,
            solves: 0,
            last_solve_steps: 0,
            dirty: false,
        };
        session.accept_roots(roots);
        Ok(session)
    }
}

/// A reusable analysis session: owns the PVPG, the solver state, and the
/// scheduler across solves, supporting incremental root addition with
/// fixpoint resume (see the module docs).
pub struct AnalysisSession<'p> {
    program: &'p Program,
    engine: Engine<'p>,
    /// All accepted roots, in acceptance order (deduplicated).
    roots: Vec<MethodId>,
    root_bits: BitSet,
    /// Accepted roots not yet fed to the engine (drained by `solve`).
    pending_roots: Vec<MethodId>,
    /// Sorted reachable view, refreshed after each solve.
    reachable: ReachableSet,
    /// Statistics, refreshed after each solve.
    stats: SolveStats,
    total_duration: Duration,
    solves: u64,
    last_solve_steps: u64,
    /// Set by a retraction or edit since the last solve: the published
    /// views are stale (possibly *over*-approximate until re-derived), so
    /// the saturated-no-op fast path must not skip the next solve.
    dirty: bool,
}

impl std::fmt::Debug for AnalysisSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisSession")
            .field("config", self.engine.config())
            .field("roots", &self.roots)
            .field("pending_roots", &self.pending_roots)
            .field("solves", &self.solves)
            .field("reachable", &self.reachable.len())
            .finish_non_exhaustive()
    }
}

impl<'p> AnalysisSession<'p> {
    /// Starts building a session over `program`.
    pub fn builder(program: &'p Program) -> SessionBuilder<'p> {
        SessionBuilder::new(program)
    }

    /// Deduplicates and records pre-validated roots.
    fn accept_roots(&mut self, roots: impl IntoIterator<Item = MethodId>) -> usize {
        let mut added = 0;
        for m in roots {
            if self.root_bits.insert(m.index()) {
                self.roots.push(m);
                self.pending_roots.push(m);
                added += 1;
            }
        }
        added
    }

    /// Adds entry points to an existing session; the next [`solve`] resumes
    /// the fixpoint from the current saturated state. Already-registered
    /// roots are ignored. Returns how many new roots were accepted.
    ///
    /// [`solve`]: AnalysisSession::solve
    pub fn add_roots(
        &mut self,
        roots: impl IntoIterator<Item = MethodId>,
    ) -> Result<usize, AnalysisError> {
        let roots: Vec<MethodId> = roots.into_iter().collect();
        let method_count = self.program.method_count();
        for &m in &roots {
            if m.index() >= method_count {
                return Err(AnalysisError::UnknownMethod {
                    method: m,
                    method_count,
                });
            }
        }
        Ok(self.accept_roots(roots))
    }

    /// The roots already solved into the engine. Invalidation must re-root
    /// only these: a still-pending root has derived nothing yet, and
    /// re-rooting it early would leak its region past a later retraction
    /// that finds it "never solved in".
    fn solved_roots(&self) -> Vec<MethodId> {
        self.roots
            .iter()
            .copied()
            .filter(|r| !self.pending_roots.contains(r))
            .collect()
    }

    /// Removes entry points from the session — the non-monotone inverse of
    /// [`AnalysisSession::add_roots`]. Facts derivable only from the
    /// retracted roots are invalidated (DRed-style over-delete; see
    /// `engine.rs`), and the next [`solve`](AnalysisSession::solve)
    /// re-derives to a fixpoint bit-identical to a fresh analysis of the
    /// surviving root set. Methods that are not currently roots are ignored;
    /// unknown method ids reject the whole batch. Returns how many roots
    /// were actually removed.
    pub fn retract_roots(
        &mut self,
        roots: impl IntoIterator<Item = MethodId>,
    ) -> Result<usize, AnalysisError> {
        let roots: Vec<MethodId> = roots.into_iter().collect();
        let method_count = self.program.method_count();
        for &m in &roots {
            if m.index() >= method_count {
                return Err(AnalysisError::UnknownMethod {
                    method: m,
                    method_count,
                });
            }
        }
        let mut removed = 0;
        let mut removed_solved: Vec<MethodId> = Vec::new();
        for m in roots {
            if !self.root_bits.remove(m.index()) {
                continue;
            }
            removed += 1;
            self.roots.retain(|&r| r != m);
            if let Some(pos) = self.pending_roots.iter().position(|&r| r == m) {
                // Never solved in: dropping the pending entry is the whole
                // retraction (nothing was derived from it).
                self.pending_roots.remove(pos);
            } else {
                removed_solved.push(m);
            }
        }
        if !removed_solved.is_empty() {
            let solved_survivors = self.solved_roots();
            self.engine.retract_roots(&removed_solved, &solved_survivors);
            self.dirty = true;
        }
        Ok(removed)
    }

    /// Applies a method-level edit to the analysed program (see
    /// [`MethodEdit`]). Disabling a body invalidates everything derived
    /// through it; restoring is monotone. Either way the next
    /// [`solve`](AnalysisSession::solve) reaches a fixpoint bit-identical
    /// to a fresh analysis of the current roots with the current masked set
    /// ([`AnalysisSession::masked_methods`]). Returns whether the edit
    /// changed anything (disabling an already-disabled body is a no-op).
    pub fn apply_edit(
        &mut self,
        method: MethodId,
        edit: MethodEdit,
    ) -> Result<bool, AnalysisError> {
        let method_count = self.program.method_count();
        if method.index() >= method_count {
            return Err(AnalysisError::UnknownMethod {
                method,
                method_count,
            });
        }
        let changed = match edit {
            MethodEdit::DisableBody => {
                let solved_survivors = self.solved_roots();
                self.engine.mask_method(method, &solved_survivors)
            }
            MethodEdit::RestoreBody => {
                let is_root = self.root_bits.contains(method.index())
                    || self.engine.config().reflective_roots().contains(&method);
                self.engine.unmask_method(method, is_root)
            }
        };
        if changed {
            self.dirty = true;
        }
        Ok(changed)
    }

    /// The currently disabled method bodies, in id order — the mask set a
    /// fresh oracle needs ([`AnalysisConfig::with_masked_methods`]) to
    /// reproduce this session's edit state.
    pub fn masked_methods(&self) -> Vec<MethodId> {
        self.engine.masked_list()
    }

    /// Runs the configured solver to the least fixpoint over everything
    /// added so far and returns a snapshot of the saturated state. On a
    /// session that was already solved, this *resumes*: only the frontier
    /// the new roots actually change is re-processed (the checkpoint
    /// invariant; see `engine.rs`). Solving an up-to-date session is a
    /// cheap no-op.
    ///
    /// # Panics
    ///
    /// Panics if the configured `max_steps` bound is exceeded (the
    /// fail-fast valve for engine bugs in tests), and on every condition
    /// [`AnalysisSession::try_solve`] reports as an error — graph-capacity
    /// exhaustion, an exhausted budget, or a panicked parallel worker. Use
    /// [`try_solve`](AnalysisSession::try_solve) (or
    /// [`solve_interruptible`](AnalysisSession::solve_interruptible) for
    /// budgeted runs) to receive those as structured values instead.
    pub fn solve(&mut self) -> AnalysisSnapshot<'_> {
        self.try_solve()
            .unwrap_or_else(|e| panic!("analysis aborted: {e}"))
    }

    /// [`AnalysisSession::solve`], reporting mid-solve conditions as
    /// structured errors instead of panicking:
    ///
    /// * [`AnalysisError::TooManyFlows`] — the PVPG reached the `FlowId`
    ///   limit ([`crate::MAX_FLOW_COUNT`]); the engine stopped building
    ///   fragments and the incomplete fixpoint is never surfaced as `Ok`.
    /// * [`AnalysisError::Interrupted`] — a configured budget ran out. This
    ///   completion-only API cannot hand out a partial snapshot, but the
    ///   checkpoint is retained:
    ///   [`solve_interruptible`](AnalysisSession::solve_interruptible)
    ///   resumes (and exposes the partial state).
    /// * [`AnalysisError::WorkerPanicked`] — a parallel phase-A worker
    ///   panicked; the round was rolled back and the session degraded to
    ///   sequential solving. Re-solving continues from the checkpoint.
    pub fn try_solve(&mut self) -> Result<AnalysisSnapshot<'_>, AnalysisError> {
        match self.solve_inner(None)? {
            SolveEnd::Complete => Ok(self.snapshot()),
            SolveEnd::Interrupted(reason) => Err(AnalysisError::Interrupted { reason }),
        }
    }

    /// Runs the solver under the configured budgets and an optional
    /// cooperative cancel token, surfacing an interrupted solve as a value
    /// instead of an error.
    ///
    /// Returns [`SolveOutcome::Completed`] when the least fixpoint was
    /// reached, or [`SolveOutcome::Interrupted`] when a budget ran out or
    /// `cancel` tripped. The partial snapshot inside `Interrupted` is a
    /// sound under-approximation of the fixpoint — everything it reports
    /// reachable/live *is* — and its queries are tagged
    /// [`Completeness::Partial`](crate::Completeness::Partial). Calling any
    /// solve method again resumes from the exact checkpoint; by the
    /// checkpoint invariant the eventually completed fixpoint is
    /// bit-identical to an uninterrupted run.
    ///
    /// The token is level-triggered: a tripped token interrupts before the
    /// first step, so [`CancelToken::reset`] it before resuming. Budgets
    /// are per solve call — a step budget of `k` lets each resume advance
    /// up to `k` further steps.
    ///
    /// Hard failures still surface as errors: [`AnalysisError::TooManyFlows`]
    /// and [`AnalysisError::WorkerPanicked`] (after which the session stays
    /// usable — degraded to sequential solving — and re-solving continues).
    pub fn solve_interruptible(
        &mut self,
        cancel: Option<&CancelToken>,
    ) -> Result<SolveOutcome<'_>, AnalysisError> {
        match self.solve_inner(cancel)? {
            SolveEnd::Complete => Ok(SolveOutcome::Completed(self.snapshot())),
            SolveEnd::Interrupted(reason) => Ok(SolveOutcome::Interrupted {
                reason,
                partial: self.snapshot(),
            }),
        }
    }

    /// The shared solve driver: saturation fast path, root handoff, solver
    /// run, view refresh.
    fn solve_inner(&mut self, cancel: Option<&CancelToken>) -> Result<SolveEnd, AnalysisError> {
        // A capacity error is sticky: the engine stopped building fragments
        // mid-solve, so the incomplete fixpoint must keep being reported as
        // the error — in particular the saturated-no-op early return below
        // must never turn a failed solve into a stale Ok.
        if let Some(e) = self.engine.capacity_error() {
            return Err(e.clone());
        }
        if self.solves > 0
            && !self.dirty
            && self.pending_roots.is_empty()
            && self.engine.worklist_is_empty()
        {
            // Already saturated with no new roots: the worklist is empty, so
            // running the solver would only pay for a view refresh. Skip it —
            // this is what makes re-solving an up-to-date session genuinely
            // cheap. (After an interrupt the worklist is non-empty, so a
            // resume never takes this path.)
            self.solves += 1;
            self.last_solve_steps = 0;
            self.stats.solves = self.solves;
            return Ok(SolveEnd::Complete);
        }
        let start = Instant::now();
        let steps_before = self.engine.steps();
        let pending = std::mem::take(&mut self.pending_roots);
        self.engine.add_roots(&pending);
        let end = self.engine.run_solver(cancel);
        if let Some(e) = self.engine.capacity_error() {
            return Err(e.clone());
        }
        // Refresh the views on every other outcome — including an
        // interrupt or a caught worker panic: the graph is consistent at
        // the checkpoint and the partial state must be queryable.
        self.total_duration += start.elapsed();
        self.solves += 1;
        self.last_solve_steps = self.engine.steps() - steps_before;
        self.reachable = self.engine.reachable_set();
        self.stats = self.engine.stats_snapshot(self.total_duration, self.solves);
        // The refreshed views reflect every retraction/edit applied so far
        // (a completed solve drained the re-derivation; an interrupted one
        // still published a consistent checkpoint, and stays non-up-to-date
        // through the non-empty worklist).
        self.dirty = false;
        end
    }

    /// A cheap borrowed view of the current state (empty before the first
    /// [`AnalysisSession::solve`]; roots added since the last solve are not
    /// reflected until the next one).
    pub fn snapshot(&self) -> AnalysisSnapshot<'_> {
        AnalysisSnapshot::new(
            self.engine.graph(),
            &self.reachable,
            self.engine.instantiated_bits(),
            self.engine.config(),
            &self.stats,
            self.completeness(),
        )
    }

    /// Clones the current state into an [`OwnedSnapshot`] that can outlive
    /// the session and cross threads — the publication primitive a server
    /// uses to keep answering queries against the last fixpoint while this
    /// session solves the next one. The clone copies the PVPG once (writer
    /// cost, off the reader path); see [`AnalysisSnapshot::to_owned_snapshot`].
    pub fn owned_snapshot(&self) -> OwnedSnapshot {
        self.snapshot().to_owned_snapshot()
    }

    /// The engine's memory estimate in bytes (flows plus edge lists) — the
    /// same figure the `MemoryBudget` interrupt checks, exposed so a session
    /// registry can enforce a global budget across many sessions.
    pub fn memory_estimate(&self) -> usize {
        self.engine.memory_estimate()
    }

    /// Whether the current state is a reached fixpoint over every accepted
    /// root ([`Completeness::Complete`]) or a checkpoint — interrupted
    /// solve, roots pending, capacity error, or nothing solved yet
    /// ([`Completeness::Partial`]). This is the tag every snapshot and
    /// result taken from the session carries.
    pub fn completeness(&self) -> Completeness {
        if self.is_up_to_date() {
            Completeness::Complete
        } else {
            Completeness::Partial
        }
    }

    /// Consumes the session into an owned [`AnalysisResult`] (the PVPG moves
    /// out; nothing is copied). Roots still pending a solve are *not*
    /// reflected — call [`AnalysisSession::solve`] first. The result keeps
    /// the session's [`completeness`](AnalysisSession::completeness) tag.
    pub fn into_result(self) -> AnalysisResult {
        let completeness = self.completeness();
        self.engine.finish(self.total_duration, self.solves, completeness)
    }

    /// The program under analysis.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// The configuration the session runs under.
    pub fn config(&self) -> &AnalysisConfig {
        self.engine.config()
    }

    /// Every accepted root, in acceptance order (deduplicated).
    pub fn roots(&self) -> &[MethodId] {
        &self.roots
    }

    /// Whether all accepted roots have been solved in. False once the
    /// engine hit the `FlowId` capacity limit, after an interrupted solve
    /// until a resume drains the remaining work, and after a retraction or
    /// edit until the next solve re-derives — in all three cases the
    /// published views do not describe the current configuration's
    /// fixpoint.
    pub fn is_up_to_date(&self) -> bool {
        self.solves > 0
            && !self.dirty
            && self.pending_roots.is_empty()
            && self.engine.worklist_is_empty()
            && self.engine.capacity_error().is_none()
    }

    /// Whether a caught worker panic degraded the session to sequential
    /// solving (see [`AnalysisError::WorkerPanicked`]). A degraded session
    /// stays fully usable; the parallel solver is simply bypassed.
    pub fn is_degraded(&self) -> bool {
        self.engine.is_degraded()
    }

    /// Completed [`AnalysisSession::solve`] calls.
    pub fn solve_count(&self) -> u64 {
        self.solves
    }

    /// Worklist steps executed by the most recent solve alone — the
    /// incremental cost of a resume (the cumulative count is in
    /// [`SolveStats::steps`]).
    pub fn last_solve_steps(&self) -> u64 {
        self.last_solve_steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipflow_ir::frontend::compile;

    const SRC: &str = "
        class A { static method go(): void { return; } }
        class B { static method go(): void { A.go(); } }
        class Main {
          static method main(): void { A.go(); }
          static method extra(): void { B.go(); }
        }
    ";

    fn program_and_methods() -> (Program, MethodId, MethodId, MethodId, MethodId) {
        let p = compile(SRC).unwrap();
        let main_cls = p.type_by_name("Main").unwrap();
        let main = p.method_by_name(main_cls, "main").unwrap();
        let extra = p.method_by_name(main_cls, "extra").unwrap();
        let a = p.method_by_name(p.type_by_name("A").unwrap(), "go").unwrap();
        let b = p.method_by_name(p.type_by_name("B").unwrap(), "go").unwrap();
        (p, main, extra, a, b)
    }

    #[test]
    fn builder_validates_inputs() {
        let (p, main, ..) = program_and_methods();
        let bogus = MethodId::from_index(10_000);
        let err = AnalysisSession::builder(&p).roots([bogus]).build().unwrap_err();
        assert!(matches!(err, AnalysisError::UnknownMethod { .. }));

        let err = AnalysisSession::builder(&p)
            .roots([main])
            .solver(SolverKind::Parallel { threads: 0 })
            .build()
            .unwrap_err();
        assert_eq!(err, AnalysisError::ZeroThreads);

        let bogus_field = FieldId::from_index(10_000);
        let err = AnalysisSession::builder(&p)
            .roots([main])
            .reflective_fields([bogus_field])
            .build()
            .unwrap_err();
        assert!(matches!(err, AnalysisError::UnknownField { .. }));
    }

    #[test]
    fn solve_resume_extends_the_fixpoint() {
        let (p, main, extra, a, b) = program_and_methods();
        let mut session = AnalysisSession::builder(&p).skipflow().roots([main]).build().unwrap();
        assert!(!session.is_up_to_date());
        let snap = session.solve();
        assert!(snap.is_reachable(a) && !snap.is_reachable(b));
        assert!(session.is_up_to_date());

        // Adding a root and resuming reaches the new frontier…
        assert_eq!(session.add_roots([extra]).unwrap(), 1);
        assert!(!session.is_up_to_date());
        let snap = session.solve();
        assert!(snap.is_reachable(extra) && snap.is_reachable(b));
        assert_eq!(session.solve_count(), 2);
        // …and duplicates are ignored.
        assert_eq!(session.add_roots([extra, main]).unwrap(), 0);
        assert_eq!(session.roots(), &[main, extra]);

        // Re-solving an up-to-date session is a no-op.
        session.solve();
        assert_eq!(session.last_solve_steps(), 0);

        // The owned result matches a fresh union run.
        let resumed = session.into_result();
        let fresh = analyze(&p, &[main, extra], &AnalysisConfig::skipflow());
        assert_eq!(resumed.reachable_methods(), fresh.reachable_methods());
    }

    #[test]
    fn snapshot_before_solve_is_empty() {
        let (p, main, ..) = program_and_methods();
        let session = AnalysisSession::builder(&p).roots([main]).build().unwrap();
        let snap = session.snapshot();
        assert!(snap.reachable_methods().is_empty());
        assert_eq!(snap.stats().solves, 0);
    }

    #[test]
    fn retract_roots_matches_a_fresh_solve_of_the_survivors() {
        let (p, main, extra, a, b) = program_and_methods();
        let mut session = AnalysisSession::builder(&p)
            .skipflow()
            .roots([main, extra])
            .build()
            .unwrap();
        let snap = session.solve();
        assert!(snap.is_reachable(b));

        assert_eq!(session.retract_roots([extra]).unwrap(), 1);
        assert!(!session.is_up_to_date());
        assert_eq!(session.roots(), &[main]);
        let snap = session.solve();
        assert!(snap.is_reachable(main) && snap.is_reachable(a));
        assert!(!snap.is_reachable(extra) && !snap.is_reachable(b));
        assert!(snap.stats().invalidation.retractions == 1);
        assert!(snap.stats().invalidation.invalidated_flows > 0);
        assert!(session.is_up_to_date());

        // Retracting an unknown id rejects the batch; a non-root is a no-op.
        assert!(session.retract_roots([MethodId::from_index(9_999)]).is_err());
        assert_eq!(session.retract_roots([extra]).unwrap(), 0);

        let fresh = analyze(&p, &[main], &AnalysisConfig::skipflow());
        let resumed = session.into_result();
        assert_eq!(resumed.reachable_methods(), fresh.reachable_methods());
        assert_eq!(resumed.metrics(&p), fresh.metrics(&p));
    }

    #[test]
    fn method_edits_disable_and_restore_a_body() {
        let (p, main, _, a, _) = program_and_methods();
        let mut session = AnalysisSession::builder(&p).skipflow().roots([main]).build().unwrap();
        assert!(session.solve().is_reachable(a));

        // Disable A.go: it stays a discovered call target but the call
        // never returns, exactly like a fresh solve under the mask.
        assert!(session.apply_edit(a, MethodEdit::DisableBody).unwrap());
        assert!(!session.apply_edit(a, MethodEdit::DisableBody).unwrap());
        assert_eq!(session.masked_methods(), vec![a]);
        let snap = session.solve();
        let fresh = analyze(
            &p,
            &[main],
            &AnalysisConfig::skipflow().with_masked_methods([a]),
        );
        assert_eq!(
            snap.reachable_methods(),
            fresh.snapshot().reachable_methods()
        );
        assert_eq!(snap.metrics(&p), fresh.metrics(&p));
        assert_eq!(snap.stats().invalidation.edits, 1);

        // Restore: back to the unmasked fixpoint.
        assert!(session.apply_edit(a, MethodEdit::RestoreBody).unwrap());
        assert!(session.masked_methods().is_empty());
        let snap = session.solve();
        let fresh = analyze(&p, &[main], &AnalysisConfig::skipflow());
        assert_eq!(
            snap.reachable_methods(),
            fresh.snapshot().reachable_methods()
        );
        assert_eq!(snap.metrics(&p), fresh.metrics(&p));
    }

    #[test]
    fn add_roots_rejects_unknown_methods_without_corrupting_state() {
        let (p, main, extra, ..) = program_and_methods();
        let mut session = AnalysisSession::builder(&p).roots([main]).build().unwrap();
        session.solve();
        let err = session
            .add_roots([extra, MethodId::from_index(9_999)])
            .unwrap_err();
        assert!(matches!(err, AnalysisError::UnknownMethod { .. }));
        // The batch was rejected atomically: `extra` was not accepted.
        assert_eq!(session.roots(), &[main]);
    }
}
