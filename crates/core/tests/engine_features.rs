//! Behavioural tests for the engine features beyond the paper's worked
//! examples: invokes as predicates (always-throwing callees, infinite
//! loops), field flows, devirtualization, dynamic-feature handling
//! (reflection, unsafe), saturation, loops, and solver equivalence.

use skipflow_core::{analyze, AnalysisConfig, SolverKind, ValueState};
use skipflow_ir::frontend::compile;
use skipflow_ir::{MethodId, Program, TypeId};

fn run(src: &str, config: AnalysisConfig) -> (Program, skipflow_core::AnalysisResult) {
    let program = compile(src).expect("example compiles");
    let cls = program.type_by_name("Main").expect("Main class");
    let main = program.method_by_name(cls, "main").expect("main method");
    let result = analyze(&program, &[main], &config);
    (program, result)
}

fn method(p: &Program, class: &str, name: &str) -> MethodId {
    let c = p.type_by_name(class).unwrap_or_else(|| panic!("class {class}"));
    p.method_by_name(c, name)
        .unwrap_or_else(|| panic!("method {class}.{name}"))
}

fn class(p: &Program, name: &str) -> TypeId {
    p.type_by_name(name).unwrap_or_else(|| panic!("class {name}"))
}

// ---------------------------------------------------------------------------
// Method invocations as predicates (paper §3 and §5 "Handling Exceptions")
// ---------------------------------------------------------------------------

#[test]
fn always_throwing_callee_kills_following_code() {
    let src = "
        class AssertionError { }
        class Assert {
          static method fail(): void { throw new AssertionError(); }
        }
        class Main {
          static method afterFail(): void { return; }
          static method main(): void {
            Assert.fail();
            Main.afterFail();
          }
        }
    ";
    let (p, result) = run(src, AnalysisConfig::skipflow());
    assert!(result.is_reachable(method(&p, "Assert", "fail")));
    // fail() never returns: its invoke flow stays empty, so the following
    // statement is never enabled.
    assert!(!result.is_reachable(method(&p, "Main", "afterFail")));

    // The baseline cannot prove this.
    let (p, result) = run(src, AnalysisConfig::baseline_pta());
    assert!(result.is_reachable(method(&p, "Main", "afterFail")));
}

#[test]
fn infinite_loop_kills_following_code() {
    let src = "
        class Main {
          static method spin(): void {
            var going = 1;
            while (going == 1) { going = 1; }
          }
          static method after(): void { return; }
          static method main(): void {
            Main.spin();
            Main.after();
          }
        }
    ";
    let (p, result) = run(src, AnalysisConfig::skipflow());
    assert!(result.is_reachable(method(&p, "Main", "spin")));
    // spin() provably never returns (the loop condition filters 1 == 1 to
    // non-empty forever, the exit filter 1 != 1 to empty).
    assert!(!result.is_reachable(method(&p, "Main", "after")));
}

#[test]
fn catch_receives_thrown_and_instantiated_exceptions() {
    let src = "
        class Exception { }
        class IoException extends Exception { }
        class OtherError { }
        class Main {
          static method risky(): void { throw new IoException(); }
          static method main(): void {
            Main.risky();
            return;
          }
          static method handler(): Exception {
            var e = catch (Exception);
            return e;
          }
        }
    ";
    let program = compile(src).unwrap();
    let main = method(&program, "Main", "main");
    let handler = method(&program, "Main", "handler");
    let result = analyze(&program, &[main, handler], &AnalysisConfig::skipflow());
    let ret = result.return_state(handler).expect("handler returns");
    let types = ret.types().expect("exception types");
    assert!(types.contains(class(&program, "IoException")));
    // Not an Exception subtype: never enters the handler.
    assert!(!types.contains(class(&program, "OtherError")));
}

#[test]
fn precise_exceptions_config_only_sees_thrown_values() {
    // With coarse_exceptions off, an instantiated-but-never-thrown exception
    // does not reach the handler.
    let src = "
        class Exception { }
        class IoException extends Exception { }
        class NeverThrown extends Exception { }
        class Main {
          static method risky(): void { throw new IoException(); }
          static method main(): void {
            var x = new NeverThrown();
            Main.use(x);
            Main.risky();
            return;
          }
          static method use(e: Exception): void { return; }
          static method handler(): Exception {
            var e = catch (Exception);
            return e;
          }
        }
    ";
    let program = compile(src).unwrap();
    let main = method(&program, "Main", "main");
    let handler = method(&program, "Main", "handler");

    let coarse = AnalysisConfig::skipflow().with_coarse_exceptions(true);
    let result = analyze(&program, &[main, handler], &coarse);
    let types = result.return_state(handler).unwrap().types().unwrap().clone();
    assert!(types.contains(class(&program, "NeverThrown")), "coarse policy injects instantiated subtypes");

    let precise = AnalysisConfig::skipflow().with_coarse_exceptions(false);
    let result = analyze(&program, &[main, handler], &precise);
    let types = result.return_state(handler).unwrap().types().unwrap().clone();
    assert!(types.contains(class(&program, "IoException")));
    assert!(!types.contains(class(&program, "NeverThrown")));
}

// ---------------------------------------------------------------------------
// Field flows
// ---------------------------------------------------------------------------

#[test]
fn instance_field_flows_from_store_to_load() {
    let src = "
        class Box { var item: Item; }
        class Item { }
        class Main {
          static method main(): void {
            var b = new Box();
            b.item = new Item();
            var got = b.item;
            Main.use(got);
          }
          static method use(x: Item): void { return; }
        }
    ";
    let (p, result) = run(src, AnalysisConfig::skipflow());
    let use_m = method(&p, "Main", "use");
    let types = result.param_state(use_m, 0).unwrap().types().unwrap().clone();
    assert!(types.contains(class(&p, "Item")));
}

#[test]
fn static_field_flows_without_receiver() {
    let src = "
        class Config { static var current: Impl; }
        class Impl { }
        class Main {
          static method main(): void {
            Config.current = new Impl();
            var got = Config.current;
            Main.use(got);
          }
          static method use(x: Impl): void { return; }
        }
    ";
    let (p, result) = run(src, AnalysisConfig::skipflow());
    let use_m = method(&p, "Main", "use");
    let types = result.param_state(use_m, 0).unwrap().types().unwrap().clone();
    assert!(types.contains(class(&p, "Impl")));
}

#[test]
fn field_of_unreached_receiver_type_does_not_flow() {
    // A store through a receiver whose value state never contains the
    // declaring type does not pollute the field.
    let src = "
        class Box { var item: Item; }
        class Item { }
        class Main {
          static method store(b: Box): void {
            b.item = new Item();
          }
          static method main(): void {
            Main.store(null);
            return;
          }
          static method reader(b: Box): Item { return b.item; }
        }
    ";
    let program = compile(src).unwrap();
    let main = method(&program, "Main", "main");
    let result = analyze(&program, &[main], &AnalysisConfig::skipflow());
    // store() runs with a null receiver: the Store rule finds no type t with
    // LookUp(t, item), so the field sink never receives Item.
    let sink_field = program.field_by_name(class(&program, "Box"), "item").unwrap();
    let g = result.graph();
    if let Some(sink) = g.field_sink_opt(sink_field) {
        // At most the default null — never the stored Item.
        assert!(
            g.flow(sink).out_state.le(&ValueState::null()),
            "field must hold at most the default value, got {:?}",
            g.flow(sink).out_state
        );
    }
}

// ---------------------------------------------------------------------------
// Dispatch and devirtualization
// ---------------------------------------------------------------------------

const DISPATCH: &str = "
    abstract class Shape { abstract method area(): int; }
    class Circle extends Shape { method area(): int { return 3; } }
    class Square extends Shape { method area(): int { return 4; } }
    class Main {
      static method compute(s: Shape): int { return s.area(); }
      static method main(): void {
        var c = new Circle();
        Main.compute(c);
        CIRCLE_ONLY
      }
    }
";

#[test]
fn single_receiver_type_devirtualizes() {
    let src = DISPATCH.replace("CIRCLE_ONLY", "return;");
    let (p, result) = run(&src, AnalysisConfig::skipflow());
    let compute = method(&p, "Main", "compute");
    assert!(result.is_reachable(method(&p, "Circle", "area")));
    assert!(!result.is_reachable(method(&p, "Square", "area")));
    let devirt = result.devirtualized_sites(compute);
    assert_eq!(devirt.len(), 1);
    assert_eq!(devirt[0].1, method(&p, "Circle", "area"));
    // The call result is the constant 3.
    assert_eq!(result.return_state(compute), Some(&ValueState::Const(3)));
}

#[test]
fn two_receiver_types_stay_polymorphic() {
    let src = DISPATCH.replace("CIRCLE_ONLY", "Main.compute(new Square());");
    let (p, result) = run(&src, AnalysisConfig::skipflow());
    let compute = method(&p, "Main", "compute");
    assert!(result.is_reachable(method(&p, "Circle", "area")));
    assert!(result.is_reachable(method(&p, "Square", "area")));
    assert!(result.devirtualized_sites(compute).is_empty());
    let sites = result.call_sites(compute);
    assert_eq!(sites[0].targets.len(), 2);
    // 3 ∨ 4 = Any.
    assert_eq!(result.return_state(compute), Some(&ValueState::Any));
}

#[test]
fn null_receiver_resolves_nothing() {
    let src = "
        class T { method m(): void { return; } }
        class Main {
          static method main(): void {
            var x = null;
            Main.call(x);
          }
          static method call(t: T): void { t.m(); }
        }
    ";
    let (p, result) = run(src, AnalysisConfig::skipflow());
    assert!(!result.is_reachable(method(&p, "T", "m")));
}

// ---------------------------------------------------------------------------
// Declared-type filtering
// ---------------------------------------------------------------------------

#[test]
fn declared_type_filtering_narrows_parameters() {
    let src = "
        class A { }
        class B { }
        class Main {
          static method pick(c: int): A {
            if (c == 0) { return new A(); }
            return new A();
          }
          static method takesA(x: A): void { return; }
          static method main(): void {
            Main.takesA(Main.pick(any()));
            Main.unrelated(new B());
          }
          static method unrelated(b: B): void { return; }
        }
    ";
    let (p, result) = run(src, AnalysisConfig::skipflow());
    let takes_a = method(&p, "Main", "takesA");
    let types = result.param_state(takes_a, 0).unwrap().types().unwrap().clone();
    assert!(types.contains(class(&p, "A")));
    assert!(!types.contains(class(&p, "B")));
}

// ---------------------------------------------------------------------------
// Reflection / Unsafe (paper §5)
// ---------------------------------------------------------------------------

#[test]
fn reflective_roots_inject_instantiated_subtypes() {
    let src = "
        class Plugin { method run(): void { return; } }
        class FancyPlugin extends Plugin { method run(): void { return; } }
        class Main {
          static method main(): void {
            var p = new FancyPlugin();
            Main.use(p);
          }
          static method use(p: Plugin): void { return; }
          static method reflectiveEntry(p: Plugin): void { p.run(); }
        }
    ";
    let program = compile(src).unwrap();
    let main = method(&program, "Main", "main");
    let entry = method(&program, "Main", "reflectiveEntry");
    let config = AnalysisConfig::skipflow().with_reflective_roots([entry]);
    let result = analyze(&program, &[main], &config);
    assert!(result.is_reachable(entry));
    // The reflective parameter receives the instantiated subtype, so the
    // override is reachable.
    assert!(result.is_reachable(method(&program, "FancyPlugin", "run")));
    // The base Plugin.run is NOT reachable: Plugin itself is never
    // instantiated, so dispatch only sees FancyPlugin.
    assert!(!result.is_reachable(method(&program, "Plugin", "run")));
}

#[test]
fn reflective_fields_receive_instantiated_subtypes() {
    let src = "
        class Handler { }
        class CustomHandler extends Handler { }
        class Registry { var handler: Handler; }
        class Main {
          static method main(): void {
            var h = new CustomHandler();
            Main.use(h);
            var r = new Registry();
            var got = r.handler;
            Main.read(got);
          }
          static method use(h: Handler): void { return; }
          static method read(h: Handler): void { return; }
        }
    ";
    let program = compile(src).unwrap();
    let main = method(&program, "Main", "main");
    let field = program
        .field_by_name(class(&program, "Registry"), "handler")
        .unwrap();
    let config = AnalysisConfig::skipflow().with_reflective_fields([field]);
    let result = analyze(&program, &[main], &config);
    let read = method(&program, "Main", "read");
    let types = result.param_state(read, 0).unwrap().types().unwrap().clone();
    assert!(
        types.contains(class(&program, "CustomHandler")),
        "reflective field injects instantiated subtypes: {types:?}"
    );
}

#[test]
fn unsafe_fields_unify_stores_and_loads() {
    let src = "
        class A { var x: Val; }
        class B { var y: Val; }
        class Val { }
        class Main {
          static method main(): void {
            var a = new A();
            a.x = new Val();
            var b = new B();
            var got = b.y;     // never stored directly
            Main.use(got);
          }
          static method use(v: Val): void { return; }
        }
    ";
    let program = compile(src).unwrap();
    let main = method(&program, "Main", "main");
    let fx = program.field_by_name(class(&program, "A"), "x").unwrap();
    let fy = program.field_by_name(class(&program, "B"), "y").unwrap();

    // Without the unsafe marking, b.y holds at most its default null.
    let result = analyze(&program, &[main], &AnalysisConfig::skipflow());
    let use_m = method(&program, "Main", "use");
    assert!(result.param_state(use_m, 0).unwrap().le(&ValueState::null()));

    // Marking both fields unsafe routes the store into the load.
    let config = AnalysisConfig::skipflow().with_unsafe_fields([fx, fy]);
    let result = analyze(&program, &[main], &config);
    let types = result.param_state(use_m, 0).unwrap().types().unwrap().clone();
    assert!(types.contains(class(&program, "Val")));
}

// ---------------------------------------------------------------------------
// Loops
// ---------------------------------------------------------------------------

#[test]
fn loop_carried_values_reach_uses_inside_the_loop() {
    let src = "
        class Node { var next: Node; }
        class Main {
          static method walk(head: Node): Node {
            var cur = head;
            while (cur != null) { cur = cur.next; }
            return cur;
          }
          static method main(): void {
            var a = new Node();
            a.next = new Node();
            Main.walk(a);
          }
        }
    ";
    let (p, result) = run(src, AnalysisConfig::skipflow());
    let walk = method(&p, "Main", "walk");
    assert!(result.is_reachable(walk));
    // The loop exit filters cur == null: the returned value is exactly null.
    assert_eq!(result.return_state(walk), Some(&ValueState::null()));
}

#[test]
fn loop_condition_on_any_keeps_both_exits_live() {
    let src = "
        class Main {
          static method inside(): void { return; }
          static method after(): void { return; }
          static method main(): void {
            var i = 0;
            while (i < 10) { Main.inside(); i = any(); }
            Main.after();
          }
        }
    ";
    let (p, result) = run(src, AnalysisConfig::skipflow());
    assert!(result.is_reachable(method(&p, "Main", "inside")));
    assert!(result.is_reachable(method(&p, "Main", "after")));
}

// ---------------------------------------------------------------------------
// Saturation & solvers
// ---------------------------------------------------------------------------

fn many_types_src() -> String {
    // 12 subclasses flowing into one parameter.
    let mut src = String::from("abstract class Base { abstract method id(): int; }\n");
    for i in 0..12 {
        src.push_str(&format!(
            "class C{i} extends Base {{ method id(): int {{ return {i}; }} }}\n"
        ));
    }
    src.push_str(
        "class Main {
           static method use(b: Base): int { return b.id(); }
           static method main(): void {\n",
    );
    for i in 0..12 {
        src.push_str(&format!("Main.use(new C{i}());\n"));
    }
    src.push_str("} }\n");
    src
}

#[test]
fn saturation_widens_but_stays_sound() {
    let src = many_types_src();
    let program = compile(&src).unwrap();
    let main = method(&program, "Main", "main");

    let exact = analyze(&program, &[main], &AnalysisConfig::skipflow());
    let saturated = analyze(
        &program,
        &[main],
        &AnalysisConfig::skipflow().with_saturation(4),
    );
    // Saturation must not lose reachable methods.
    assert!(exact
        .reachable_methods()
        .is_subset(saturated.reachable_methods()));
    // All 12 id() overrides reachable in both.
    for i in 0..12 {
        let m = method(&program, &format!("C{i}"), "id");
        assert!(exact.is_reachable(m));
        assert!(saturated.is_reachable(m));
    }
    // The saturated parameter widened to Any.
    let use_m = method(&program, "Main", "use");
    assert_eq!(saturated.param_state(use_m, 0), Some(&ValueState::Any));
}

#[test]
fn parallel_solver_matches_sequential() {
    for src in [many_types_src()] {
        let program = compile(&src).unwrap();
        let main = method(&program, "Main", "main");
        let seq = analyze(&program, &[main], &AnalysisConfig::skipflow());
        for threads in [2, 4] {
            let par = analyze(
                &program,
                &[main],
                &AnalysisConfig::skipflow().with_solver(SolverKind::Parallel { threads }),
            );
            assert_eq!(seq.reachable_methods(), par.reachable_methods());
            assert_eq!(
                seq.metrics(&program),
                par.metrics(&program),
                "parallel solver must be bit-identical ({threads} threads)"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

#[test]
fn metrics_count_surviving_checks_and_polycalls() {
    let src = "
        abstract class Shape { abstract method area(): int; }
        class Circle extends Shape { method area(): int { return 3; } }
        class Square extends Shape { method area(): int { return 4; } }
        class Main {
          static method main(): void {
            var s = Main.pick(any());
            var a = s.area();              // polymorphic: 2 targets
            if (a < 4) { Main.small(); }   // surviving prim check (a = Any)
            var dead = 1;
            if (dead == 2) { Main.never(); }  // foldable prim check
          }
          static method pick(c: int): Shape {
            if (c == 0) { return new Circle(); }
            return new Square();
          }
          static method small(): void { return; }
          static method never(): void { return; }
        }
    ";
    let (p, result) = run(src, AnalysisConfig::skipflow());
    let m = result.metrics(&p);
    assert!(!result.is_reachable(method(&p, "Main", "never")));
    assert!(result.is_reachable(method(&p, "Main", "small")));
    assert_eq!(m.poly_calls, 1, "s.area() cannot be devirtualized");
    // `a < 4` survives; `dead == 2` and `c == 0` fold…
    // (`c == 0` survives too: c is Any). So prim checks = 2.
    assert_eq!(m.prim_checks, 2, "{m:?}");

    // The baseline counts the folded check as well.
    let (p2, base) = run(src, AnalysisConfig::baseline_pta());
    let bm = base.metrics(&p2);
    assert!(bm.prim_checks >= 3, "{bm:?}");
    assert!(bm.reachable_methods > m.reachable_methods);
    assert!(bm.binary_size_bytes > m.binary_size_bytes);
}

#[test]
fn loop_body_call_in_late_built_callee_is_reachable() {
    // Regression test: `Worker.go` is only discovered by virtual dispatch
    // *during* solving, after `pred_on` has already fired. Its loop header's
    // φ_pred hangs directly off `pred_on` (the jump from the start block),
    // so the builder must queue it for immediate enabling — `pred_on` never
    // walks its predicate successors again. Before the fix, the loop body
    // (and `Main.tick`) was wrongly dead while the interpreter executed it.
    let src = "
        class Main {
          static method tick(): void { return; }
          static method main(): void {
            var w = new Worker();
            w.go();
            return;
          }
        }
        class Worker {
          method go(): void {
            var i = 0;
            while (i < 3) { Main.tick(); i = any(); }
            return;
          }
        }";
    for solver in [
        SolverKind::Sequential,
        SolverKind::Parallel { threads: 4 },
        SolverKind::Reference,
    ] {
        let (p, result) = run(src, AnalysisConfig::skipflow().with_solver(solver));
        assert!(
            result.is_reachable(method(&p, "Main", "tick")),
            "{solver:?}: loop-body call must be reachable"
        );
    }
}

#[test]
fn skipflow_never_reaches_more_than_baseline() {
    for src in [DISPATCH.replace("CIRCLE_ONLY", "return;"), many_types_src()] {
        let program = compile(&src).unwrap();
        let main = method(&program, "Main", "main");
        let sf = analyze(&program, &[main], &AnalysisConfig::skipflow());
        let pta = analyze(&program, &[main], &AnalysisConfig::baseline_pta());
        assert!(
            sf.reachable_methods().is_subset(pta.reachable_methods()),
            "SkipFlow must be at least as precise as the baseline"
        );
    }
}
