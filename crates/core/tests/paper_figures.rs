//! Executable versions of the paper's worked examples: Figures 1–5 and the
//! fixed-point state of Figure 8.

use skipflow_core::{analyze, AnalysisConfig, ValueState};
use skipflow_ir::frontend::compile;
use skipflow_ir::{MethodId, Program, TypeId};

fn run(src: &str, main_class: &str, config: AnalysisConfig) -> (Program, skipflow_core::AnalysisResult) {
    let program = compile(src).expect("example compiles");
    let cls = program.type_by_name(main_class).expect("main class exists");
    let main = program
        .method_by_name(cls, "main")
        .expect("main method exists");
    let result = analyze(&program, &[main], &config);
    (program, result)
}

fn method(p: &Program, class: &str, name: &str) -> MethodId {
    let c = p.type_by_name(class).unwrap_or_else(|| panic!("class {class}"));
    p.method_by_name(c, name)
        .unwrap_or_else(|| panic!("method {class}.{name}"))
}

fn class(p: &Program, name: &str) -> TypeId {
    p.type_by_name(name).unwrap_or_else(|| panic!("class {name}"))
}

/// Figure 1 — the DaCapo Sunflow motivating example: `display` is never
/// null, so the guarded `new FrameDisplay()` never executes, the type is
/// never instantiated, and the GUI library behind `FrameDisplay.imageBegin`
/// stays unreachable.
const SUNFLOW: &str = "
    abstract class Display { abstract method imageBegin(): void; }
    class FileDisplay extends Display {
      method imageBegin(): void { return; }
    }
    class FrameDisplay extends Display {
      method imageBegin(): void { FrameDisplay.initAwt(); }
      static method initAwt(): void { return; }   // stands in for AWT/Swing
    }
    class Scene {
      method render(display: Display): void {
        var d = display;
        if (d == null) { d = new FrameDisplay(); }
        d.imageBegin();
      }
    }
    class Main {
      static method main(): void {
        var scene = new Scene();
        var display = new FileDisplay();
        scene.render(display);
      }
    }
";

#[test]
fn fig1_sunflow_skipflow_prunes_the_gui_library() {
    let (p, result) = run(SUNFLOW, "Main", AnalysisConfig::skipflow());
    // The predicate `d == null` never fires: FrameDisplay is not
    // instantiated and the AWT stand-in is unreachable.
    assert!(!result.is_instantiated(class(&p, "FrameDisplay")));
    assert!(!result.is_reachable(method(&p, "FrameDisplay", "imageBegin")));
    assert!(!result.is_reachable(method(&p, "FrameDisplay", "initAwt")));
    // The real display still works.
    assert!(result.is_reachable(method(&p, "FileDisplay", "imageBegin")));
}

#[test]
fn fig1_sunflow_baseline_pta_drags_the_gui_library_in() {
    let (p, result) = run(SUNFLOW, "Main", AnalysisConfig::baseline_pta());
    // Without predicate edges the spurious path
    // new FrameDisplay() ⇝ display ⇝ imageBegin() exists.
    assert!(result.is_instantiated(class(&p, "FrameDisplay")));
    assert!(result.is_reachable(method(&p, "FrameDisplay", "imageBegin")));
    assert!(result.is_reachable(method(&p, "FrameDisplay", "initAwt")));
}

/// Figure 2 / 7 / 8 — the JDK `SharedThreadContainer.onExit` example: the
/// application never creates virtual threads, so `isVirtual()` returns only
/// the constant 0 and the body of the `if` (the `remove()` call) is dead.
const JDK_ISVIRTUAL: &str = "
    abstract class BaseVirtualThread extends Thread { }
    class Thread {
      method isVirtual(): int {
        if (this instanceof BaseVirtualThread) { return 1; }
        return 0;
      }
    }
    class VirtualThread extends BaseVirtualThread { }
    class PlatformThread extends Thread { }
    class ThreadSet {
      method remove(t: Thread): void { return; }
    }
    class SharedThreadContainer {
      var virtualThreads: ThreadSet;
      method onExit(thread: Thread): void {
        if (thread.isVirtual()) {
          var s = this.virtualThreads;
          s.remove(thread);
        }
      }
    }
    class Main {
      static method main(): void {
        var c = new SharedThreadContainer();
        c.virtualThreads = new ThreadSet();
        var t = new PlatformThread();
        c.onExit(t);
      }
    }
";

#[test]
fn fig8_isvirtual_fixed_point_state() {
    let (p, result) = run(JDK_ISVIRTUAL, "Main", AnalysisConfig::skipflow());
    let is_virtual = method(&p, "Thread", "isVirtual");
    let on_exit = method(&p, "SharedThreadContainer", "onExit");
    let remove = method(&p, "ThreadSet", "remove");

    // Paper Figure 8: VS(Return) = {0} — only the else branch of the type
    // check returns.
    assert_eq!(result.return_state(is_virtual), Some(&ValueState::Const(0)));

    // VirtualThread ∉ VS(p_thread).
    let p_thread = result.param_state(on_exit, 1).expect("onExit reachable");
    let types = p_thread.types().expect("object state");
    assert!(types.contains(class(&p, "PlatformThread")));
    assert!(!types.contains(class(&p, "VirtualThread")));

    // The ≠-filter stays empty: Invoke remove() is never enabled and the
    // remove method is not processed.
    assert!(!result.is_reachable(remove));
}

#[test]
fn fig8_isvirtual_baseline_keeps_remove_reachable() {
    let (p, result) = run(JDK_ISVIRTUAL, "Main", AnalysisConfig::baseline_pta());
    assert!(result.is_reachable(method(&p, "ThreadSet", "remove")));
}

#[test]
fn fig8_isvirtual_with_virtual_threads_keeps_remove() {
    // Sanity: when a virtual thread *is* created, SkipFlow keeps remove().
    let src = JDK_ISVIRTUAL.replace(
        "var t = new PlatformThread();",
        "var t = new VirtualThread();",
    );
    let (p, result) = run(&src, "Main", AnalysisConfig::skipflow());
    assert!(result.is_reachable(method(&p, "ThreadSet", "remove")));
    let is_virtual = method(&p, "Thread", "isVirtual");
    // With only virtual threads instantiated, the type check always passes:
    // the else branch is dead and isVirtual() provably returns {1}.
    assert_eq!(result.return_state(is_virtual), Some(&ValueState::Const(1)));
}

#[test]
fn fig8_isvirtual_with_mixed_threads_returns_any() {
    // With both thread kinds alive, both branches return: 0 ∨ 1 = Any.
    let src = JDK_ISVIRTUAL.replace(
        "var t = new PlatformThread();",
        "var t = new PlatformThread();
         c.onExit(new VirtualThread());",
    );
    let (p, result) = run(&src, "Main", AnalysisConfig::skipflow());
    assert!(result.is_reachable(method(&p, "ThreadSet", "remove")));
    let is_virtual = method(&p, "Thread", "isVirtual");
    assert_eq!(result.return_state(is_virtual), Some(&ValueState::Any));
}

/// Figure 7 — the structure of the `onExit` PVPG: the observe edges from
/// p_thread to the invoke, from the constant 0 to the ≠-filter, and the
/// chain p_this → LoadField → Invoke remove; the predicate chain
/// Invoke isVirtual ⇝pred ≠ ⇝pred {LoadField, Invoke remove}.
#[test]
fn fig7_onexit_pvpg_structure() {
    use skipflow_core::FlowKind;
    let (p, result) = run(JDK_ISVIRTUAL, "Main", AnalysisConfig::skipflow());
    let on_exit = method(&p, "SharedThreadContainer", "onExit");
    let g = result.graph();
    let mg = g.method_graph(on_exit).expect("reachable");

    let find = |pred: &dyn Fn(&FlowKind) -> bool| -> skipflow_core::FlowId {
        mg.flows
            .iter()
            .copied()
            .find(|&f| pred(&g.flow(f).kind))
            .expect("flow exists")
    };
    let p_thread = find(&|k| matches!(k, FlowKind::Param { index: 1, .. }));
    let p_this = find(&|k| matches!(k, FlowKind::Param { index: 0, .. }));
    let invoke_isvirtual = find(&|k| matches!(k, FlowKind::Invoke { site }
        if g.site(*site).selector.map(|s| p.selector(s).name.as_str()) == Some("isVirtual")));
    let invoke_remove = find(&|k| matches!(k, FlowKind::Invoke { site }
        if g.site(*site).selector.map(|s| p.selector(s).name.as_str()) == Some("remove")));
    let load_field = find(&|k| matches!(k, FlowKind::Load { .. }));
    let zero_const = find(&|k| matches!(k, FlowKind::Const(0)));
    let ne_filter = find(&|k| matches!(k, FlowKind::CmpFilter { op: skipflow_ir::CmpOp::Ne, .. }));

    // Observe edges (dotted in the figure).
    assert!(g.observe_targets(p_thread).any(|t| t == invoke_isvirtual),
        "p_thread observes into Invoke isVirtual (method linking)");
    assert!(g.observe_targets(p_this).any(|t| t == load_field),
        "p_this observes into LoadField virtualThreads");
    assert!(g.observe_targets(load_field).any(|t| t == invoke_remove),
        "the loaded set observes into Invoke remove");
    assert!(g.observe_targets(zero_const).any(|t| t == ne_filter),
        "the constant 0 observes into the ≠ filter");

    // Use edge: the invoke's value feeds the ≠ filter.
    assert!(g.use_targets(invoke_isvirtual).any(|t| t == ne_filter));

    // Predicate chain: the invoke predicates the filter; the filter chain
    // predicates the body of the if (LoadField and Invoke remove).
    assert!(g.pred_targets(invoke_isvirtual).any(|t| t == ne_filter));
    let reaches_pred = |from: skipflow_core::FlowId, to: skipflow_core::FlowId| -> bool {
        // BFS over predicate edges (the filter chain has two hops: ≠ then
        // the flipped filter).
        let mut stack = vec![from];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(f) = stack.pop() {
            if f == to {
                return true;
            }
            if seen.insert(f) {
                stack.extend(g.pred_targets(f));
            }
        }
        false
    };
    assert!(reaches_pred(ne_filter, load_field));
    assert!(reaches_pred(ne_filter, invoke_remove));

    // And the fixed point of Figure 8: the filter never fires.
    assert!(!g.flow(invoke_remove).enabled);
    assert!(g.flow(ne_filter).out_state.is_empty());
}

/// Figure 3 — type-check filtering: `useT` sees only `T` (and subtypes),
/// `useU` never sees `T`.
#[test]
fn fig3_typecheck_filters_both_branches() {
    let src = "
        class Base { }
        class T extends Base { }
        class U extends Base { }
        class Sink {
          static method useT(x: Base): void { return; }
          static method useU(x: Base): void { return; }
        }
        class Main {
          static method pick(c: int): Base {
            if (c == 0) { return new T(); }
            return new U();
          }
          static method main(): void {
            var x = Main.pick(any());
            if (x instanceof T) { Sink.useT(x); } else { Sink.useU(x); }
          }
        }
    ";
    let (p, result) = run(src, "Main", AnalysisConfig::skipflow());
    let use_t = method(&p, "Sink", "useT");
    let use_u = method(&p, "Sink", "useU");
    assert!(result.is_reachable(use_t));
    assert!(result.is_reachable(use_u));
    let xt = result.param_state(use_t, 0).unwrap().types().unwrap().clone();
    let xu = result.param_state(use_u, 0).unwrap().types().unwrap().clone();
    assert!(xt.contains(class(&p, "T")));
    assert!(!xt.contains(class(&p, "U")));
    assert!(xu.contains(class(&p, "U")));
    assert!(!xu.contains(class(&p, "T")));
}

/// Figure 4 — the predicate example: with `x = 42`, only `m()` is invoked;
/// the else branch `x <= 10` filters 42 to ∅ so `f()` is never marked
/// reachable.
#[test]
fn fig4_constant_42_enables_only_the_then_branch() {
    let src = "
        class Main {
          static method m(): void { return; }
          static method f(): void { return; }
          static method branch(x: int): void {
            if (x > 10) { Main.m(); } else { Main.f(); }
          }
          static method main(): void {
            Main.branch(42);
          }
        }
    ";
    let (p, result) = run(src, "Main", AnalysisConfig::skipflow());
    assert!(result.is_reachable(method(&p, "Main", "m")));
    assert!(!result.is_reachable(method(&p, "Main", "f")));

    // The baseline reaches both.
    let (p, result) = run(src, "Main", AnalysisConfig::baseline_pta());
    assert!(result.is_reachable(method(&p, "Main", "m")));
    assert!(result.is_reachable(method(&p, "Main", "f")));
}

/// Figure 5 — φ and φ_pred joins: `y` is 5 or 10 depending on the branch;
/// after the join, `use(y)` sees the join of both constants (`Any`), and the
/// block after the merge is reachable if either branch is.
#[test]
fn fig5_phi_joins_values_and_predicates() {
    let src = "
        class Sink { static method use(y: int): void { return; } }
        class Main {
          static method join(x: Thing): void {
            var y = 0;
            if (x != null) { y = 5; } else { y = 10; }
            Sink.use(y);
          }
          static method main(): void {
            Main.join(new Thing());
            Main.join(null);
          }
        }
        class Thing { }
    ";
    let (p, result) = run(src, "Main", AnalysisConfig::skipflow());
    let use_m = method(&p, "Sink", "use");
    assert!(result.is_reachable(use_m));
    // 5 ∨ 10 = Any.
    assert_eq!(result.param_state(use_m, 0), Some(&ValueState::Any));
}

#[test]
fn fig5_phi_with_one_dead_branch_keeps_single_constant() {
    // When x is never null, only y = 5 reaches the φ.
    let src = "
        class Sink { static method use(y: int): void { return; } }
        class Thing { }
        class Main {
          static method join(x: Thing): void {
            var y = 0;
            if (x != null) { y = 5; } else { y = 10; }
            Sink.use(y);
          }
          static method main(): void {
            Main.join(new Thing());
          }
        }
    ";
    let (p, result) = run(src, "Main", AnalysisConfig::skipflow());
    let use_m = method(&p, "Sink", "use");
    assert_eq!(result.param_state(use_m, 0), Some(&ValueState::Const(5)));
}
