//! Rapid Type Analysis (Bacon, Sweeney — OOPSLA ’96).
//!
//! RTA refines CHA by restricting virtual dispatch to classes that are
//! *instantiated* somewhere in the reachable code. Reachability and the
//! instantiated set grow together until a fixed point: a `new T` in a
//! reachable method makes `T` live; a virtual site in a reachable method
//! dispatches over all live types.

use crate::{body_calls, CallGraph};
use skipflow_ir::{BitSet, MethodId, Program, SelectorId, TypeId};
use std::collections::{BTreeSet, HashSet};

/// Runs RTA from the given roots.
pub fn rapid_type_analysis(program: &Program, roots: &[MethodId]) -> CallGraph {
    let mut reachable: BTreeSet<MethodId> = BTreeSet::new();
    let mut instantiated = BitSet::new();
    // Pending virtual sites: (selector) per reachable method, re-dispatched
    // whenever a new type becomes live.
    let mut pending_selectors: Vec<SelectorId> = Vec::new();
    let mut linked: HashSet<(SelectorId, MethodId)> = HashSet::new();
    let mut worklist: Vec<MethodId> = roots.to_vec();
    let mut call_edges = 0usize;

    // Iterate until neither reachability nor the instantiated set grows.
    loop {
        let mut changed = false;

        while let Some(m) = worklist.pop() {
            if !reachable.insert(m) {
                continue;
            }
            changed = true;
            let (virtuals, statics, allocs) = body_calls(program, m);
            for t in allocs {
                if instantiated.insert(t.index()) {
                    changed = true;
                }
            }
            for sel in virtuals {
                pending_selectors.push(sel);
            }
            for t in statics {
                call_edges += 1;
                if !reachable.contains(&t) {
                    worklist.push(t);
                }
            }
        }

        // Re-dispatch every known virtual site over the live types.
        for &sel in &pending_selectors {
            for ti in instantiated.iter() {
                let t = TypeId::from_index(ti);
                if let Some(target) = program.resolve(t, sel) {
                    if linked.insert((sel, target)) {
                        call_edges += 1;
                        changed = true;
                        if !reachable.contains(&target) {
                            worklist.push(target);
                        }
                    }
                }
            }
        }
        // Drain any methods queued by the dispatch pass.
        if !worklist.is_empty() {
            continue;
        }
        if !changed {
            break;
        }
    }

    // PolyCalls: count virtual sites whose selector resolves to ≥ 2 targets
    // among the live types.
    let mut poly_calls = 0usize;
    for &m in &reachable {
        let (virtuals, _, _) = body_calls(program, m);
        for sel in virtuals {
            let mut targets = BTreeSet::new();
            for ti in instantiated.iter() {
                if let Some(t) = program.resolve(TypeId::from_index(ti), sel) {
                    targets.insert(t);
                }
            }
            if targets.len() >= 2 {
                poly_calls += 1;
            }
        }
    }

    CallGraph {
        reachable,
        call_edges,
        poly_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipflow_ir::frontend::compile;

    #[test]
    fn rta_ignores_uninstantiated_overrides() {
        let p = compile(
            "abstract class I { abstract method go(): void; }
             class A extends I { method go(): void { return; } }
             class B extends I { method go(): void { return; } }
             class Main {
               static method main(): void {
                 var a = new A();
                 Main.call(a);
               }
               static method call(i: I): void { i.go(); }
             }",
        )
        .unwrap();
        let main = p
            .method_by_name(p.type_by_name("Main").unwrap(), "main")
            .unwrap();
        let cg = rapid_type_analysis(&p, &[main]);
        let a = p.method_by_name(p.type_by_name("A").unwrap(), "go").unwrap();
        let b = p.method_by_name(p.type_by_name("B").unwrap(), "go").unwrap();
        assert!(cg.is_reachable(a));
        assert!(!cg.is_reachable(b));
    }

    #[test]
    fn rta_finds_allocations_in_transitively_reached_code() {
        // B is only instantiated inside a method that becomes reachable via
        // dispatch — the fixpoint must pick it up.
        let p = compile(
            "abstract class I { abstract method go(): void; }
             class A extends I {
               method go(): void {
                 var b = new B();
                 Main.call(b);
               }
             }
             class B extends I { method go(): void { return; } }
             class Main {
               static method main(): void {
                 var a = new A();
                 Main.call(a);
               }
               static method call(i: I): void { i.go(); }
             }",
        )
        .unwrap();
        let main = p
            .method_by_name(p.type_by_name("Main").unwrap(), "main")
            .unwrap();
        let cg = rapid_type_analysis(&p, &[main]);
        let b = p.method_by_name(p.type_by_name("B").unwrap(), "go").unwrap();
        assert!(cg.is_reachable(b));
    }

    #[test]
    fn rta_is_flow_insensitive_about_guards() {
        // Unlike SkipFlow, RTA cannot see that the allocation is guarded by
        // an impossible condition.
        let p = compile(
            "class Heavy { method run(): void { return; } }
             class Main {
               static method main(): void {
                 var flag = 0;
                 if (flag == 1) {
                   var h = new Heavy();
                   h.run();
                 }
               }
             }",
        )
        .unwrap();
        let main = p
            .method_by_name(p.type_by_name("Main").unwrap(), "main")
            .unwrap();
        let cg = rapid_type_analysis(&p, &[main]);
        let run = p
            .method_by_name(p.type_by_name("Heavy").unwrap(), "run")
            .unwrap();
        assert!(cg.is_reachable(run));
    }
}
