//! Class Hierarchy Analysis (Dean, Grove, Chambers — ECOOP ’95).
//!
//! CHA links every virtual call site to every concrete method any type in
//! the program resolves the selector to. The base language carries no static
//! receiver types at call sites, so this is selector-cone CHA: the cone is
//! computed over the whole hierarchy (the classical formulation restricted
//! by the receiver's declared type degenerates to this when every receiver
//! is typed as the root). It is the least precise comparator in §6 — the
//! paper notes CHA is not even implemented in Native Image because RTA is
//! already too imprecise.

use crate::{body_calls, CallGraph};
use skipflow_ir::{MethodId, Program, SelectorId};
use std::collections::{BTreeSet, HashMap};

/// Runs CHA from the given roots.
pub fn class_hierarchy_analysis(program: &Program, roots: &[MethodId]) -> CallGraph {
    // Precompute the selector cones once: selector -> all concrete targets.
    let mut cones: HashMap<SelectorId, BTreeSet<MethodId>> = HashMap::new();
    for t in program.iter_types() {
        if t.is_null() {
            continue;
        }
        for sel in 0..program.selector_count() {
            let sel = SelectorId::from_index(sel);
            if let Some(m) = program.resolve(t, sel) {
                cones.entry(sel).or_default().insert(m);
            }
        }
    }

    let mut reachable: BTreeSet<MethodId> = BTreeSet::new();
    let mut worklist: Vec<MethodId> = roots.to_vec();
    let mut call_edges = 0usize;
    let mut poly_calls = 0usize;

    while let Some(m) = worklist.pop() {
        if !reachable.insert(m) {
            continue;
        }
        let (virtuals, statics, _allocs) = body_calls(program, m);
        for sel in virtuals {
            let targets = cones.get(&sel).cloned().unwrap_or_default();
            call_edges += targets.len();
            if targets.len() >= 2 {
                poly_calls += 1;
            }
            for t in targets {
                if !reachable.contains(&t) {
                    worklist.push(t);
                }
            }
        }
        for t in statics {
            call_edges += 1;
            if !reachable.contains(&t) {
                worklist.push(t);
            }
        }
    }

    CallGraph {
        reachable,
        call_edges,
        poly_calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipflow_ir::frontend::compile;

    #[test]
    fn cha_reaches_all_overrides_even_without_allocation() {
        let p = compile(
            "abstract class I { abstract method go(): void; }
             class A extends I { method go(): void { return; } }
             class B extends I { method go(): void { return; } }
             class Main {
               static method main(): void {
                 var x = null;
                 Main.call(x);
               }
               static method call(i: I): void { i.go(); }
             }",
        )
        .unwrap();
        let main = p
            .method_by_name(p.type_by_name("Main").unwrap(), "main")
            .unwrap();
        let cg = class_hierarchy_analysis(&p, &[main]);
        // No allocation anywhere, yet CHA reaches both overrides.
        let a = p.method_by_name(p.type_by_name("A").unwrap(), "go").unwrap();
        let b = p.method_by_name(p.type_by_name("B").unwrap(), "go").unwrap();
        assert!(cg.is_reachable(a));
        assert!(cg.is_reachable(b));
        assert_eq!(cg.poly_calls, 1);
    }

    #[test]
    fn cha_follows_static_calls() {
        let p = compile(
            "class Main {
               static method helper(): void { return; }
               static method main(): void { Main.helper(); }
             }",
        )
        .unwrap();
        let main = p
            .method_by_name(p.type_by_name("Main").unwrap(), "main")
            .unwrap();
        let helper = p
            .method_by_name(p.type_by_name("Main").unwrap(), "helper")
            .unwrap();
        let cg = class_hierarchy_analysis(&p, &[main]);
        assert!(cg.is_reachable(helper));
        assert_eq!(cg.call_edges, 1);
    }
}
