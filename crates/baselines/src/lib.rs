//! # skipflow-baselines
//!
//! Classical call-graph construction algorithms used as comparators in the
//! paper's related-work discussion (§6): **Class Hierarchy Analysis** (Dean,
//! Grove, Chambers) and **Rapid Type Analysis** (Bacon, Sweeney). The
//! paper's own baseline — the type-based flow-insensitive points-to analysis
//! (`PTA`) — is the SkipFlow engine with predicates and primitives disabled
//! ([`skipflow_core::AnalysisConfig::baseline_pta`]); these two sit *below*
//! it on the precision ladder:
//!
//! ```text
//! CHA ⊇ RTA ⊇ PTA ⊇ SkipFlow      (reachable methods)
//! ```
//!
//! Both algorithms run over the same [`skipflow_ir::Program`] as the main
//! engine, so the precision ladder is directly measurable (see the
//! `precision_ladder` integration test and the bench harness). The ladder is
//! queried through one interface: [`CallGraph`] implements
//! [`skipflow_core::CallGraphQuery`], the same trait the engine's
//! `AnalysisResult`/`AnalysisSnapshot` implement, so comparisons like
//! `pta.refines(&rta)` work across analysis families.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cha;
pub mod rta;
pub mod sccp;

pub use cha::class_hierarchy_analysis;
pub use rta::rapid_type_analysis;
pub use sccp::{sccp, sccp_program, SccpResult};
pub use skipflow_core::CallGraphQuery;

use skipflow_ir::{MethodId, Program, SelectorId, Stmt};
use std::collections::BTreeSet;

/// The result of a baseline call-graph construction.
#[derive(Clone, Debug)]
pub struct CallGraph {
    /// Methods reachable from the roots.
    pub reachable: BTreeSet<MethodId>,
    /// Total number of call edges discovered.
    pub call_edges: usize,
    /// Virtual call sites with two or more targets (the PolyCalls metric).
    pub poly_calls: usize,
}

impl CallGraph {
    /// Number of reachable methods.
    pub fn reachable_count(&self) -> usize {
        self.reachable.len()
    }

    /// Whether `m` is reachable.
    pub fn is_reachable(&self, m: MethodId) -> bool {
        self.reachable.contains(&m)
    }
}

impl CallGraphQuery for CallGraph {
    fn is_reachable(&self, m: MethodId) -> bool {
        CallGraph::is_reachable(self, m)
    }

    fn reachable_count(&self) -> usize {
        CallGraph::reachable_count(self)
    }

    fn reachable_ids(&self) -> Vec<MethodId> {
        self.reachable.iter().copied().collect()
    }

    fn call_edge_count(&self) -> usize {
        self.call_edges
    }

    fn poly_call_count(&self) -> usize {
        self.poly_calls
    }
}

/// Iterates over the call sites of a method body:
/// `(selector, is_virtual)` for virtual calls, plus statically bound targets.
pub(crate) fn body_calls(
    program: &Program,
    m: MethodId,
) -> (Vec<SelectorId>, Vec<MethodId>, Vec<skipflow_ir::TypeId>) {
    let mut virtuals = Vec::new();
    let mut statics = Vec::new();
    let mut allocations = Vec::new();
    if let Some(body) = &program.method(m).body {
        for (_, block) in body.iter_blocks() {
            for stmt in &block.stmts {
                match stmt {
                    Stmt::Invoke { selector, .. } => virtuals.push(*selector),
                    Stmt::InvokeStatic { target, .. } => statics.push(*target),
                    Stmt::Assign {
                        expr: skipflow_ir::Expr::New(t),
                        ..
                    } => allocations.push(*t),
                    _ => {}
                }
            }
        }
    }
    (virtuals, statics, allocations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipflow_core::{analyze, AnalysisConfig};
    use skipflow_ir::frontend::compile;

    const LADDER: &str = "
        abstract class Animal { abstract method speak(): int; }
        class Dog extends Animal { method speak(): int { return 1; } }
        class Cat extends Animal { method speak(): int { return 2; } }
        class Fish extends Animal { method speak(): int { return 3; } }
        class Main {
          static method hear(a: Animal): int { return a.speak(); }
          static method main(): void {
            var d = new Dog();
            Main.hear(d);
          }
        }
    ";

    #[test]
    fn precision_ladder_cha_rta_pta_skipflow() {
        let p = compile(LADDER).unwrap();
        let main_cls = p.type_by_name("Main").unwrap();
        let main = p.method_by_name(main_cls, "main").unwrap();

        let cha = class_hierarchy_analysis(&p, &[main]);
        let rta = rapid_type_analysis(&p, &[main]);
        let pta = analyze(&p, &[main], &AnalysisConfig::baseline_pta());
        let skf = analyze(&p, &[main], &AnalysisConfig::skipflow());

        // CHA reaches every override of speak; RTA only instantiated Dog.
        let dog = p.method_by_name(p.type_by_name("Dog").unwrap(), "speak").unwrap();
        let cat = p.method_by_name(p.type_by_name("Cat").unwrap(), "speak").unwrap();
        let fish = p.method_by_name(p.type_by_name("Fish").unwrap(), "speak").unwrap();
        assert!(cha.is_reachable(dog) && cha.is_reachable(cat) && cha.is_reachable(fish));
        assert!(rta.is_reachable(dog) && !rta.is_reachable(cat) && !rta.is_reachable(fish));

        // The ladder: each analysis is at least as precise as the previous,
        // checked through the unified CallGraphQuery interface.
        assert!(rta.refines(&cha));
        assert!(pta.refines(&rta));
        assert!(skf.refines(&pta));
        // CallGraphQuery counts agree with the concrete representations.
        assert_eq!(CallGraphQuery::reachable_count(&cha), cha.reachable.len());
        assert_eq!(
            CallGraphQuery::reachable_count(&skf),
            skf.reachable_methods().len()
        );
    }

    #[test]
    fn cha_counts_polycalls_pessimistically() {
        let p = compile(LADDER).unwrap();
        let main_cls = p.type_by_name("Main").unwrap();
        let main = p.method_by_name(main_cls, "main").unwrap();
        let cha = class_hierarchy_analysis(&p, &[main]);
        let rta = rapid_type_analysis(&p, &[main]);
        assert_eq!(cha.poly_calls, 1, "3-target a.speak()");
        assert_eq!(rta.poly_calls, 0, "only Dog is instantiated");
    }
}
