//! Sparse Conditional Constant Propagation (Wegman–Zadeck), intraprocedural.
//!
//! The paper's §7 positions SkipFlow as "a novel Whole-Program Sparse
//! Conditional Constant Propagation": classical SCCP operates within a
//! single compilation unit, so a branch on a value that is constant only
//! *interprocedurally* (a parameter, a callee's return) cannot be folded.
//! This module implements the classical algorithm so the gap is measurable:
//! every branch SCCP folds, SkipFlow folds too (see the integration tests),
//! and the bench harness counts how many more SkipFlow gets.

use skipflow_ir::{
    BlockBegin, BlockEnd, BlockId, Body, CmpOp, Cond, Expr, MethodId, Program, Stmt, TypeId, VarId,
};
use std::collections::VecDeque;

/// The classic SCCP lattice, extended with exact object information so
/// intraprocedural `instanceof` and null checks fold as well.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatVal {
    /// Not yet seen (⊥).
    Bottom,
    /// A known integer constant.
    Const(i64),
    /// Definitely the null reference.
    Null,
    /// Definitely an object of exactly this runtime type (from `new T`).
    Obj(TypeId),
    /// Overdefined (⊤).
    Top,
}

impl LatVal {
    fn join(self, other: LatVal) -> LatVal {
        use LatVal::*;
        match (self, other) {
            (Bottom, x) | (x, Bottom) => x,
            (a, b) if a == b => a,
            _ => Top,
        }
    }
}

/// The per-method result of SCCP.
#[derive(Clone, Debug)]
pub struct SccpResult {
    /// Executable blocks (entry always included).
    pub executable: Vec<bool>,
    /// Lattice value per SSA variable.
    pub values: Vec<LatVal>,
    /// Branches (`if` terminators) with exactly one executable successor —
    /// the foldable ones.
    pub folded_branches: Vec<BlockId>,
}

impl SccpResult {
    /// Blocks proven unreachable inside the method.
    pub fn dead_blocks(&self) -> Vec<BlockId> {
        self.executable
            .iter()
            .enumerate()
            .filter(|(_, e)| !**e)
            .map(|(i, _)| BlockId::from_index(i))
            .collect()
    }
}

/// Runs SCCP on one method body.
///
/// # Examples
///
/// ```
/// use skipflow_baselines::sccp::sccp;
/// use skipflow_ir::frontend::compile;
///
/// let program = compile(
///     "class Main { static method m(): int {
///        var x = 1;
///        if (x == 1) { return 10; }
///        return 20;
///      } }",
/// )?;
/// let cls = program.type_by_name("Main").unwrap();
/// let m = program.method_by_name(cls, "m").unwrap();
/// let result = sccp(&program, program.method(m).body.as_ref().unwrap());
/// assert_eq!(result.folded_branches.len(), 1);
/// # Ok::<(), skipflow_ir::frontend::FrontendError>(())
/// ```
pub fn sccp(program: &Program, body: &Body) -> SccpResult {
    let n_blocks = body.block_count();
    let n_vars = body.vars.len();
    let preds = body.predecessors();

    let mut values = vec![LatVal::Bottom; n_vars];
    let mut exec_block = vec![false; n_blocks];
    // Executable CFG edges, keyed (from, to).
    let mut exec_edge = std::collections::HashSet::new();
    let mut block_worklist: VecDeque<BlockId> = VecDeque::new();
    let mut var_worklist: VecDeque<VarId> = VecDeque::new();

    // Uses index: for each var, the blocks whose evaluation depends on it.
    let mut use_blocks: Vec<Vec<BlockId>> = vec![Vec::new(); n_vars];
    for (id, block) in body.iter_blocks() {
        if let BlockBegin::Merge { phis, .. } = &block.begin {
            for phi in phis {
                for a in &phi.args {
                    use_blocks[a.index()].push(id);
                }
            }
        }
        for stmt in &block.stmts {
            for u in stmt.uses() {
                use_blocks[u.index()].push(id);
            }
        }
        for u in block.end.uses() {
            use_blocks[u.index()].push(id);
        }
    }

    exec_block[BlockId::ENTRY.index()] = true;
    block_worklist.push_back(BlockId::ENTRY);
    // Parameters are unknown inputs.
    for p in body.params() {
        values[p.index()] = LatVal::Top;
    }

    let eval_cond = |cond: &Cond, values: &[LatVal]| -> Option<bool> {
        match cond {
            Cond::Cmp { op, lhs, rhs } => {
                let l = values[lhs.index()];
                let r = values[rhs.index()];
                match (l, r) {
                    (LatVal::Const(a), LatVal::Const(b)) => Some(op.eval(a, b)),
                    (LatVal::Null, LatVal::Null) => match op {
                        CmpOp::Eq => Some(true),
                        CmpOp::Ne => Some(false),
                        _ => None,
                    },
                    // Exactly-typed object vs null: identity is decidable.
                    (LatVal::Obj(_), LatVal::Null) | (LatVal::Null, LatVal::Obj(_)) => match op {
                        CmpOp::Eq => Some(false),
                        CmpOp::Ne => Some(true),
                        _ => None,
                    },
                    _ => None,
                }
            }
            Cond::InstanceOf { var, ty, negated } => {
                let is = match values[var.index()] {
                    LatVal::Obj(t) => Some(program.is_subtype(t, *ty)),
                    LatVal::Null => Some(false),
                    _ => None,
                }?;
                Some(is != *negated)
            }
        }
    };

    // Process a block's straight-line part once executable; returns the
    // changed vars.
    let eval_stmt = |stmt: &Stmt, values: &mut [LatVal]| -> Option<VarId> {
        let (def, val) = match stmt {
            Stmt::Assign { def, expr } => {
                let v = match expr {
                    Expr::Const(n) => LatVal::Const(*n),
                    Expr::AnyPrim => LatVal::Top,
                    Expr::New(t) => LatVal::Obj(*t),
                    Expr::Null => LatVal::Null,
                };
                (*def, v)
            }
            // Heap and calls are outside the compilation unit's knowledge.
            Stmt::Load { def, .. }
            | Stmt::Invoke { def, .. }
            | Stmt::InvokeStatic { def, .. }
            | Stmt::Catch { def, .. } => (*def, LatVal::Top),
            Stmt::Store { .. } => return None,
        };
        let joined = values[def.index()].join(val);
        if joined != values[def.index()] {
            values[def.index()] = joined;
            Some(def)
        } else {
            None
        }
    };

    // Main SCCP loop.
    loop {
        let mut progress = false;
        while let Some(b) = block_worklist.pop_front() {
            progress = true;
            // φs of b: join over executable incoming edges.
            if let BlockBegin::Merge { phis, preds: decl } = &body.block(b).begin {
                for phi in phis {
                    let mut v = values[phi.def.index()];
                    for (j, p) in decl.iter().enumerate() {
                        if exec_edge.contains(&(*p, b)) {
                            v = v.join(values[phi.args[j].index()]);
                        }
                    }
                    if v != values[phi.def.index()] {
                        values[phi.def.index()] = v;
                        var_worklist.push_back(phi.def);
                    }
                }
            }
            for stmt in &body.block(b).stmts {
                if let Some(changed) = eval_stmt(stmt, &mut values) {
                    var_worklist.push_back(changed);
                }
            }
            match &body.block(b).end {
                BlockEnd::Return(_) | BlockEnd::Throw(_) => {}
                BlockEnd::Jump(t) => {
                    mark_edge(b, *t, &mut exec_edge, &mut exec_block, &mut block_worklist);
                }
                BlockEnd::If {
                    cond,
                    then_block,
                    else_block,
                } => match eval_cond(cond, &values) {
                    Some(true) => {
                        mark_edge(b, *then_block, &mut exec_edge, &mut exec_block, &mut block_worklist)
                    }
                    Some(false) => {
                        mark_edge(b, *else_block, &mut exec_edge, &mut exec_block, &mut block_worklist)
                    }
                    None => {
                        mark_edge(b, *then_block, &mut exec_edge, &mut exec_block, &mut block_worklist);
                        mark_edge(b, *else_block, &mut exec_edge, &mut exec_block, &mut block_worklist);
                    }
                },
            }
        }
        while let Some(v) = var_worklist.pop_front() {
            progress = true;
            for &b in &use_blocks[v.index()] {
                if exec_block[b.index()] {
                    block_worklist.push_back(b);
                }
            }
        }
        if !progress {
            break;
        }
    }

    // Foldable branches: executable ifs with one dead successor edge.
    let mut folded = Vec::new();
    for (id, block) in body.iter_blocks() {
        if !exec_block[id.index()] {
            continue;
        }
        if let BlockEnd::If {
            then_block,
            else_block,
            ..
        } = &block.end
        {
            let t = exec_edge.contains(&(id, *then_block));
            let e = exec_edge.contains(&(id, *else_block));
            if t != e {
                folded.push(id);
            }
        }
    }
    let _ = preds;

    SccpResult {
        executable: exec_block,
        values,
        folded_branches: folded,
    }
}

fn mark_edge(
    from: BlockId,
    to: BlockId,
    exec_edge: &mut std::collections::HashSet<(BlockId, BlockId)>,
    exec_block: &mut [bool],
    worklist: &mut VecDeque<BlockId>,
) {
    let new_edge = exec_edge.insert((from, to));
    let new_block = !exec_block[to.index()];
    if new_block {
        exec_block[to.index()] = true;
    }
    if new_edge || new_block {
        // φ joins depend on edges, so re-evaluate the target either way.
        worklist.push_back(to);
    }
}

/// Convenience: SCCP over every concrete method; returns
/// `(method, folded branch count, dead block count)` per method.
pub fn sccp_program(program: &Program) -> Vec<(MethodId, usize, usize)> {
    program
        .iter_methods()
        .filter_map(|m| {
            let body = program.method(m).body.as_ref()?;
            let r = sccp(program, body);
            Some((m, r.folded_branches.len(), r.dead_blocks().len()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipflow_ir::frontend::compile;

    fn run_on(src: &str, class: &str, method: &str) -> (Program, MethodId, SccpResult) {
        let p = compile(src).unwrap();
        let c = p.type_by_name(class).unwrap();
        let m = p.method_by_name(c, method).unwrap();
        let r = sccp(&p, p.method(m).body.as_ref().unwrap());
        (p, m, r)
    }

    #[test]
    fn folds_local_constant_branches() {
        let (_, _, r) = run_on(
            "class Main { static method m(): int {
               var x = 1;
               if (x == 1) { return 10; }
               return 20;
             } }",
            "Main",
            "m",
        );
        assert_eq!(r.folded_branches.len(), 1);
        assert!(!r.dead_blocks().is_empty(), "the else side is dead");
    }

    #[test]
    fn cannot_fold_parameter_branches() {
        // The Figure 4 discussion: when x is a parameter, intraprocedural
        // constant folding is powerless.
        let (_, _, r) = run_on(
            "class Main { static method m(x: int): int {
               if (x == 1) { return 10; }
               return 20;
             } }",
            "Main",
            "m",
        );
        assert!(r.folded_branches.is_empty());
        assert!(r.dead_blocks().is_empty());
    }

    #[test]
    fn folds_local_instanceof_and_null_checks() {
        let (_, _, r) = run_on(
            "class A { }
             class B { }
             class Main { static method m(): int {
               var a = new A();
               if (a instanceof B) { return 1; }
               if (a == null) { return 2; }
               return 3;
             } }",
            "Main",
            "m",
        );
        assert_eq!(r.folded_branches.len(), 2);
    }

    #[test]
    fn phi_of_equal_constants_stays_constant() {
        let (_, _, r) = run_on(
            "class Main { static method m(c: int): int {
               var x = 0;
               if (c == 0) { x = 5; } else { x = 5; }
               if (x == 5) { return 1; }
               return 0;
             } }",
            "Main",
            "m",
        );
        // The second branch folds even though the first cannot.
        assert_eq!(r.folded_branches.len(), 1);
    }

    #[test]
    fn phi_of_distinct_constants_is_top() {
        let (_, _, r) = run_on(
            "class Main { static method m(c: int): int {
               var x = 0;
               if (c == 0) { x = 5; } else { x = 6; }
               if (x == 5) { return 1; }
               return 0;
             } }",
            "Main",
            "m",
        );
        assert!(r.folded_branches.is_empty());
    }

    #[test]
    fn loops_converge() {
        let (_, _, r) = run_on(
            "class Main { static method m(): int {
               var i = 0;
               while (i < 10) { i = any(); }
               return i;
             } }",
            "Main",
            "m",
        );
        // The loop condition is initially 0 < 10 = true, but `any()` makes i
        // Top on the back edge, so both exits stay live.
        assert!(r.folded_branches.is_empty());
    }

    #[test]
    fn calls_are_opaque() {
        let (_, _, r) = run_on(
            "class Main {
               static method flag(): int { return 0; }
               static method m(): int {
                 var f = Main.flag();
                 if (f == 0) { return 1; }
                 return 2;
               }
             }",
            "Main",
            "m",
        );
        // SkipFlow folds this (interprocedural constant); SCCP cannot.
        assert!(r.folded_branches.is_empty());
    }
}
