//! Full-corpus verification sweep: for every benchmark, compare PTA and
//! SkipFlow reductions against calibration, and differentially validate the
//! analysis against the reference interpreter and the shrinker.

use skipflow_core::shrink::shrink;
use skipflow_core::{analyze, AnalysisConfig};
use skipflow_ir::interp::{run, InterpConfig};

fn main() {
    let t0 = std::time::Instant::now();
    let mut failures = 0;
    for spec in skipflow_synth::suites::all() {
        let b = skipflow_synth::build_benchmark(&spec);
        let pta = analyze(&b.program, &b.roots, &AnalysisConfig::baseline_pta());
        let skf = analyze(&b.program, &b.roots, &AnalysisConfig::skipflow());
        let red = 1.0
            - skf.reachable_methods().len() as f64 / pta.reachable_methods().len() as f64;

        // Differential: interpreter traces covered; shrunk program identical.
        let shrunk = shrink(&b.program, &skf).expect("shrink validates");
        let new_main = shrunk.method_map[&b.roots[0]];
        let mut diff_ok = true;
        for seed in [0u64, 1, 2] {
            let cfg = InterpConfig { seed, max_steps: 60_000, ..Default::default() };
            let t = run(&b.program, b.roots[0], &[], &cfg);
            for m in &t.executed_methods {
                if !skf.is_reachable(*m) {
                    println!("  !! {}: executed {} unreachable", spec.name, b.program.method_label(*m));
                    diff_ok = false;
                }
            }
            let t2 = run(&shrunk.program, new_main, &[], &cfg);
            if t.outcome != t2.outcome || t.steps != t2.steps {
                println!("  !! {}: shrink changed behaviour (seed {seed})", spec.name);
                diff_ok = false;
            }
        }
        if !diff_ok {
            failures += 1;
        }
        println!(
            "{:28} pta={:5} skf={:5} red={:5.1}% target={:5.1}% diff={}",
            spec.name,
            pta.reachable_methods().len(),
            skf.reachable_methods().len(),
            red * 100.0,
            spec.dead_fraction * 100.0,
            if diff_ok { "ok" } else { "FAIL" }
        );
    }
    println!("total {:?}, failures {failures}", t0.elapsed());
    std::process::exit(if failures == 0 { 0 } else { 1 });
}
