//! Structural sanity of the generated corpus, measured with the IR's CFG
//! analyses: benchmarks must contain loops, branches, virtual dispatch, and
//! field traffic in realistic densities, and every generated body must have
//! a well-formed dominator tree.

use skipflow_ir::cfg::{body_stats, natural_loops, BodyStats, Dominators};
use skipflow_synth::{build_benchmark, suites};

fn aggregate(name: &str) -> (BodyStats, usize) {
    let spec = suites::by_name(name).expect("known benchmark");
    let bench = build_benchmark(&spec);
    let mut total = BodyStats::default();
    let mut methods = 0;
    for m in bench.program.iter_methods() {
        let Some(body) = &bench.program.method(m).body else { continue };
        methods += 1;
        let s = body_stats(body);
        total.blocks += s.blocks;
        total.instructions += s.instructions;
        total.loops += s.loops;
        total.branches += s.branches;
        total.calls += s.calls;
        total.field_accesses += s.field_accesses;
        total.allocations += s.allocations;
    }
    (total, methods)
}

#[test]
fn benchmarks_have_realistic_shape() {
    let (stats, methods) = aggregate("lusearch");
    assert!(methods > 250);
    // Real programs branch, loop, call, and touch the heap.
    assert!(stats.branches * 10 >= methods, "≥0.1 branches/method: {stats:?}");
    assert!(stats.loops > 10, "facades contain loops: {stats:?}");
    assert!(stats.calls > methods / 2, "call-heavy: {stats:?}");
    assert!(stats.field_accesses > 50, "heap traffic: {stats:?}");
    assert!(stats.allocations > 50, "allocations: {stats:?}");
    // Average method size stays small (Java-like), not one giant body.
    assert!(stats.instructions / methods < 30, "{stats:?}");
}

#[test]
fn every_generated_body_has_a_consistent_dominator_tree() {
    let spec = suites::by_name("scrabble").unwrap();
    let bench = build_benchmark(&spec);
    for m in bench.program.iter_methods() {
        let Some(body) = &bench.program.method(m).body else { continue };
        let doms = Dominators::compute(body);
        for (id, _) in body.iter_blocks() {
            // Builder output has no unreachable blocks, and the entry
            // dominates everything.
            assert!(doms.is_reachable(id), "{}: {id} unreachable", bench.program.method_label(m));
            assert!(doms.dominates(skipflow_ir::BlockId::ENTRY, id));
        }
        // Loop headers (if any) are merge blocks.
        for l in natural_loops(body, &doms) {
            assert!(matches!(
                body.block(l.header).begin,
                skipflow_ir::BlockBegin::Merge { .. }
            ));
        }
    }
}

#[test]
fn while_bodies_contain_calls() {
    // The ROADMAP coverage gap: loop bodies used to be call-free, hiding
    // loop-predicate bugs (a callee enabled only by a loop body's φ_pred)
    // from the interpreter-differential proptests. The generator now
    // dispatches inside each facade loop.
    let spec = suites::by_name("lusearch").unwrap();
    let bench = build_benchmark(&spec);
    let mut loops_seen = 0usize;
    let mut loops_with_calls = 0usize;
    for m in bench.program.iter_methods() {
        let Some(body) = &bench.program.method(m).body else { continue };
        let doms = Dominators::compute(body);
        for l in natural_loops(body, &doms) {
            loops_seen += 1;
            let has_call = l.blocks.iter().any(|&b| {
                body.block(b).stmts.iter().any(|s| {
                    matches!(
                        s,
                        skipflow_ir::Stmt::Invoke { .. } | skipflow_ir::Stmt::InvokeStatic { .. }
                    )
                })
            });
            if has_call {
                loops_with_calls += 1;
            }
        }
    }
    assert!(loops_seen > 10, "corpus has loops: {loops_seen}");
    assert_eq!(
        loops_with_calls, loops_seen,
        "every facade loop dispatches from its body"
    );
    // The knob still produces call-free loops for ablation.
    let plain = build_benchmark(&spec.clone().with_loop_calls(false));
    let mut plain_calls = 0usize;
    for m in plain.program.iter_methods() {
        let Some(body) = &plain.program.method(m).body else { continue };
        let doms = Dominators::compute(body);
        for l in natural_loops(body, &doms) {
            plain_calls += l
                .blocks
                .iter()
                .filter(|&&b| {
                    body.block(b).stmts.iter().any(|s| {
                        matches!(
                            s,
                            skipflow_ir::Stmt::Invoke { .. }
                                | skipflow_ir::Stmt::InvokeStatic { .. }
                        )
                    })
                })
                .count();
        }
    }
    assert_eq!(plain_calls, 0, "with_loop_calls(false) restores the old shape");
}

#[test]
fn suites_differ_in_guard_mix_but_share_structure() {
    // The microservice mix is const-flag heavy; sunflow is null-default
    // heavy; both still produce valid calibrated programs.
    for name in ["sunflow", "micronaut-helloworld"] {
        let spec = suites::by_name(name).unwrap();
        let bench = build_benchmark(&spec);
        assert!(bench.dead_methods > 0, "{name} has guarded modules");
        assert!(bench.live_methods > bench.dead_methods / 60, "{name}");
    }
}
