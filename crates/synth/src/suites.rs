//! The 35-benchmark corpus: 8 DaCapo-shaped, 9 microservice-shaped, and 18
//! Renaissance-shaped programs.
//!
//! Sizes are the paper's PTA-reachable method counts at 1/100 scale;
//! `dead_fraction` is the paper's per-benchmark reachable-method reduction
//! (Table 1). The guard *mix* follows each suite's character: Sunflow is
//! dominated by the guarded-default pattern (the paper explains its 52 %
//! outlier through Figure 1), microservice frameworks lean on build-time
//! configuration flags, and the rest use a balanced mix.

use crate::spec::{BenchmarkSpec, GuardMix, Suite};

/// The DaCapo-shaped block of Table 1.
pub fn dacapo() -> Vec<BenchmarkSpec> {
    use Suite::DaCapo as S;
    vec![
        BenchmarkSpec::new("fop", S, 961, 0.071),
        BenchmarkSpec::new("h2", S, 433, 0.076),
        BenchmarkSpec::new("jython", S, 749, 0.060),
        BenchmarkSpec::new("luindex", S, 312, 0.039),
        BenchmarkSpec::new("lusearch", S, 292, 0.035),
        BenchmarkSpec::new("pmd", S, 640, 0.093),
        BenchmarkSpec::new("sunflow", S, 567, 0.523)
            .with_guard_mix(GuardMix::null_default_heavy()),
        BenchmarkSpec::new("xalan", S, 490, 0.170),
    ]
}

/// The microservices block of Table 1 (Spring, Micronaut, Quarkus shapes).
pub fn microservices() -> Vec<BenchmarkSpec> {
    use Suite::Microservices as S;
    let cfg = GuardMix::const_flag_heavy();
    vec![
        BenchmarkSpec::new("micronaut-helloworld", S, 760, 0.033).with_guard_mix(cfg),
        BenchmarkSpec::new("micronaut-mushop-order", S, 1670, 0.073).with_guard_mix(cfg),
        BenchmarkSpec::new("micronaut-mushop-payment", S, 830, 0.042).with_guard_mix(cfg),
        BenchmarkSpec::new("micronaut-mushop-user", S, 1130, 0.067).with_guard_mix(cfg),
        BenchmarkSpec::new("quarkus-helloworld", S, 596, 0.060).with_guard_mix(cfg),
        BenchmarkSpec::new("quarkus-registry", S, 1342, 0.068).with_guard_mix(cfg),
        BenchmarkSpec::new("quarkus-tika", S, 1091, 0.092).with_guard_mix(cfg),
        BenchmarkSpec::new("spring-helloworld", S, 852, 0.056).with_guard_mix(cfg),
        BenchmarkSpec::new("spring-petclinic", S, 2102, 0.081).with_guard_mix(cfg),
    ]
}

/// The Renaissance block of Table 1.
pub fn renaissance() -> Vec<BenchmarkSpec> {
    use Suite::Renaissance as S;
    vec![
        BenchmarkSpec::new("akka-uct", S, 388, 0.064),
        BenchmarkSpec::new("als", S, 3816, 0.158),
        BenchmarkSpec::new("chi-square", S, 2178, 0.172),
        BenchmarkSpec::new("dec-tree", S, 3854, 0.157),
        BenchmarkSpec::new("finagle-chirper", S, 949, 0.127),
        BenchmarkSpec::new("finagle-http", S, 939, 0.128),
        BenchmarkSpec::new("fj-kmeans", S, 280, 0.055),
        BenchmarkSpec::new("future-genetic", S, 288, 0.056),
        BenchmarkSpec::new("log-regression", S, 3947, 0.153),
        BenchmarkSpec::new("mnemonics", S, 282, 0.055),
        BenchmarkSpec::new("par-mnemonics", S, 282, 0.055),
        BenchmarkSpec::new("philosophers", S, 309, 0.041),
        BenchmarkSpec::new("reactors", S, 314, 0.037),
        BenchmarkSpec::new("rx-scrabble", S, 290, 0.052),
        BenchmarkSpec::new("scala-doku", S, 290, 0.055),
        BenchmarkSpec::new("scala-kmeans", S, 279, 0.055),
        BenchmarkSpec::new("scala-stm-bench7", S, 328, 0.040),
        BenchmarkSpec::new("scrabble", S, 283, 0.055),
    ]
}

/// All 35 benchmarks, DaCapo first (the paper's Table 1 order).
pub fn all() -> Vec<BenchmarkSpec> {
    let mut v = dacapo();
    v.extend(microservices());
    v.extend(renaissance());
    v
}

/// A small, fast subset for smoke tests and quick iteration: the smallest
/// program of each suite plus the Sunflow outlier.
pub fn quick() -> Vec<BenchmarkSpec> {
    vec![
        BenchmarkSpec::new("lusearch", Suite::DaCapo, 292, 0.035),
        BenchmarkSpec::new("sunflow", Suite::DaCapo, 567, 0.523)
            .with_guard_mix(GuardMix::null_default_heavy()),
        BenchmarkSpec::new("micronaut-helloworld", Suite::Microservices, 760, 0.033)
            .with_guard_mix(GuardMix::const_flag_heavy()),
        BenchmarkSpec::new("scrabble", Suite::Renaissance, 283, 0.055),
    ]
}

/// Looks a spec up by name across all suites.
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_35_benchmarks() {
        assert_eq!(dacapo().len(), 8);
        assert_eq!(microservices().len(), 9);
        assert_eq!(renaissance().len(), 18);
        assert_eq!(all().len(), 35);
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            all().into_iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 35);
    }

    #[test]
    fn by_name_finds_specs() {
        assert!(by_name("sunflow").is_some());
        assert!(by_name("spring-petclinic").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn dead_fractions_match_the_paper_bands() {
        // DaCapo: max 52.3 %, min 3.5 % (Table 1).
        let d = dacapo();
        let max = d.iter().map(|s| s.dead_fraction).fold(0.0, f64::max);
        let min = d.iter().map(|s| s.dead_fraction).fold(1.0, f64::min);
        assert!((max - 0.523).abs() < 1e-9);
        assert!((min - 0.035).abs() < 1e-9);
    }
}
