//! # skipflow-synth
//!
//! Deterministic synthetic workload generation for the SkipFlow evaluation.
//!
//! The paper evaluates on DaCapo, Renaissance, and a set of microservice
//! applications — hundreds of thousands of Java methods that are not
//! available here. This crate builds 1/100-scale stand-ins from the code
//! patterns the paper identifies as the source of SkipFlow's precision wins
//! (guarded defaults, constant configuration flags, interprocedural type
//! tests, always-throwing asserts), calibrated per benchmark to the
//! reachable-method reductions of Table 1. The *mechanism* is genuinely
//! exercised: the baseline PTA really does pull the guarded modules in, and
//! SkipFlow really does prove them dead — nothing is hard-coded.
//!
//! ```
//! use skipflow_synth::{build_benchmark, suites};
//! use skipflow_core::{analyze, AnalysisConfig};
//!
//! let spec = suites::by_name("lusearch").unwrap();
//! let bench = build_benchmark(&spec);
//! let result = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
//! assert!(result.reachable_methods().len() > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod edits;
mod generator;
mod spec;
pub mod suites;

pub use edits::{build_edit_script, EditOp, EditScript};
pub use generator::{build, build_benchmark, Benchmark};
pub use spec::{BenchmarkSpec, GuardKind, GuardMix, Suite};

use skipflow_ir::{MethodId, Program};

/// Deterministically selects up to `want` extra root methods spread evenly
/// across `program` (concrete methods only), skipping the `existing` roots.
/// The incremental-resume workloads (the trajectory harness's `resume`
/// rungs and `tests/session_resume.rs`) share this selection so the
/// benchmarked workload is exactly the differentially tested one.
pub fn pick_spread_roots(
    program: &Program,
    existing: &[MethodId],
    want: usize,
) -> Vec<MethodId> {
    let candidates: Vec<MethodId> = program
        .iter_methods()
        .filter(|&m| program.method(m).body.is_some() && !existing.contains(&m))
        .collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let stride = (candidates.len() / want.max(1)).max(1);
    candidates.into_iter().step_by(stride).take(want).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipflow_core::{analyze, AnalysisConfig};

    #[test]
    fn skipflow_reduction_tracks_the_calibrated_fraction() {
        // The generated program's SkipFlow-vs-PTA reduction must land close
        // to the spec's dead fraction — that is the calibration contract.
        for spec in [
            suites::by_name("lusearch").unwrap(),
            suites::by_name("sunflow").unwrap(),
        ] {
            let bench = build_benchmark(&spec);
            let pta = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta());
            let skf = analyze(&bench.program, &bench.roots, &AnalysisConfig::skipflow());
            let pta_n = pta.reachable_methods().len() as f64;
            let skf_n = skf.reachable_methods().len() as f64;
            let reduction = 1.0 - skf_n / pta_n;
            assert!(
                (reduction - spec.dead_fraction).abs() < 0.08,
                "{}: measured reduction {reduction:.3} vs calibrated {:.3} \
                 (PTA {pta_n}, SkipFlow {skf_n})",
                spec.name,
                spec.dead_fraction
            );
        }
    }

    #[test]
    fn pta_reaches_nearly_everything_generated() {
        let spec = suites::by_name("lusearch").unwrap();
        let bench = build_benchmark(&spec);
        let pta = analyze(&bench.program, &bench.roots, &AnalysisConfig::baseline_pta());
        let reached = pta.reachable_methods().len() as f64;
        let total = bench.total_methods() as f64;
        assert!(
            reached / total > 0.95,
            "PTA should reach ~all generated code: {reached}/{total}"
        );
    }
}
