//! Deterministic edit-script generation over a generated benchmark.
//!
//! An [`EditScript`] is a seeded, reproducible sequence of session
//! operations — root additions, root retractions, method-body edits, and
//! solve points — used by the non-monotone incrementality harnesses: the
//! differential tests in `tests/edit_scripts.rs`, the server stress test,
//! and the trajectory harness's `edit-` family. The generator maintains a
//! model of the session (current roots, masked methods) so every emitted
//! operation is valid at its position: retractions name current roots,
//! disables name unmasked concrete methods, restores name masked ones.

use crate::Benchmark;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skipflow_ir::MethodId;

/// One operation of an [`EditScript`], in session-API terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditOp {
    /// Register new entry points (`AnalysisSession::add_roots`).
    AddRoots(Vec<MethodId>),
    /// Remove entry points (`AnalysisSession::retract_roots`). Every named
    /// method is a current root at this point of the script.
    RetractRoots(Vec<MethodId>),
    /// Mask a method body out (`MethodEdit::DisableBody`). The method is
    /// concrete and unmasked at this point of the script.
    DisableMethod(MethodId),
    /// Restore a masked body (`MethodEdit::RestoreBody`). The method is
    /// masked at this point of the script.
    RestoreMethod(MethodId),
    /// Run the solver to the fixpoint of the current configuration — the
    /// points where differential harnesses compare against a fresh solve.
    Solve,
}

/// A seeded, valid-by-construction operation sequence (see module docs),
/// plus the final configuration it leaves behind.
#[derive(Clone, Debug)]
pub struct EditScript {
    /// The operations, in order. Always ends with [`EditOp::Solve`].
    pub ops: Vec<EditOp>,
    /// Roots that remain registered after the whole script ran.
    pub final_roots: Vec<MethodId>,
    /// Methods that remain masked after the whole script ran.
    pub final_masked: Vec<MethodId>,
}

/// Builds a deterministic edit script of `steps` mutation operations over
/// `bench`, with up to `churn` roots moved per add/retract batch. The same
/// `(bench, seed, steps, churn)` always yields the same script. A solve
/// point is inserted after every mutation with probability ½ (and always at
/// the end), so scripts exercise both solved-in and pending retractions.
pub fn build_edit_script(bench: &Benchmark, seed: u64, steps: usize, churn: usize) -> EditScript {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5edc_a11e);
    let churn = churn.max(1);

    // Candidate pools. Roots rotate through the benchmark's entry points
    // plus a spread of extra concrete methods; edits hit any concrete
    // method (including live ones — that is what makes invalidation
    // non-trivial).
    let extra = crate::pick_spread_roots(&bench.program, &bench.roots, 4 * churn);
    let mut root_pool: Vec<MethodId> = bench.roots.iter().copied().chain(extra).collect();
    let editable: Vec<MethodId> = bench
        .program
        .iter_methods()
        .filter(|&m| bench.program.method(m).body.is_some())
        .collect();

    let mut roots: Vec<MethodId> = bench.roots.clone();
    root_pool.retain(|m| !roots.contains(m));
    let mut masked: Vec<MethodId> = Vec::new();
    let mut ops = vec![EditOp::Solve];

    for _ in 0..steps {
        let op = match rng.gen_range(0..4u32) {
            0 if !root_pool.is_empty() => {
                let n = rng.gen_range(1..churn.min(root_pool.len()) + 1);
                let batch: Vec<MethodId> =
                    (0..n).map(|_| root_pool.remove(rng.gen_range(0..root_pool.len()))).collect();
                roots.extend(batch.iter().copied());
                EditOp::AddRoots(batch)
            }
            1 if roots.len() > 1 => {
                let n = rng.gen_range(1..churn.min(roots.len() - 1) + 1);
                let batch: Vec<MethodId> =
                    (0..n).map(|_| roots.remove(rng.gen_range(0..roots.len()))).collect();
                root_pool.extend(batch.iter().copied());
                EditOp::RetractRoots(batch)
            }
            2 => {
                let candidates: Vec<MethodId> = editable
                    .iter()
                    .copied()
                    .filter(|m| !masked.contains(m))
                    .collect();
                if candidates.is_empty() {
                    continue;
                }
                let m = candidates[rng.gen_range(0..candidates.len())];
                masked.push(m);
                EditOp::DisableMethod(m)
            }
            _ => {
                if masked.is_empty() {
                    continue;
                }
                EditOp::RestoreMethod(masked.remove(rng.gen_range(0..masked.len())))
            }
        };
        ops.push(op);
        if rng.gen_range(0..2u32) == 0 {
            ops.push(EditOp::Solve);
        }
    }
    if ops.last() != Some(&EditOp::Solve) {
        ops.push(EditOp::Solve);
    }
    masked.sort();
    EditScript {
        ops,
        final_roots: roots,
        final_masked: masked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;

    #[test]
    fn edit_scripts_are_deterministic_and_valid() {
        let bench = crate::build_benchmark(&suites::by_name("lusearch").unwrap());
        let a = build_edit_script(&bench, 7, 24, 3);
        let b = build_edit_script(&bench, 7, 24, 3);
        assert_eq!(a.ops, b.ops);
        assert_ne!(a.ops, build_edit_script(&bench, 8, 24, 3).ops);
        assert_eq!(a.ops.last(), Some(&EditOp::Solve));

        // Replay the model: every op must be valid at its position.
        let mut roots: Vec<MethodId> = bench.roots.clone();
        let mut masked: Vec<MethodId> = Vec::new();
        for op in &a.ops {
            match op {
                EditOp::AddRoots(batch) => {
                    for m in batch {
                        assert!(!roots.contains(m));
                        roots.push(*m);
                    }
                }
                EditOp::RetractRoots(batch) => {
                    for m in batch {
                        let i = roots.iter().position(|r| r == m).expect("retract a root");
                        roots.remove(i);
                    }
                }
                EditOp::DisableMethod(m) => {
                    assert!(bench.program.method(*m).body.is_some());
                    assert!(!masked.contains(m));
                    masked.push(*m);
                }
                EditOp::RestoreMethod(m) => {
                    let i = masked.iter().position(|x| x == m).expect("restore masked");
                    masked.remove(i);
                }
                EditOp::Solve => {}
            }
        }
        masked.sort();
        assert_eq!(roots, a.final_roots);
        assert_eq!(masked, a.final_masked);
    }
}
