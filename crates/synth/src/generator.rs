//! The deterministic program generator.
//!
//! Programs are assembled from *modules* — clusters of one interface,
//! several implementations with call chains, and a facade with a dispatch
//! helper — mirroring how library subsystems hang off entry points in the
//! paper's benchmarks. *Live* modules are invoked directly from `main`;
//! *dead* modules sit behind one of the guard patterns of
//! [`GuardKind`](crate::GuardKind), which SkipFlow folds and the baseline
//! PTA cannot.
//!
//! Everything is seeded: the same [`BenchmarkSpec`] always yields the same
//! program, bit for bit.

use crate::spec::{BenchmarkSpec, GuardKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skipflow_ir::{
    BranchExit, CmpOp, Cond, MethodId, Program, ProgramBuilder, SelectorId, TypeId,
    TypeRef,
};

/// A generated benchmark program.
#[derive(Debug)]
pub struct Benchmark {
    /// The spec the program was generated from.
    pub spec: BenchmarkSpec,
    /// The program itself.
    pub program: Program,
    /// Analysis entry points (`main`).
    pub roots: Vec<MethodId>,
    /// Extra entry points to register as reflective roots (empty unless the
    /// spec asks for them).
    pub reflective_roots: Vec<MethodId>,
    /// Concrete methods emitted into live code (reachable under every
    /// configuration).
    pub live_methods: usize,
    /// Concrete methods emitted into guarded modules (reachable under PTA,
    /// pruned by SkipFlow).
    pub dead_methods: usize,
}

impl Benchmark {
    /// Total concrete methods generated.
    pub fn total_methods(&self) -> usize {
        self.live_methods + self.dead_methods
    }
}

/// Builds the program described by `spec`.
///
/// # Panics
///
/// Panics if the generated program fails IR validation — that would be a
/// generator bug, not a user error.
pub fn build_benchmark(spec: &BenchmarkSpec) -> Benchmark {
    let mut g = Gen {
        pb: ProgramBuilder::new(),
        rng: StdRng::seed_from_u64(spec.seed),
        spec: spec.clone(),
        live_methods: 0,
        dead_methods: 0,
        live_entries: Vec::new(),
        wires: Vec::new(),
        fail_helper: None,
        next_module: 0,
    };

    let dead_target = (spec.total_methods as f64 * spec.dead_fraction).round() as usize;
    let live_target = spec.total_methods.saturating_sub(dead_target);

    // The shared-field fan-out subsystem comes first so the budget loop
    // below absorbs its method count into the live target.
    if spec.shared_sink_readers > 0 {
        let drive = g.emit_shared_hub(
            spec.shared_sink_readers,
            spec.shared_sink_writers.max(1),
        );
        g.live_entries.push(drive);
    }

    // Alternate live and dead module emission so cross-module call targets
    // exist early and ids interleave like real programs.
    let fanout = spec.dispatch_fanout.max(1);
    let depth = spec.chain_depth.max(1);
    while g.live_methods < live_target || g.dead_methods < dead_target {
        if g.live_methods < live_target {
            let module = g.emit_module(false, fanout, depth);
            g.live_entries.push(module.run);
        }
        if g.dead_methods < dead_target {
            // Shrink the last dead modules so small calibration targets are
            // met without a full-module overshoot.
            let remaining = dead_target - g.dead_methods;
            let full = fanout * (depth + 1) + 2;
            let (df, dd) = if remaining < full { (2, 1) } else { (fanout, depth) };
            let roll = g.rng.gen::<u32>();
            let kind = spec.guard_mix.pick(roll);
            let module = g.emit_module(true, df, dd);
            let wire = g.emit_guard(kind, &module);
            g.wires.push(wire);
        }
    }

    // Reflective entries (Spark-shaped benchmarks register analysis roots
    // via configuration files; paper §5).
    let mut reflective_roots = Vec::new();
    if !g.live_entries.is_empty() {
        for i in 0..g.spec_reflective_entries() {
            reflective_roots.push(g.emit_reflective_entry(i));
        }
    }

    // main(): invoke all live entries and all wires.
    let main_cls = g.pb.add_class("Main");
    let main = g
        .pb
        .method(main_cls, "main")
        .static_()
        .returns(TypeRef::Void)
        .build();
    let entries = g.live_entries.clone();
    let wires = g.wires.clone();
    g.pb.build_body(main, |bb| {
        for e in &entries {
            let _ = bb.invoke_static(*e, &[]);
        }
        for w in &wires {
            let _ = bb.invoke_static(*w, &[]);
        }
        bb.ret(None);
    });
    g.live_methods += 1;

    let program = g
        .pb
        .finish()
        .unwrap_or_else(|e| panic!("generator produced invalid IR for {}: {e}", spec.name));
    Benchmark {
        spec: spec.clone(),
        program,
        roots: vec![main],
        reflective_roots,
        live_methods: g.live_methods,
        dead_methods: g.dead_methods,
    }
}

struct ModuleHandle {
    iface: TypeId,
    impls: Vec<TypeId>,
    enter_sel: SelectorId,
    run: MethodId,
}

struct Gen {
    pb: ProgramBuilder,
    rng: StdRng,
    spec: BenchmarkSpec,
    live_methods: usize,
    dead_methods: usize,
    live_entries: Vec<MethodId>,
    wires: Vec<MethodId>,
    fail_helper: Option<(MethodId, TypeId)>,
    next_module: usize,
}

/// What kind of branching instruction a work method carries.
#[derive(Clone, Copy, PartialEq)]
enum CheckKind {
    None,
    Prim,
    Null,
}

impl Gen {
    fn spec_reflective_entries(&self) -> usize {
        // Spark-shaped Renaissance benchmarks get a reflective surface; the
        // heuristic keys off the large-program sizes used by those specs.
        if self.spec.suite == crate::Suite::Renaissance && self.spec.total_methods >= 2000 {
            4
        } else {
            0
        }
    }

    fn count(&mut self, dead: bool, n: usize) {
        if dead {
            self.dead_methods += n;
        } else {
            self.live_methods += n;
        }
    }

    /// Emits one module: `fanout` implementations of a fresh interface, each
    /// with a call chain of `depth` static helpers, plus a facade with a
    /// dispatching helper and a loop-shaped entry point.
    fn emit_module(&mut self, dead: bool, fanout: usize, depth: usize) -> ModuleHandle {
        let idx = self.next_module;
        self.next_module += 1;
        let n = format!("M{idx}");

        // ---- declarations ---------------------------------------------
        let iface = self.pb.add_interface(&format!("{n}Iface"), &[]);
        self.pb
            .method(iface, "enter")
            .returns(TypeRef::Prim)
            .abstract_()
            .build();
        let enter_sel = self.pb.selector("enter", 0);

        let mut impls = Vec::with_capacity(fanout);
        let mut enters = Vec::with_capacity(fanout);
        let mut works: Vec<Vec<MethodId>> = Vec::with_capacity(fanout);
        let mut buddies = Vec::with_capacity(fanout);
        for k in 0..fanout {
            let cls = self
                .pb
                .class(&format!("{n}Impl{k}"))
                .implements_(iface)
                .build();
            impls.push(cls);
            buddies.push(self.pb.add_field(cls, "buddy", TypeRef::Object(iface)));
            enters.push(self.pb.method(cls, "enter").returns(TypeRef::Prim).build());
            let chain: Vec<MethodId> = (0..depth)
                .map(|d| {
                    self.pb
                        .method(cls, &format!("work{d}"))
                        .static_()
                        .returns(TypeRef::Prim)
                        .build()
                })
                .collect();
            works.push(chain);
            self.count(dead, depth + 1);
        }

        let facade = self.pb.add_class(&format!("{n}Facade"));
        let dispatch = self
            .pb
            .method(facade, "dispatch")
            .static_()
            .params(vec![TypeRef::Object(iface)])
            .returns(TypeRef::Prim)
            .build();
        let run = self
            .pb
            .method(facade, "run")
            .static_()
            .returns(TypeRef::Prim)
            .build();
        self.count(dead, 2);

        // ---- bodies ------------------------------------------------------
        // enter(): optional buddy store, null-checked buddy dispatch, then
        // the work chain.
        for k in 0..fanout {
            let store_buddy = self.rng.gen_bool(0.5);
            let cls = impls[k];
            let buddy = buddies[k];
            let work0 = works[k][0];
            self.pb.build_body(enters[k], move |bb| {
                let this = bb.param(0);
                if store_buddy {
                    let o = bb.new_obj(cls);
                    bb.store(this, buddy, o);
                }
                let b = bb.load(this, buddy);
                let nl = bb.null_();
                bb.if_then(
                    Cond::Cmp {
                        op: CmpOp::Ne,
                        lhs: b,
                        rhs: nl,
                    },
                    |bb| {
                        let _ = bb.invoke(b, enter_sel, &[]);
                        BranchExit::fallthrough()
                    },
                );
                let r = bb.invoke_static(work0, &[]);
                bb.ret(Some(r));
            });

            // Work chain: each hop may carry a check. The chain must bottom
            // out (the analysis is right to treat a cycle with no base case
            // as never returning), so the last hop produces an opaque value.
            for d in 0..depth {
                let target = if d + 1 < depth {
                    Some(works[k][d + 1])
                } else {
                    None
                };
                let check = match self.rng.gen_range(0..4u32) {
                    0 => CheckKind::Prim,
                    1 => CheckKind::Null,
                    _ => CheckKind::None,
                };
                let threshold = self.rng.gen_range(-5i64..20);
                let alloc_cls = impls[self.rng.gen_range(0..fanout)];
                let buddy_field = buddies[self.rng.gen_range(0..fanout)];
                let buddy_owner = {
                    // buddy fields are declared per impl; pick the matching
                    // class so the load is well-typed.
                    let i = buddies.iter().position(|b| *b == buddy_field).unwrap();
                    impls[i]
                };
                self.pb.build_body(works[k][d], move |bb| {
                    match check {
                        CheckKind::Prim => {
                            let v = bb.any_prim();
                            let t = bb.const_(threshold);
                            bb.if_then(
                                Cond::Cmp {
                                    op: CmpOp::Lt,
                                    lhs: v,
                                    rhs: t,
                                },
                                |bb| {
                                    let _ = bb.const_(1);
                                    BranchExit::fallthrough()
                                },
                            );
                        }
                        CheckKind::Null => {
                            let o = bb.new_obj(buddy_owner);
                            let b = bb.load(o, buddy_field);
                            let nl = bb.null_();
                            bb.if_then(
                                Cond::Cmp {
                                    op: CmpOp::Eq,
                                    lhs: b,
                                    rhs: nl,
                                },
                                |bb| {
                                    let _ = bb.const_(0);
                                    BranchExit::fallthrough()
                                },
                            );
                        }
                        CheckKind::None => {
                            let o = bb.new_obj(alloc_cls);
                            let _ = o;
                        }
                    }
                    let r = match target {
                        Some(t) => bb.invoke_static(t, &[]),
                        None => bb.any_prim(),
                    };
                    bb.ret(Some(r));
                });
            }
        }

        // dispatch(x): an instanceof check that survives when the module has
        // more than one implementation, then a virtual call (the PolyCalls
        // metric source).
        let impl0 = impls[0];
        self.pb.build_body(dispatch, move |bb| {
            let x = bb.param(0);
            let j = bb.if_else(
                Cond::InstanceOf {
                    var: x,
                    ty: impl0,
                    negated: false,
                },
                |bb| BranchExit::value(bb.invoke(x, enter_sel, &[])),
                |bb| BranchExit::value(bb.invoke(x, enter_sel, &[])),
            );
            bb.ret(Some(j[0]));
        });

        // run(): allocate every implementation and dispatch over them inside
        // a loop with an opaque bound (both loop exits stay live). With
        // `loop_calls` the body allocates and dispatches per iteration, so
        // callees are entered from inside a loop — their enabling predicate
        // (the loop body's φ_pred) is exactly the late-built predicate
        // plumbing the interpreter-differential proptests must exercise.
        let impls_clone = impls.clone();
        let cross = if !dead && !self.live_entries.is_empty() && self.rng.gen_bool(0.25) {
            Some(self.live_entries[self.rng.gen_range(0..self.live_entries.len())])
        } else {
            None
        };
        let bound = self.rng.gen_range(2i64..6);
        let loop_impl = impls[self.rng.gen_range(0..fanout)];
        let loop_calls = self.spec.loop_calls;
        self.pb.build_body(run, move |bb| {
            let mut acc = bb.const_(0);
            for &imp in &impls_clone {
                let o = bb.new_obj(imp);
                acc = bb.invoke_static(dispatch, &[o]);
            }
            let zero = bb.const_(0);
            let limit = bb.const_(bound);
            let after = bb.while_loop(
                &[zero],
                |_, p| Cond::Cmp {
                    op: CmpOp::Lt,
                    lhs: p[0],
                    rhs: limit,
                },
                |bb, _| {
                    if loop_calls {
                        let o = bb.new_obj(loop_impl);
                        let r = bb.invoke_static(dispatch, &[o]);
                        BranchExit::Values(vec![r])
                    } else {
                        BranchExit::Values(vec![bb.any_prim()])
                    }
                },
            );
            let _ = after;
            if let Some(c) = cross {
                acc = bb.invoke_static(c, &[]);
            }
            bb.ret(Some(acc));
        });

        ModuleHandle {
            iface,
            impls,
            enter_sel,
            run,
        }
    }

    /// Emits the guard wiring for a dead module and returns the wire method
    /// (live, called from `main`).
    fn emit_guard(&mut self, kind: GuardKind, module: &ModuleHandle) -> MethodId {
        let idx = self.wires.len();
        let n = format!("Guard{idx}");
        let run = module.run;
        match kind {
            GuardKind::ConstFlag => {
                // class Config { static enabled(): int { return 0; } }
                // wire: if (Config.enabled() != 0) { run(); }
                let cfg = self.pb.add_class(&format!("{n}Config"));
                let enabled = self
                    .pb
                    .method(cfg, "enabled")
                    .static_()
                    .returns(TypeRef::Prim)
                    .build();
                self.pb.set_trivial_body(enabled, Some(0));
                let wire = self.wire_method(&n);
                self.pb.build_body(wire, move |bb| {
                    let f = bb.invoke_static(enabled, &[]);
                    let zero = bb.const_(0);
                    bb.if_then(
                        Cond::Cmp {
                            op: CmpOp::Ne,
                            lhs: f,
                            rhs: zero,
                        },
                        |bb| {
                            let _ = bb.invoke_static(run, &[]);
                            BranchExit::fallthrough()
                        },
                    );
                    bb.ret(None);
                });
                self.live_methods += 2;
                wire
            }
            GuardKind::TypeTest => {
                // The Figure 2 pattern: an interprocedural boolean-returning
                // type test against a never-instantiated subclass.
                let probe = self.pb.add_class(&format!("{n}Probe"));
                let special = self
                    .pb
                    .class(&format!("{n}Special"))
                    .extends(probe)
                    .abstract_()
                    .build();
                let is_special = self
                    .pb
                    .method(probe, "isSpecial")
                    .returns(TypeRef::Prim)
                    .build();
                self.pb.build_body(is_special, move |bb| {
                    let this = bb.param(0);
                    bb.if_then(
                        Cond::InstanceOf {
                            var: this,
                            ty: special,
                            negated: false,
                        },
                        |bb| {
                            let one = bb.const_(1);
                            bb.ret(Some(one));
                            BranchExit::Terminated
                        },
                    );
                    let zero = bb.const_(0);
                    bb.ret(Some(zero));
                });
                let sel = self.pb.selector("isSpecial", 0);
                let wire = self.wire_method(&n);
                self.pb.build_body(wire, move |bb| {
                    let p = bb.new_obj(probe);
                    let s = bb.invoke(p, sel, &[]);
                    let zero = bb.const_(0);
                    bb.if_then(
                        Cond::Cmp {
                            op: CmpOp::Ne,
                            lhs: s,
                            rhs: zero,
                        },
                        |bb| {
                            let _ = bb.invoke_static(run, &[]);
                            BranchExit::fallthrough()
                        },
                    );
                    bb.ret(None);
                });
                self.live_methods += 2;
                wire
            }
            GuardKind::NullDefault => {
                // The Figure 1 pattern: a never-null value receives a dead
                // default allocation under an `== null` guard.
                let seed = self
                    .pb
                    .class(&format!("{n}Seed"))
                    .implements_(module.iface)
                    .build();
                let seed_enter = self.pb.method(seed, "enter").returns(TypeRef::Prim).build();
                self.pb.set_trivial_body(seed_enter, Some(1));
                let boot = self.pb.add_class(&format!("{n}Boot"));
                let ensure = self
                    .pb
                    .method(boot, "ensure")
                    .static_()
                    .params(vec![TypeRef::Object(module.iface)])
                    .returns(TypeRef::Void)
                    .build();
                let impl0 = module.impls[0];
                let enter_sel = module.enter_sel;
                self.pb.build_body(ensure, move |bb| {
                    let x = bb.param(0);
                    let nl = bb.null_();
                    // Figure 1: the default allocation *and* the module boot
                    // both live in the never-taken branch.
                    let d = bb.if_else(
                        Cond::Cmp {
                            op: CmpOp::Eq,
                            lhs: x,
                            rhs: nl,
                        },
                        |bb| {
                            let o = bb.new_obj(impl0);
                            let _ = bb.invoke_static(run, &[]);
                            BranchExit::value(o)
                        },
                        |_| BranchExit::value(x),
                    );
                    let _ = bb.invoke(d[0], enter_sel, &[]);
                    bb.ret(None);
                });
                let wire = self.wire_method(&n);
                self.pb.build_body(wire, move |bb| {
                    let s = bb.new_obj(seed);
                    bb.invoke_static(ensure, &[s]);
                    bb.ret(None);
                });
                self.live_methods += 3;
                wire
            }
            GuardKind::AlwaysThrows => {
                let (fail, panic_cls) = self.fail_helper();
                let wire = self.wire_method(&n);
                self.pb.build_body(wire, move |bb| {
                    let c = bb.any_prim();
                    let one = bb.const_(1);
                    bb.if_then(
                        Cond::Cmp {
                            op: CmpOp::Eq,
                            lhs: c,
                            rhs: one,
                        },
                        |bb| {
                            bb.invoke_static(fail, &[]);
                            // Unreachable at runtime — and, with predicate
                            // edges, to the analysis too.
                            let _ = bb.invoke_static(run, &[]);
                            BranchExit::fallthrough()
                        },
                    );
                    // A handler after the guarded region: exercises the
                    // coarse exception policy (paper §5) inside the corpus
                    // and contributes a realistic surviving null check.
                    let e = bb.catch_(panic_cls);
                    let nl = bb.null_();
                    bb.if_then(
                        Cond::Cmp {
                            op: CmpOp::Ne,
                            lhs: e,
                            rhs: nl,
                        },
                        |bb| {
                            let _ = bb.const_(0);
                            BranchExit::fallthrough()
                        },
                    );
                    bb.ret(None);
                });
                self.live_methods += 1;
                wire
            }
        }
    }

    /// The shared `Assert.fail()`-style helper (one per program), plus its
    /// panic class for handlers.
    fn fail_helper(&mut self) -> (MethodId, TypeId) {
        if let Some(f) = self.fail_helper {
            return f;
        }
        let panic_cls = self.pb.add_class("PanicError");
        let assert_cls = self.pb.add_class("Assert");
        let fail = self
            .pb
            .method(assert_cls, "fail")
            .static_()
            .returns(TypeRef::Void)
            .build();
        self.pb.build_body(fail, move |bb| {
            let e = bb.new_obj(panic_cls);
            bb.throw(e);
        });
        self.live_methods += 1;
        self.fail_helper = Some((fail, panic_cls));
        (fail, panic_cls)
    }

    fn wire_method(&mut self, name: &str) -> MethodId {
        let cls = self.pb.add_class(&format!("{name}Wire"));
        self.pb
            .method(cls, "wire")
            .static_()
            .returns(TypeRef::Void)
            .build()
    }

    /// Emits the shared-field fan-out subsystem: `writers` hub
    /// implementations stored one by one into a *single* field (one field
    /// sink in the PVPG), and `readers` methods each loading that field and
    /// dispatching on the result. Every store adds one type to the sink's
    /// value state, and every addition must reach all readers — the regime
    /// where difference propagation pushes one type per event while a full
    /// re-join re-pushes the whole accumulated state, and where SCC
    /// priority scheduling drains all writers before the sink fans out.
    /// Returns the live driver method.
    fn emit_shared_hub(&mut self, readers: usize, writers: usize) -> MethodId {
        let iface = self.pb.add_interface("HubIface", &[]);
        self.pb
            .method(iface, "tick")
            .returns(TypeRef::Prim)
            .abstract_()
            .build();
        let tick_sel = self.pb.selector("tick", 0);
        let hub = self.pb.add_class("Hub");
        let sink = self.pb.add_field(hub, "sink", TypeRef::Object(iface));

        let mut write_methods = Vec::with_capacity(writers);
        for k in 0..writers {
            let cls = self
                .pb
                .class(&format!("HubImpl{k}"))
                .implements_(iface)
                .build();
            let tick = self.pb.method(cls, "tick").returns(TypeRef::Prim).build();
            self.pb.set_trivial_body(tick, Some(k as i64));
            let write = self
                .pb
                .method(hub, &format!("write{k}"))
                .static_()
                .params(vec![TypeRef::Object(hub)])
                .returns(TypeRef::Void)
                .build();
            self.pb.build_body(write, move |bb| {
                let h = bb.param(0);
                let o = bb.new_obj(cls);
                bb.store(h, sink, o);
                bb.ret(None);
            });
            write_methods.push(write);
            self.count(false, 2);
        }

        let mut read_methods = Vec::with_capacity(readers);
        for k in 0..readers {
            let read = self
                .pb
                .method(hub, &format!("read{k}"))
                .static_()
                .params(vec![TypeRef::Object(hub)])
                .returns(TypeRef::Prim)
                .build();
            self.pb.build_body(read, move |bb| {
                let h = bb.param(0);
                let v = bb.load(h, sink);
                let nl = bb.null_();
                let j = bb.if_else(
                    Cond::Cmp {
                        op: CmpOp::Ne,
                        lhs: v,
                        rhs: nl,
                    },
                    |bb| BranchExit::value(bb.invoke(v, tick_sel, &[])),
                    |bb| BranchExit::value(bb.const_(0)),
                );
                bb.ret(Some(j[0]));
            });
            read_methods.push(read);
            self.count(false, 1);
        }

        let drive = self
            .pb
            .method(hub, "drive")
            .static_()
            .returns(TypeRef::Prim)
            .build();
        self.pb.build_body(drive, move |bb| {
            let h = bb.new_obj(hub);
            // Readers first: their sink → load use edges wire while the
            // sink is still empty, so every writer's store afterwards is an
            // *incremental* update that must fan out to all readers — the
            // asymmetry between difference propagation (push one new type)
            // and full re-joins (re-push the whole accumulated state).
            let mut acc = bb.const_(0);
            for r in &read_methods {
                acc = bb.invoke_static(*r, &[h]);
            }
            for w in &write_methods {
                let _ = bb.invoke_static(*w, &[h]);
            }
            bb.ret(Some(acc));
        });
        self.count(false, 1);
        drive
    }

    /// A reflective entry point: takes a module interface and dispatches.
    fn emit_reflective_entry(&mut self, i: usize) -> MethodId {
        // Reuse the first live module's interface: entries receive "any
        // instantiated subtype of the declared type" under §5's policy.
        let entry_cls = self.pb.add_class(&format!("ReflectiveEntry{i}"));
        let enter_sel = self.pb.selector("enter", 0);
        // Find any interface named M*Iface via the first live entry's owner…
        // simpler: declare the parameter as the facade-independent root of
        // dispatch — each entry gets its own tiny interface consumer.
        let m = self
            .pb
            .method(entry_cls, "invokeExternal")
            .static_()
            .params(vec![TypeRef::Prim])
            .returns(TypeRef::Prim)
            .build();
        let first_entry = self.live_entries[i % self.live_entries.len()];
        self.pb.build_body(m, move |bb| {
            let _ = enter_sel;
            let r = bb.invoke_static(first_entry, &[]);
            bb.ret(Some(r));
        });
        self.live_methods += 1;
        m
    }
}

/// Convenience: builds a benchmark directly from a spec reference.
pub fn build(spec: &BenchmarkSpec) -> Benchmark {
    build_benchmark(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Suite;

    fn small_spec() -> BenchmarkSpec {
        BenchmarkSpec::new("test-small", Suite::DaCapo, 120, 0.25)
    }

    #[test]
    fn generated_programs_validate() {
        let b = build_benchmark(&small_spec());
        assert!(b.program.method_count() > 0);
        assert_eq!(b.roots.len(), 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build_benchmark(&small_spec());
        let b = build_benchmark(&small_spec());
        assert_eq!(a.program.method_count(), b.program.method_count());
        assert_eq!(a.program.type_count(), b.program.type_count());
        assert_eq!(a.live_methods, b.live_methods);
        assert_eq!(a.dead_methods, b.dead_methods);
        // Same printed form, bit for bit.
        assert_eq!(
            skipflow_ir::printer::print_program(&a.program),
            skipflow_ir::printer::print_program(&b.program)
        );
    }

    #[test]
    fn method_budget_is_respected() {
        let spec = small_spec();
        let b = build_benchmark(&spec);
        let total = b.total_methods();
        // Module granularity allows overshoot by at most two modules.
        let module = spec.dispatch_fanout * (spec.chain_depth + 1) + 2 + 3;
        assert!(
            total >= spec.total_methods && total <= spec.total_methods + 2 * module,
            "total {total} vs target {}",
            spec.total_methods
        );
        // Dead fraction within a couple of modules of the target.
        let f = b.dead_methods as f64 / total as f64;
        assert!(
            (f - spec.dead_fraction).abs() < 0.15,
            "dead fraction {f} vs target {}",
            spec.dead_fraction
        );
    }

    #[test]
    fn zero_dead_fraction_yields_no_dead_modules() {
        let spec = BenchmarkSpec::new("all-live", Suite::DaCapo, 60, 0.0);
        let b = build_benchmark(&spec);
        assert_eq!(b.dead_methods, 0);
    }

    #[test]
    fn shared_sink_subsystem_is_emitted_on_request() {
        let spec = BenchmarkSpec::new("hub", Suite::DaCapo, 60, 0.0).with_shared_sink(12, 5);
        let b = build_benchmark(&spec);
        let hub = b.program.type_by_name("Hub").expect("hub class");
        for k in 0..12 {
            assert!(b.program.method_by_name(hub, &format!("read{k}")).is_some());
        }
        for k in 0..5 {
            assert!(b.program.method_by_name(hub, &format!("write{k}")).is_some());
            assert!(b.program.type_by_name(&format!("HubImpl{k}")).is_some());
        }
        assert!(b.program.method_by_name(hub, "drive").is_some());
        // Default specs stay hub-free (Table 1 calibration untouched).
        let plain = build_benchmark(&small_spec());
        assert!(plain.program.type_by_name("Hub").is_none());
    }
}
