//! Benchmark specifications: the knobs that shape one synthetic program.

/// The benchmark suite a program belongs to (paper §6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Client-side Java workloads (DaCapo 9.12 shapes).
    DaCapo,
    /// Concurrent/object-oriented JVM workloads (Renaissance 0.15 shapes).
    Renaissance,
    /// Spring / Micronaut / Quarkus web services.
    Microservices,
}

impl Suite {
    /// Display name matching the paper's Table 1 blocks.
    pub fn name(self) -> &'static str {
        match self {
            Suite::DaCapo => "DaCapo",
            Suite::Renaissance => "Renaissance",
            Suite::Microservices => "Microservices",
        }
    }
}

/// How a dead module is guarded — each kind is one of the code patterns the
/// paper identifies as the source of SkipFlow's wins (§2, §3, §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GuardKind {
    /// Figure 1 (Sunflow): a never-null parameter gets a `new DeadImpl()`
    /// default under an `== null` guard. Pruned by predicate edges alone.
    NullDefault,
    /// Figure 2 / §3: a configuration method returns the constant `false`;
    /// the guarded branch enters the module. Needs predicates + primitives.
    ConstFlag,
    /// Figure 2 (`isVirtual`): an interprocedural type test on a class that
    /// is never instantiated, returned as a boolean constant. Needs
    /// predicates + primitives.
    TypeTest,
    /// §5 (`Assert.fail()`): an always-throwing helper makes the following
    /// module entry unreachable. Pruned by predicate edges alone.
    AlwaysThrows,
}

/// The mix of guard kinds used for a program's dead modules, as relative
/// weights.
#[derive(Clone, Copy, Debug)]
pub struct GuardMix {
    /// Weight of [`GuardKind::NullDefault`].
    pub null_default: u32,
    /// Weight of [`GuardKind::ConstFlag`].
    pub const_flag: u32,
    /// Weight of [`GuardKind::TypeTest`].
    pub type_test: u32,
    /// Weight of [`GuardKind::AlwaysThrows`].
    pub always_throws: u32,
}

impl GuardMix {
    /// The default mix: an even spread with fewer always-throwing guards.
    pub fn balanced() -> Self {
        GuardMix {
            null_default: 3,
            const_flag: 3,
            type_test: 3,
            always_throws: 1,
        }
    }

    /// A Sunflow-like mix: dominated by the guarded-default pattern (the
    /// paper attributes the 52 % outlier to it).
    pub fn null_default_heavy() -> Self {
        GuardMix {
            null_default: 8,
            const_flag: 1,
            type_test: 1,
            always_throws: 0,
        }
    }

    /// A framework-like mix: configuration flags dominate (microservice
    /// frameworks toggle features with build-time flags).
    pub fn const_flag_heavy() -> Self {
        GuardMix {
            null_default: 1,
            const_flag: 5,
            type_test: 3,
            always_throws: 1,
        }
    }

    pub(crate) fn pick(&self, roll: u32) -> GuardKind {
        let total = self.null_default + self.const_flag + self.type_test + self.always_throws;
        let r = roll % total.max(1);
        if r < self.null_default {
            GuardKind::NullDefault
        } else if r < self.null_default + self.const_flag {
            GuardKind::ConstFlag
        } else if r < self.null_default + self.const_flag + self.type_test {
            GuardKind::TypeTest
        } else {
            GuardKind::AlwaysThrows
        }
    }
}

/// Full specification of one synthetic benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkSpec {
    /// Benchmark name (matches the paper's Table 1 row).
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// RNG seed (derived deterministically from the name by default).
    pub seed: u64,
    /// Target number of concrete methods (≈ the paper's PTA-reachable count
    /// at 1/100 scale).
    pub total_methods: usize,
    /// Fraction of methods placed behind SkipFlow-foldable guards
    /// (≈ the paper's per-benchmark reachable-method reduction).
    pub dead_fraction: f64,
    /// Guard mix for the dead modules.
    pub guard_mix: GuardMix,
    /// Virtual-dispatch fanout: implementations per module interface.
    pub dispatch_fanout: usize,
    /// Call-chain depth inside each implementation.
    pub chain_depth: usize,
    /// Emit calls inside `while` bodies (each facade loop allocates and
    /// dispatches per iteration). On by default so loop-predicate behaviour
    /// — callees whose `φ_pred` enabling arrives mid-solve — is visible to
    /// the interpreter-differential proptests; method counts are unchanged,
    /// so Table 1 calibration is undisturbed.
    pub loop_calls: bool,
    /// Shared-field fan-out workload: number of reader methods loading one
    /// shared field and dispatching on it (`0` disables the subsystem).
    /// This is the regime where difference propagation and SCC ordering
    /// are asymptotically better than full re-joins: every new type stored
    /// into the single field sink must reach every reader without
    /// re-pushing the whole accumulated state.
    pub shared_sink_readers: usize,
    /// Writer implementations feeding the shared field sink (each stores a
    /// distinct type, so the sink's state grows one type at a time).
    pub shared_sink_writers: usize,
}

impl BenchmarkSpec {
    /// Creates a spec with the common defaults; `total_methods` and
    /// `dead_fraction` come straight from the paper's Table 1 (scaled).
    pub fn new(
        name: &str,
        suite: Suite,
        total_methods: usize,
        dead_fraction: f64,
    ) -> Self {
        // A stable seed derived from the name keeps the corpus reproducible
        // without hand-maintaining seed tables.
        let seed = name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
            });
        BenchmarkSpec {
            name: name.to_string(),
            suite,
            seed,
            total_methods,
            dead_fraction,
            guard_mix: GuardMix::balanced(),
            dispatch_fanout: 3,
            chain_depth: 4,
            loop_calls: true,
            shared_sink_readers: 0,
            shared_sink_writers: 0,
        }
    }

    /// Builder-style: overrides the guard mix.
    pub fn with_guard_mix(mut self, mix: GuardMix) -> Self {
        self.guard_mix = mix;
        self
    }

    /// Builder-style: overrides the dispatch fanout.
    pub fn with_fanout(mut self, fanout: usize) -> Self {
        self.dispatch_fanout = fanout;
        self
    }

    /// Builder-style: toggles calls inside `while` bodies.
    pub fn with_loop_calls(mut self, on: bool) -> Self {
        self.loop_calls = on;
        self
    }

    /// Builder-style: enables the shared-field fan-out subsystem with the
    /// given reader and writer counts (writers are clamped to ≥ 1 when
    /// readers are requested).
    pub fn with_shared_sink(mut self, readers: usize, writers: usize) -> Self {
        self.shared_sink_readers = readers;
        self.shared_sink_writers = writers;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_stable_and_distinct() {
        let a = BenchmarkSpec::new("sunflow", Suite::DaCapo, 100, 0.5);
        let b = BenchmarkSpec::new("sunflow", Suite::DaCapo, 100, 0.5);
        let c = BenchmarkSpec::new("xalan", Suite::DaCapo, 100, 0.5);
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn guard_mix_pick_covers_all_kinds() {
        let mix = GuardMix::balanced();
        let kinds: std::collections::HashSet<_> = (0..10).map(|r| mix.pick(r)).collect();
        assert_eq!(kinds.len(), 4);
    }

    #[test]
    fn zero_weight_kinds_are_never_picked() {
        let mix = GuardMix::null_default_heavy(); // always_throws weight 0
        assert!((0..100).map(|r| mix.pick(r)).all(|k| k != GuardKind::AlwaysThrows));
    }
}
