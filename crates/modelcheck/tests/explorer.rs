//! Self-tests for the model checker: the explorer must (a) pass correct
//! concurrent code under every schedule, (b) *find* the classic bug classes
//! it exists for — lost updates, deadlock, leak, use-after-free — and (c)
//! report exploration statistics that prove the tree is actually walked.
#![cfg(feature = "model-check")]

use skipflow_modelcheck::sync::atomic::{AtomicU64, Ordering::SeqCst};
use skipflow_modelcheck::sync::{Arc, Condvar, Mutex};
use skipflow_modelcheck::{explore, thread, try_explore, Options};

#[test]
fn atomic_counter_is_correct_under_every_schedule() {
    let report = explore(Options::default(), || {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    n.fetch_add(1, SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(SeqCst), 2);
    });
    // Two extra threads interleaving a handful of ops each: the tree must
    // branch (exact count is an implementation detail; >1 proves search).
    assert!(report.schedules > 10, "expected real exploration, got {report}");
    assert!(report.branch_points > 0);
}

#[test]
fn lost_update_bug_is_found() {
    // Classic racy read-modify-write: load then store. Some schedule loses
    // an update, and the final assertion turns it into a model failure.
    let failure = try_explore(Options::default(), || {
        let n = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    let v = n.load(SeqCst);
                    n.store(v + 1, SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(n.load(SeqCst), 2, "lost update");
    })
    .expect_err("the explorer must find the lost-update schedule");
    assert!(failure.message.contains("lost update"), "unexpected: {failure}");
}

#[test]
fn mutex_guarantees_exclusion() {
    let report = explore(Options::default(), || {
        let n = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let n = n.clone();
                thread::spawn(move || {
                    let mut g = n.lock().unwrap();
                    let v = *g;
                    // A racy gap between read and write — made safe by the
                    // lock; the explorer proves no schedule breaks it.
                    skipflow_modelcheck::yield_now();
                    *g = v + 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(report.schedules > 1);
}

#[test]
fn condvar_handshake_never_hangs() {
    let report = explore(Options::default(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let setter = {
            let pair = pair.clone();
            thread::spawn(move || {
                let (m, cv) = &*pair;
                *m.lock().unwrap() = true;
                cv.notify_one();
            })
        };
        let (m, cv) = &*pair;
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        setter.join().unwrap();
    });
    assert!(report.schedules > 1);
}

#[test]
fn lock_order_inversion_deadlocks_and_is_detected() {
    let failure = try_explore(Options::default(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let t = {
            let a = a.clone();
            let b = b.clone();
            thread::spawn(move || {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            })
        };
        let _ga = a.lock().unwrap();
        let _gb = b.lock().unwrap();
        drop((_ga, _gb));
        let _ = t.join();
    })
    .expect_err("AB/BA lock order must deadlock under some schedule");
    assert!(failure.message.contains("deadlock"), "unexpected: {failure}");
}

#[test]
fn arc_leak_is_detected() {
    let failure = try_explore(Options::default(), || {
        let v = Arc::new(7u64);
        // Leak one strong count and never recover it.
        let _raw = Arc::into_raw(v);
    })
    .expect_err("a leaked strong count must fail the model");
    assert!(failure.message.contains("leak"), "unexpected: {failure}");
}

#[test]
fn use_after_free_on_raw_arc_is_detected() {
    let failure = try_explore(Options::default(), || {
        let v = Arc::new(7u64);
        let raw = Arc::into_raw(v);
        // SAFETY: `raw` came from `into_raw` and its strong count is still
        // leaked; this reclaims it (dropping the value to zero references).
        unsafe { drop(Arc::from_raw(raw)) };
        // The count is gone; this touch is the bug under test, and the
        // model's quarantine catches it before any real dereference.
        // SAFETY: deliberately unsound — the model intercepts it.
        unsafe { Arc::increment_strong_count(raw) };
    })
    .expect_err("incrementing a reclaimed Arc must fail the model");
    assert!(failure.message.contains("use-after-free"), "unexpected: {failure}");
}

#[test]
fn double_free_through_raw_arc_is_detected() {
    let failure = try_explore(Options::default(), || {
        let v = Arc::new(7u64);
        let raw = Arc::into_raw(v);
        // SAFETY: reclaims the leaked count — sound.
        unsafe { drop(Arc::from_raw(raw)) };
        // SAFETY: deliberately unsound double reclamation — the model
        // intercepts it before the second drop touches freed memory.
        unsafe { drop(Arc::from_raw(raw)) };
    })
    .expect_err("double reclamation must fail the model");
    assert!(
        failure.message.contains("use-after-free") || failure.message.contains("double free"),
        "unexpected: {failure}"
    );
}

#[test]
fn user_panic_is_reported_with_schedule_diagnostics() {
    let failure = try_explore(Options::default(), || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let t = thread::spawn(move || {
            n2.store(1, SeqCst);
        });
        t.join().unwrap();
        assert_ne!(n.load(SeqCst), 1, "saw the store");
    })
    .expect_err("the assertion must fail on some schedule");
    assert!(failure.message.contains("saw the store"), "unexpected: {failure}");
    assert!(failure.message.contains("recent ops"), "missing diagnostics: {failure}");
}

#[test]
fn preemption_bound_prunes_and_unbounded_explores_more() {
    let scenario = || {
        let n = Arc::new(AtomicU64::new(0));
        let n2 = n.clone();
        let t = thread::spawn(move || {
            n2.fetch_add(1, SeqCst);
            n2.fetch_add(1, SeqCst);
        });
        n.fetch_add(1, SeqCst);
        n.fetch_add(1, SeqCst);
        t.join().unwrap();
        assert_eq!(n.load(SeqCst), 4);
    };
    let bounded = explore(
        Options { preemption_bound: Some(0), ..Options::default() },
        scenario,
    );
    let unbounded = explore(
        Options { preemption_bound: None, ..Options::default() },
        scenario,
    );
    assert!(bounded.pruned_by_bound > 0, "bound 0 must prune: {bounded}");
    assert!(
        unbounded.schedules > bounded.schedules,
        "unbounded ({unbounded}) must beat bound-0 ({bounded})"
    );
    assert_eq!(unbounded.pruned_by_bound, 0);
}

#[test]
fn unbounded_spin_is_reported_as_livelock() {
    let failure = try_explore(
        Options { max_depth: 500, ..Options::default() },
        || {
            let flag = Arc::new(AtomicU64::new(0));
            // No writer ever sets the flag; the spin must trip the depth cap
            // (this is exactly why production spin loops must be bounded to
            // be model-checkable).
            while flag.load(SeqCst) == 0 {
                std::hint::spin_loop();
            }
        },
    )
    .expect_err("an unbounded spin must trip the depth cap");
    assert!(failure.message.contains("livelock"), "unexpected: {failure}");
}

#[test]
fn schedule_cap_reports_capped() {
    let report = explore(
        Options { max_schedules: 3, preemption_bound: None, ..Options::default() },
        || {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = n.clone();
            let t = thread::spawn(move || {
                n2.fetch_add(1, SeqCst);
                n2.fetch_add(1, SeqCst);
            });
            n.fetch_add(1, SeqCst);
            t.join().unwrap();
        },
    );
    assert!(report.capped);
    assert_eq!(report.schedules, 3);
}
