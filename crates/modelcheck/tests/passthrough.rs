//! The shim must be `std`-equivalent whenever no model run is active — in
//! BOTH feature configurations. This file compiles and passes with and
//! without `--features model-check`; CI runs it both ways.

use skipflow_modelcheck::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use skipflow_modelcheck::sync::{Arc, Condvar, Mutex};
use skipflow_modelcheck::thread;
use std::time::Duration;

#[test]
fn atomics_and_arc_behave_like_std() {
    let n = Arc::new(AtomicU64::new(1));
    assert_eq!(n.fetch_add(2, SeqCst), 1);
    assert_eq!(n.load(SeqCst), 3);
    assert_eq!(n.swap(9, SeqCst), 3);
    assert!(n.compare_exchange(9, 10, SeqCst, SeqCst).is_ok());
    assert!(n.compare_exchange(9, 11, SeqCst, SeqCst).is_err());

    let m = n.clone();
    assert!(Arc::ptr_eq(&n, &m));
    assert_eq!(Arc::strong_count(&n), 2);
    drop(m);
    assert_eq!(Arc::strong_count(&n), 1);

    let b = AtomicBool::new(false);
    assert!(!b.swap(true, SeqCst));
    assert!(b.load(SeqCst));
}

#[test]
fn arc_raw_roundtrip_behaves_like_std() {
    let v = Arc::new(41u64);
    let raw = Arc::into_raw(v);
    // SAFETY: `raw` holds the leaked strong count; incrementing while it is
    // outstanding is the documented `increment_strong_count` contract.
    unsafe { Arc::increment_strong_count(raw) };
    // SAFETY: reclaims the first of the two counts created above.
    let a = unsafe { Arc::from_raw(raw) };
    // SAFETY: reclaims the second (and last) outstanding count.
    let b = unsafe { Arc::from_raw(raw) };
    assert_eq!(*a + *b, 82);
}

#[test]
fn mutex_condvar_and_threads_behave_like_std() {
    let state = Arc::new((Mutex::new(0u64), Condvar::new()));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let state = state.clone();
            thread::spawn(move || {
                let (m, cv) = &*state;
                let mut g = m.lock().unwrap();
                *g += 1;
                cv.notify_all();
            })
        })
        .collect();
    let (m, cv) = &*state;
    let mut g = m.lock().unwrap();
    while *g < 4 {
        let (guard, timeout) = cv.wait_timeout(g, Duration::from_secs(30)).unwrap();
        assert!(!timeout.timed_out(), "workers must finish well within 30s");
        g = guard;
    }
    drop(g);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(*m.lock().unwrap(), 4);
}

#[test]
fn guard_contents_drop_normally() {
    struct Bump(Arc<AtomicU64>);
    impl Drop for Bump {
        fn drop(&mut self) {
            self.0.fetch_add(1, SeqCst);
        }
    }
    let drops = Arc::new(AtomicU64::new(0));
    let m = Mutex::new(Some(Bump(drops.clone())));
    m.lock().unwrap().take();
    assert_eq!(drops.load(SeqCst), 1);
    drop(m);
    assert_eq!(drops.load(SeqCst), 1);
}

#[test]
fn yield_now_is_a_no_op_outside_a_model_run() {
    skipflow_modelcheck::yield_now();
    thread::yield_now();
}
