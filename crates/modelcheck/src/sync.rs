//! The `std::sync` seam: import `skipflow_modelcheck::sync::...` instead of
//! `std::sync::...` and the code is model-checkable.
//!
//! With the `model-check` feature **off** (the default and the only
//! configuration production builds see) this module is a re-export of
//! `std::sync` — identical types, zero overhead, no behavioral difference.
//!
//! With it **on**, the `Arc`/`Mutex`/`Condvar`/atomic types are the shim
//! types from `crate::shim`: still `std`-backed and `std`-equivalent on
//! ordinary threads, but cooperative and exhaustively schedulable inside a
//! `crate::explore` run.

#[cfg(not(feature = "model-check"))]
pub use std::sync::*;

#[cfg(feature = "model-check")]
pub use crate::shim::{
    Arc, Condvar, LockResult, Mutex, MutexGuard, PoisonError, WaitTimeoutResult,
};

/// Atomic types (`std::sync::atomic` or the shim's, by feature).
#[cfg(feature = "model-check")]
pub mod atomic {
    pub use crate::shim::atomic::*;
}
