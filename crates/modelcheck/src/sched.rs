//! The cooperative exhaustive scheduler behind `--features model-check`.
//!
//! # How exploration works
//!
//! A *model run* executes the user's scenario closure many times. Each
//! execution runs every logical thread on a real OS thread, but a baton
//! (one `current` thread id guarded by a mutex/condvar pair) ensures that
//! exactly one logical thread makes progress at any instant: every visible
//! operation (atomic access, `Arc` refcount change, mutex acquire/release,
//! condvar wait/notify, spawn/join) first calls [`Sched::schedule_point`],
//! which consults the *decision stack* to decide which thread runs next.
//!
//! The decision stack is the schedule-replay tree serialized as a DFS
//! path: each entry records the thread chosen at a branch point (a point
//! with more than one eligible thread) plus the alternatives not yet
//! explored. After an execution finishes, the driver backtracks to the
//! deepest entry with an untried alternative and replays the prefix, so
//! successive executions enumerate *distinct* schedules and the run is
//! exhaustive (up to the preemption bound) when the stack empties.
//!
//! # Preemption bound
//!
//! Switching away from a thread that could have continued costs one
//! *preemption*; switches forced by blocking (mutex contention, join,
//! condvar wait, thread exit) are free. When an execution has spent its
//! bound, the only eligible thread at a branch point is the running one,
//! and the pruned alternatives are tallied in the report. Most real bugs
//! surface within two preemptions (the classic CHESS observation), which
//! keeps the tree tractable while staying systematic.
//!
//! # Failure classes (all hard failures, under *every* explored schedule)
//!
//! * a logical thread panics (assertion failures in scenarios);
//! * deadlock: no thread is runnable but not all have finished;
//! * use-after-free: `Arc::increment_strong_count` / `from_raw` / deref
//!   on an allocation whose strong count already hit zero (the shim
//!   quarantines freed allocations until the end of the execution, so the
//!   check fires *before* any real UB);
//! * refcount underflow (double free);
//! * leak: an allocation still live after every thread finished;
//! * livelock suspicion: an execution exceeding the depth cap.
//!
//! Because the scheduler serializes threads, every explored interleaving
//! is sequentially consistent. That models `SeqCst` exactly — which is
//! what the publication layer uses throughout — and explores a sound
//! subset of the behaviors of weaker orderings.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc as StdArc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

thread_local! {
    static SCHED: RefCell<Option<StdArc<Sched>>> = const { RefCell::new(None) };
    static TID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Panic payload used to unwind logical threads at teardown. Swallowed by
/// the per-thread wrapper; never observed by user code.
pub(crate) struct ModelAbort;

/// Runs `f` with the active scheduler (and the calling logical thread's id)
/// if the current OS thread belongs to a model run; returns `None` (and the
/// caller falls through to plain `std` behavior) otherwise.
pub(crate) fn with_sched<R>(f: impl FnOnce(&StdArc<Sched>, usize) -> R) -> Option<R> {
    SCHED.with(|s| {
        let b = s.borrow();
        b.as_ref().map(|sched| f(sched, TID.with(|t| t.get())))
    })
}

/// Whether the calling OS thread is a logical thread of an active model run.
pub(crate) fn model_active() -> bool {
    SCHED.with(|s| s.borrow().is_some())
}

/// Binds the calling OS thread to logical thread `tid` of `sched`.
pub(crate) fn install(sched: StdArc<Sched>, tid: usize) {
    SCHED.with(|s| *s.borrow_mut() = Some(sched));
    TID.with(|c| c.set(tid));
}

/// Unwinds the calling logical thread at teardown — unless it is already
/// unwinding (a shim op in a destructor during abort), in which case it
/// returns and the op proceeds; panicking while panicking would abort the
/// process.
pub(crate) fn teardown_panic() {
    if !std::thread::panicking() {
        std::panic::panic_any(ModelAbort);
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    BlockedJoin(usize),
    BlockedMutex(usize),
    BlockedCondvar(usize),
    Finished,
}

/// One branch point on the DFS path: the thread chosen this descent and the
/// alternatives not yet explored.
pub(crate) struct StackEntry {
    pub chosen: usize,
    pub untried: Vec<usize>,
}

/// Two-phase sweep hook, monomorphized over an allocation's `T`: phase 0
/// drops the payload if it is still live (returning whether it was — i.e.
/// whether the allocation leaked), phase 1 frees the box.
///
/// SAFETY: a `SweepFn` must only be invoked with the `ptr` it was
/// registered alongside, phase 0 before phase 1, each at most once, on the
/// driver thread after every logical thread has finished.
pub(crate) type SweepFn = unsafe fn(*mut u8, u8) -> bool;

pub(crate) struct AllocRecord {
    /// Two-phase sweep hook for this allocation. The live/freed state
    /// itself lives in the allocation header (see `shim::ArcInner`), not
    /// here, so cascaded `Arc` drops running *during* the sweep (a leaked
    /// payload dropping its own inner `Arc`s) stay coherent with the sweep
    /// without consulting the scheduler.
    sweep: SweepFn,
    ptr: *mut u8,
    /// Diagnostic label (the `T` of the `Arc<T>`).
    pub type_name: &'static str,
}

// SAFETY: the raw pointer is only dereferenced by `free_fn` on the driver
// thread after every logical thread has finished; until then records move
// between threads only under the scheduler mutex as opaque data.
unsafe impl Send for AllocRecord {}

pub(crate) struct Inner {
    threads: Vec<ThreadState>,
    current: usize,
    /// Cross-execution DFS stack (installed by the driver, harvested after
    /// the execution).
    stack: Vec<StackEntry>,
    /// Branch points consumed so far this execution (index into `stack`).
    bp: usize,
    depth: usize,
    preemptions: usize,
    pruned: u64,
    discovered: u64,
    failure: Option<String>,
    abort: bool,
    all_done: bool,
    pub(crate) allocs: HashMap<usize, AllocRecord>,
    /// Mutex address -> holder thread. Absent = free.
    mutexes: HashMap<usize, usize>,
    /// Condvar address -> waiters in arrival order.
    cv_waiters: HashMap<usize, Vec<usize>>,
    real_handles: Vec<std::thread::JoinHandle<()>>,
    /// Ring of the most recent (thread, op) pairs for failure diagnostics.
    ops: Vec<(usize, &'static str)>,
    ops_next: usize,
}

const OPS_RING: usize = 48;

pub(crate) struct Sched {
    opts: Options,
    inner: StdMutex<Inner>,
    cv: StdCondvar,
    done_cv: StdCondvar,
}

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Options {
    /// Maximum preemptive context switches per execution (`None` =
    /// unbounded, truly exhaustive). Defaults to 2.
    pub preemption_bound: Option<usize>,
    /// Stop after this many schedules even if the tree is not exhausted
    /// (reported via [`Report::capped`]).
    pub max_schedules: u64,
    /// Per-execution schedule-point cap; exceeding it is reported as a
    /// failure (livelock suspicion).
    pub max_depth: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options { preemption_bound: Some(2), max_schedules: 500_000, max_depth: 20_000 }
    }
}

/// What an exploration did: how many distinct schedules ran, how bushy and
/// deep the replay tree was, and how much the preemption bound pruned.
#[derive(Clone, Copy, Debug, Default)]
pub struct Report {
    /// Distinct complete schedules executed.
    pub schedules: u64,
    /// Branch points discovered (decision-stack pushes across the run).
    pub branch_points: u64,
    /// Deepest execution, in schedule points.
    pub max_depth: usize,
    /// Eligible choices suppressed by the preemption bound.
    pub pruned_by_bound: u64,
    /// The run stopped at [`Options::max_schedules`] before exhausting the
    /// tree.
    pub capped: bool,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model-check: {} schedules, {} branch points, max depth {}, {} choices pruned by bound{}",
            self.schedules,
            self.branch_points,
            self.max_depth,
            self.pruned_by_bound,
            if self.capped { " (capped)" } else { "" }
        )
    }
}

/// A schedule under which the scenario failed, with diagnostics.
#[derive(Debug)]
pub struct Failure {
    /// What went wrong, the recent-op tail, and the decision prefix.
    pub message: String,
    /// Schedules executed up to and including the failing one.
    pub schedules: u64,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "model-check failure after {} schedules: {}", self.schedules, self.message)
    }
}

impl std::error::Error for Failure {}

impl Sched {
    fn new(opts: Options, stack: Vec<StackEntry>) -> Self {
        Sched {
            opts,
            inner: StdMutex::new(Inner {
                threads: Vec::new(),
                current: 0,
                stack,
                bp: 0,
                depth: 0,
                preemptions: 0,
                pruned: 0,
                discovered: 0,
                failure: None,
                abort: false,
                all_done: false,
                allocs: HashMap::new(),
                mutexes: HashMap::new(),
                cv_waiters: HashMap::new(),
                real_handles: Vec::new(),
                ops: Vec::new(),
                ops_next: 0,
            }),
            cv: StdCondvar::new(),
            done_cv: StdCondvar::new(),
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn push_op(g: &mut Inner, t: usize, label: &'static str) {
        if g.ops.len() < OPS_RING {
            g.ops.push((t, label));
        } else {
            let i = g.ops_next;
            g.ops[i] = (t, label);
        }
        g.ops_next = (g.ops_next + 1) % OPS_RING;
    }

    /// Records a failure (first one wins), wakes everyone, and flags the
    /// teardown. Does not unwind by itself — callers decide.
    fn fail_locked(&self, g: &mut Inner, msg: String) {
        if g.failure.is_none() {
            let mut tail: Vec<String> = Vec::new();
            for i in 0..g.ops.len() {
                let (t, op) = g.ops[(g.ops_next + i) % g.ops.len()];
                tail.push(format!("t{t}:{op}"));
            }
            let prefix: Vec<usize> = g.stack[..g.bp.min(g.stack.len())]
                .iter()
                .map(|e| e.chosen)
                .collect();
            g.failure = Some(format!(
                "{msg}\n  recent ops: {}\n  decision prefix: {prefix:?}",
                tail.join(" ")
            ));
        }
        g.abort = true;
        self.cv.notify_all();
        self.done_cv.notify_all();
    }

    /// Reports a model failure from a running logical thread and unwinds it.
    pub(crate) fn fail(self: &StdArc<Self>, msg: String) -> ! {
        let mut g = self.lock();
        self.fail_locked(&mut g, msg);
        drop(g);
        // `fail` is only called from straight-line shim code, never from a
        // destructor mid-unwind, so this always panics.
        std::panic::panic_any(ModelAbort);
    }

    /// Records a user panic from a logical thread (the thread is already
    /// unwinding; no further unwind needed).
    pub(crate) fn record_user_panic(&self, t: usize, msg: String) {
        let mut g = self.lock();
        self.fail_locked(&mut g, format!("logical thread {t} panicked: {msg}"));
    }

    /// Latches a failure without unwinding the caller — for failure sites
    /// inside destructors, where a panic during cleanup would abort.
    pub(crate) fn record_failure(&self, msg: String) {
        let mut g = self.lock();
        self.fail_locked(&mut g, msg);
    }

    /// Picks the next thread to run. Must be called with the lock held and
    /// the thread states up to date. Returns `false` if the execution is
    /// over or aborting (caller should not park on the baton).
    fn pick_next(&self, g: &mut Inner) -> bool {
        if g.abort {
            return false;
        }
        let enabled: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, ThreadState::Runnable))
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            if g.threads.iter().all(|s| matches!(s, ThreadState::Finished)) {
                g.all_done = true;
                self.done_cv.notify_all();
                return false;
            }
            let states: Vec<String> = g
                .threads
                .iter()
                .enumerate()
                .map(|(i, s)| format!("t{i}:{s:?}"))
                .collect();
            self.fail_locked(g, format!("deadlock: no runnable thread ({})", states.join(" ")));
            return false;
        }
        let cur = g.current;
        let cur_enabled = matches!(g.threads[cur], ThreadState::Runnable);
        let candidates: Vec<usize> = if cur_enabled
            && self.opts.preemption_bound.is_some_and(|b| g.preemptions >= b)
        {
            g.pruned += (enabled.len() - 1) as u64;
            vec![cur]
        } else {
            // Current thread first (the non-preemptive descent), then the
            // rest in ascending id order — deterministic, so replay works.
            let mut c = Vec::with_capacity(enabled.len());
            if cur_enabled {
                c.push(cur);
            }
            c.extend(enabled.iter().copied().filter(|&i| i != cur));
            c
        };
        let chosen = if candidates.len() == 1 {
            candidates[0]
        } else if g.bp < g.stack.len() {
            let c = g.stack[g.bp].chosen;
            debug_assert!(candidates.contains(&c), "replay diverged: schedule not deterministic");
            g.bp += 1;
            c
        } else {
            let c = candidates[0];
            g.stack.push(StackEntry { chosen: c, untried: candidates[1..].to_vec() });
            g.bp += 1;
            g.discovered += 1;
            c
        };
        if chosen != cur && cur_enabled {
            g.preemptions += 1;
        }
        g.current = chosen;
        self.cv.notify_all();
        true
    }

    /// Parks the calling logical thread until the baton names it (or the
    /// run aborts, in which case the thread unwinds).
    fn park_until_current(&self, mut g: StdMutexGuard<'_, Inner>, t: usize) {
        while g.current != t && !g.abort {
            g = self.cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
        let abort = g.abort;
        drop(g);
        if abort {
            teardown_panic();
        }
    }

    /// One visible operation boundary: decide who runs next, then wait for
    /// the baton. Called by the running thread *before* each shim op.
    pub(crate) fn schedule_point(self: &StdArc<Self>, label: &'static str) {
        let t = TID.with(|c| c.get());
        let mut g = self.lock();
        if g.abort {
            drop(g);
            teardown_panic();
            return;
        }
        debug_assert_eq!(g.current, t, "schedule point from a descheduled thread");
        g.depth += 1;
        Self::push_op(&mut g, t, label);
        if g.depth > self.opts.max_depth {
            self.fail_locked(
                &mut g,
                format!("execution exceeded {} schedule points (livelock?)", self.opts.max_depth),
            );
            drop(g);
            teardown_panic();
            return;
        }
        if !self.pick_next(&mut g) {
            drop(g);
            teardown_panic();
            return;
        }
        self.park_until_current(g, t);
    }

    // ---- mutex ----

    pub(crate) fn mutex_lock(self: &StdArc<Self>, addr: usize) {
        let t = TID.with(|c| c.get());
        loop {
            self.schedule_point("mutex-lock");
            let mut g = self.lock();
            if g.abort {
                drop(g);
                teardown_panic();
                return;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = g.mutexes.entry(addr) {
                e.insert(t);
                return;
            }
            g.threads[t] = ThreadState::BlockedMutex(addr);
            if !self.pick_next(&mut g) {
                drop(g);
                teardown_panic();
                return;
            }
            self.park_until_current(g, t);
        }
    }

    pub(crate) fn mutex_unlock(self: &StdArc<Self>, addr: usize) {
        let t = TID.with(|c| c.get());
        self.schedule_point("mutex-unlock");
        let mut g = self.lock();
        let prev = g.mutexes.remove(&addr);
        debug_assert_eq!(prev, Some(t), "unlock of a mutex not held by this thread");
        for s in g.threads.iter_mut() {
            if *s == ThreadState::BlockedMutex(addr) {
                *s = ThreadState::Runnable;
            }
        }
    }

    // ---- condvar ----

    /// Atomically releases `mx_addr` and blocks on `cv_addr`. The caller
    /// re-acquires the mutex (via [`Sched::mutex_lock`]) after this returns.
    pub(crate) fn condvar_wait(self: &StdArc<Self>, cv_addr: usize, mx_addr: usize) {
        let t = TID.with(|c| c.get());
        let mut g = self.lock();
        if g.abort {
            drop(g);
            teardown_panic();
            return;
        }
        g.depth += 1;
        Self::push_op(&mut g, t, "condvar-wait");
        let prev = g.mutexes.remove(&mx_addr);
        debug_assert_eq!(prev, Some(t), "condvar wait with a mutex not held by this thread");
        for s in g.threads.iter_mut() {
            if *s == ThreadState::BlockedMutex(mx_addr) {
                *s = ThreadState::Runnable;
            }
        }
        g.cv_waiters.entry(cv_addr).or_default().push(t);
        g.threads[t] = ThreadState::BlockedCondvar(cv_addr);
        if !self.pick_next(&mut g) {
            drop(g);
            teardown_panic();
            return;
        }
        self.park_until_current(g, t);
    }

    pub(crate) fn condvar_notify(self: &StdArc<Self>, cv_addr: usize, all: bool) {
        self.schedule_point(if all { "notify-all" } else { "notify-one" });
        let mut g = self.lock();
        let woken: Vec<usize> = match g.cv_waiters.get_mut(&cv_addr) {
            Some(ws) if all => ws.drain(..).collect(),
            Some(ws) if !ws.is_empty() => vec![ws.remove(0)],
            _ => Vec::new(),
        };
        for w in woken {
            debug_assert_eq!(g.threads[w], ThreadState::BlockedCondvar(cv_addr));
            g.threads[w] = ThreadState::Runnable;
        }
    }

    // ---- threads ----

    /// Registers a new logical thread (spawn is a schedule point on the
    /// parent). Returns the child id.
    pub(crate) fn spawn_thread(self: &StdArc<Self>) -> usize {
        self.schedule_point("spawn");
        let mut g = self.lock();
        let id = g.threads.len();
        g.threads.push(ThreadState::Runnable);
        id
    }

    pub(crate) fn register_real(&self, h: std::thread::JoinHandle<()>) {
        self.lock().real_handles.push(h);
    }

    /// First park of a freshly spawned logical thread.
    pub(crate) fn thread_started(self: &StdArc<Self>, t: usize) {
        let g = self.lock();
        self.park_until_current(g, t);
    }

    pub(crate) fn finish_thread(self: &StdArc<Self>, t: usize) {
        let mut g = self.lock();
        g.threads[t] = ThreadState::Finished;
        for s in g.threads.iter_mut() {
            if *s == ThreadState::BlockedJoin(t) {
                *s = ThreadState::Runnable;
            }
        }
        if g.abort {
            if g.threads.iter().all(|s| matches!(s, ThreadState::Finished)) {
                g.all_done = true;
                self.done_cv.notify_all();
            }
            self.cv.notify_all();
            return;
        }
        // Thread exit forfeits the baton; never a preemption.
        let _ = self.pick_next(&mut g);
    }

    pub(crate) fn join_thread(self: &StdArc<Self>, child: usize) {
        let t = TID.with(|c| c.get());
        self.schedule_point("join");
        let mut g = self.lock();
        if g.abort {
            drop(g);
            teardown_panic();
            return;
        }
        if matches!(g.threads[child], ThreadState::Finished) {
            return;
        }
        g.threads[t] = ThreadState::BlockedJoin(child);
        if !self.pick_next(&mut g) {
            drop(g);
            teardown_panic();
            return;
        }
        self.park_until_current(g, t);
    }

    // ---- allocation tracking (shim Arc) ----

    pub(crate) fn alloc_register(
        &self,
        addr: usize,
        ptr: *mut u8,
        sweep: SweepFn,
        type_name: &'static str,
    ) {
        let mut g = self.lock();
        // Quarantine means addresses are not reused within an execution, so
        // an existing record would be a shim bug.
        debug_assert!(!g.allocs.contains_key(&addr), "allocation address reused in-model");
        g.allocs.insert(addr, AllocRecord { sweep, ptr, type_name });
    }
}

// ---- driver ----

struct ExecOutcome {
    failure: Option<String>,
    stack: Vec<StackEntry>,
    depth: usize,
    discovered: u64,
    pruned: u64,
}

fn run_one(opts: Options, stack: Vec<StackEntry>, f: StdArc<dyn Fn() + Send + Sync>) -> ExecOutcome {
    let sched = StdArc::new(Sched::new(opts, stack));
    {
        let mut g = sched.lock();
        g.threads.push(ThreadState::Runnable);
        g.current = 0;
    }
    let s2 = sched.clone();
    let root = std::thread::Builder::new()
        .name("mc-0".into())
        .spawn(move || {
            install(s2.clone(), 0);
            let r = catch_unwind(AssertUnwindSafe(|| f()));
            if let Err(p) = r {
                if !p.is::<ModelAbort>() {
                    s2.record_user_panic(0, panic_message(&*p));
                }
            }
            s2.finish_thread(0);
        })
        .expect("spawn model root thread");

    // Wait until every logical thread has finished (normally or by abort).
    {
        let mut g = sched.lock();
        while !g.all_done {
            g = sched.done_cv.wait(g).unwrap_or_else(|p| p.into_inner());
        }
    }
    let _ = root.join();
    let handles = std::mem::take(&mut sched.lock().real_handles);
    for h in handles {
        let _ = h.join();
    }

    // End-of-execution sweep, outside the scheduler lock: phase 0 drops the
    // payload of every still-live allocation (a leak — its cascaded `Arc`
    // drops run here in passthrough mode and flip their own headers, so a
    // transitively-reachable allocation is reclaimed, not double-counted);
    // phase 1 releases the quarantined boxes once no payload can touch them.
    let records: Vec<AllocRecord> = {
        let mut g = sched.lock();
        g.allocs.drain().map(|(_, r)| r).collect()
    };
    let mut leaked: Vec<&'static str> = Vec::new();
    for rec in &records {
        // SAFETY: every logical thread has finished, so only this sweep (and
        // the destructors it cascades into) can touch the allocation; the
        // header CAS inside `sweep` makes the payload drop happen at most
        // once even when a cascade got there first.
        if unsafe { (rec.sweep)(rec.ptr, 0) } {
            leaked.push(rec.type_name);
        }
    }
    for rec in &records {
        // SAFETY: all payloads are dropped; each box is freed exactly once.
        unsafe { (rec.sweep)(rec.ptr, 1) };
    }
    if !leaked.is_empty() {
        let mut g = sched.lock();
        let msg = format!(
            "leak: {} Arc allocation(s) still live at end of execution ({})",
            leaked.len(),
            leaked.join(", ")
        );
        sched.fail_locked(&mut g, msg);
    }
    let mut g = sched.lock();
    ExecOutcome {
        failure: g.failure.take(),
        stack: std::mem::take(&mut g.stack),
        depth: g.depth,
        discovered: g.discovered,
        pruned: g.pruned,
    }
}

pub(crate) fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Exhaustively explores the interleavings of `scenario` (up to the
/// preemption bound) and returns the exploration [`Report`], or the first
/// [`Failure`] with its schedule diagnostics.
pub fn try_explore<F>(opts: Options, scenario: F) -> Result<Report, Failure>
where
    F: Fn() + Send + Sync + 'static,
{
    let f: StdArc<dyn Fn() + Send + Sync> = StdArc::new(scenario);
    let mut stack: Vec<StackEntry> = Vec::new();
    let mut report = Report::default();
    loop {
        report.schedules += 1;
        let out = run_one(opts, stack, f.clone());
        report.max_depth = report.max_depth.max(out.depth);
        report.branch_points += out.discovered;
        report.pruned_by_bound += out.pruned;
        if let Some(message) = out.failure {
            return Err(Failure { message, schedules: report.schedules });
        }
        stack = out.stack;
        // Backtrack to the deepest branch point with an untried choice.
        loop {
            match stack.last_mut() {
                None => return Ok(report),
                Some(e) => {
                    if let Some(next) = e.untried.pop() {
                        e.chosen = next;
                        break;
                    }
                    stack.pop();
                }
            }
        }
        if report.schedules >= opts.max_schedules {
            report.capped = true;
            return Ok(report);
        }
    }
}

/// [`try_explore`], but panics with the failure rendering — the convenient
/// form for `#[test]`s that expect the scenario to hold.
pub fn explore<F>(opts: Options, scenario: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    match try_explore(opts, scenario) {
        Ok(report) => report,
        Err(failure) => panic!("{failure}"),
    }
}
