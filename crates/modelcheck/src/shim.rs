//! Model-checked replacements for the `std::sync` types (feature-on only).
//!
//! Every type here has the same surface as its `std` namesake (the subset
//! the workspace uses) and behaves identically when no model run is active
//! on the calling thread. Inside a model run, each visible operation calls
//! into the scheduler first, making it an interleaving point, and `Arc`
//! additionally routes its refcount through a tracked allocation so the
//! explorer can turn use-after-free, double-free, and leaks into hard model
//! failures instead of undefined behavior.
//!
//! # The `Arc` quarantine
//!
//! A shim `Arc` allocated during a model run tags its header `LIVE` and
//! registers with the scheduler. When the strong count hits zero the payload
//! is dropped in place and the header flips to `FREED`, but the backing box
//! is *quarantined* — kept allocated until the end of the execution — so a
//! racing `Arc::increment_strong_count`/`from_raw`/clone/deref on the stale
//! pointer finds the `FREED` header and reports use-after-free *before* any
//! actual UB occurs. Addresses are never reused within an execution, which
//! is what makes the header check sound.

use crate::sched::{self, with_sched, ModelAbort, Sched};
use std::fmt;
use std::marker::PhantomData;
use std::mem::{offset_of, ManuallyDrop};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Mutex as StdMutex;
use std::time::Duration;

/// Interleaving point: consults the scheduler if the calling thread belongs
/// to a model run, no-op otherwise.
pub(crate) fn sched_point(label: &'static str) {
    with_sched(|s, _| s.schedule_point(label));
}

/// Reports a model failure (in-model) or panics (outside a run, where these
/// conditions indicate real UB and aborting the test is the best we can do).
fn die(msg: String) -> ! {
    match with_sched(|s, _| s.fail(msg.clone())) {
        Some(never) => never,
        None => panic!("{msg}"),
    }
}

/// Like [`die`], but safe to call from destructors: if the thread is already
/// unwinding (teardown, or the failing schedule's own cleanup), the failure
/// is latched in the scheduler without a second panic — panicking inside a
/// destructor during cleanup aborts the whole process. The caller must then
/// bail out of the operation instead of relying on divergence.
fn report(msg: String) {
    if std::thread::panicking() {
        with_sched(|s, _| s.record_failure(msg.clone()));
    } else {
        die(msg);
    }
}

// ---------------------------------------------------------------------------
// atomics
// ---------------------------------------------------------------------------

/// Shimmed `std::sync::atomic`: same types and signatures, but every access
/// is a schedule point inside a model run.
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use super::sched_point;

    macro_rules! shim_int_atomic {
        ($name:ident, $std:ty, $int:ty) => {
            /// Model-checked wrapper around the `std` atomic of the same
            /// name; every access is an interleaving point in a model run.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Creates the atomic (not an interleaving point).
                pub const fn new(v: $int) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                /// As `std`'s `load`.
                pub fn load(&self, order: Ordering) -> $int {
                    sched_point("atomic-load");
                    self.inner.load(order)
                }

                /// As `std`'s `store`.
                pub fn store(&self, val: $int, order: Ordering) {
                    sched_point("atomic-store");
                    self.inner.store(val, order)
                }

                /// As `std`'s `swap`.
                pub fn swap(&self, val: $int, order: Ordering) -> $int {
                    sched_point("atomic-rmw");
                    self.inner.swap(val, order)
                }

                /// As `std`'s `compare_exchange`.
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    success_order: Ordering,
                    failure_order: Ordering,
                ) -> Result<$int, $int> {
                    sched_point("atomic-cas");
                    self.inner.compare_exchange(current, new, success_order, failure_order)
                }

                /// As `std`'s `compare_exchange_weak` (never fails spuriously
                /// in-model; the serialized scheduler has no contention).
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success_order: Ordering,
                    failure_order: Ordering,
                ) -> Result<$int, $int> {
                    sched_point("atomic-cas");
                    self.inner.compare_exchange(current, new, success_order, failure_order)
                }

                /// As `std`'s `fetch_add`.
                pub fn fetch_add(&self, val: $int, order: Ordering) -> $int {
                    sched_point("atomic-rmw");
                    self.inner.fetch_add(val, order)
                }

                /// As `std`'s `fetch_sub`.
                pub fn fetch_sub(&self, val: $int, order: Ordering) -> $int {
                    sched_point("atomic-rmw");
                    self.inner.fetch_sub(val, order)
                }

                /// As `std`'s `fetch_max`.
                pub fn fetch_max(&self, val: $int, order: Ordering) -> $int {
                    sched_point("atomic-rmw");
                    self.inner.fetch_max(val, order)
                }
            }
        };
    }

    shim_int_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    shim_int_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    shim_int_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);

    /// Model-checked `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates the atomic (not an interleaving point).
        pub const fn new(v: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        /// As `std`'s `load`.
        pub fn load(&self, order: Ordering) -> bool {
            sched_point("atomic-load");
            self.inner.load(order)
        }

        /// As `std`'s `store`.
        pub fn store(&self, val: bool, order: Ordering) {
            sched_point("atomic-store");
            self.inner.store(val, order)
        }

        /// As `std`'s `swap`.
        pub fn swap(&self, val: bool, order: Ordering) -> bool {
            sched_point("atomic-rmw");
            self.inner.swap(val, order)
        }

        /// As `std`'s `compare_exchange`.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success_order: Ordering,
            failure_order: Ordering,
        ) -> Result<bool, bool> {
            sched_point("atomic-cas");
            self.inner.compare_exchange(current, new, success_order, failure_order)
        }
    }

    /// Model-checked `AtomicPtr`.
    #[derive(Debug)]
    pub struct AtomicPtr<T> {
        inner: std::sync::atomic::AtomicPtr<T>,
    }

    impl<T> AtomicPtr<T> {
        /// Creates the atomic (not an interleaving point).
        pub const fn new(p: *mut T) -> Self {
            Self { inner: std::sync::atomic::AtomicPtr::new(p) }
        }

        /// As `std`'s `load`.
        pub fn load(&self, order: Ordering) -> *mut T {
            sched_point("atomic-load");
            self.inner.load(order)
        }

        /// As `std`'s `store`.
        pub fn store(&self, p: *mut T, order: Ordering) {
            sched_point("atomic-store");
            self.inner.store(p, order)
        }

        /// As `std`'s `swap`.
        pub fn swap(&self, p: *mut T, order: Ordering) -> *mut T {
            sched_point("atomic-rmw");
            self.inner.swap(p, order)
        }
    }

    impl<T> Default for AtomicPtr<T> {
        fn default() -> Self {
            Self::new(std::ptr::null_mut())
        }
    }
}

// ---------------------------------------------------------------------------
// Arc
// ---------------------------------------------------------------------------

/// Header state: allocated outside any model run — plain `std` semantics.
const UNTRACKED: u8 = 0;
/// Allocated during a model run; payload live.
const LIVE: u8 = 1;
/// Strong count hit zero; payload dropped, box quarantined until sweep.
const FREED: u8 = 2;

#[repr(C)]
struct ArcInner<T> {
    strong: std::sync::atomic::AtomicUsize,
    state: std::sync::atomic::AtomicU8,
    value: ManuallyDrop<T>,
}

/// Two-phase sweep hook handed to the scheduler at registration: phase 0
/// drops a still-live payload (returns whether it was live, i.e. leaked),
/// phase 1 frees the quarantined box.
///
/// SAFETY: `p` must be the `ArcInner<T>` this hook was registered with;
/// the scheduler calls phase 0 before phase 1, each at most once, after
/// every logical thread has finished (see `sched::SweepFn`).
unsafe fn sweep_inner<T>(p: *mut u8, phase: u8) -> bool {
    let inner = p as *mut ArcInner<T>;
    if phase == 0 {
        let was_live =
            (*inner).state.compare_exchange(LIVE, FREED, SeqCst, SeqCst).is_ok();
        if was_live {
            ManuallyDrop::drop(&mut (*inner).value);
        }
        was_live
    } else {
        drop(Box::from_raw(inner));
        false
    }
}

/// Model-checked `Arc`: identical semantics to `std::sync::Arc` outside a
/// model run; inside one, every refcount change is an interleaving point and
/// misuse of raw-pointer round-trips (`into_raw` / `from_raw` /
/// `increment_strong_count`) against a reclaimed allocation is a hard model
/// failure instead of undefined behavior.
pub struct Arc<T> {
    ptr: NonNull<ArcInner<T>>,
    _marker: PhantomData<ArcInner<T>>,
}

// SAFETY: same bounds as `std::sync::Arc` — the shared value is reachable
// from every clone on any thread, so both sending the handle and sharing it
// require `T: Send + Sync`; the refcount itself is atomic.
unsafe impl<T: Send + Sync> Send for Arc<T> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: Send + Sync> Sync for Arc<T> {}

impl<T> Arc<T> {
    /// Allocates a new shared value. Not an interleaving point (creation
    /// involves no cross-thread interaction), but the allocation is tracked
    /// for the leak/UAF tally when a model run is active.
    pub fn new(value: T) -> Self {
        let tracked = sched::model_active();
        let inner = Box::new(ArcInner {
            strong: std::sync::atomic::AtomicUsize::new(1),
            state: std::sync::atomic::AtomicU8::new(if tracked { LIVE } else { UNTRACKED }),
            value: ManuallyDrop::new(value),
        });
        let ptr = NonNull::from(Box::leak(inner));
        if tracked {
            with_sched(|s, _| {
                s.alloc_register(
                    ptr.as_ptr() as usize,
                    ptr.as_ptr() as *mut u8,
                    sweep_inner::<T>,
                    std::any::type_name::<T>(),
                )
            });
        }
        Arc { ptr, _marker: PhantomData }
    }

    fn inner(&self) -> &ArcInner<T> {
        // SAFETY: quarantine keeps the header allocated for the lifetime of
        // every handle (and of every raw pointer within a model execution).
        unsafe { self.ptr.as_ref() }
    }

    fn check_live(&self, what: &str) {
        if self.inner().state.load(SeqCst) == FREED {
            // `report`, not `die`: deref/clone can run inside destructors
            // (where a panic during cleanup would abort the process); the
            // quarantine keeps the memory allocated, so falling through is
            // merely a read of a dropped-but-allocated value while the model
            // failure is already latched.
            report(format!(
                "use-after-free: Arc::{what} on reclaimed Arc<{}> ({:#x})",
                std::any::type_name::<T>(),
                self.ptr.as_ptr() as usize
            ));
        }
    }

    /// Recovers the `ArcInner` pointer from a pointer to its value field.
    fn inner_from_value_ptr(ptr: *const T) -> *mut ArcInner<T> {
        let off = offset_of!(ArcInner<T>, value);
        (ptr as *mut u8).wrapping_sub(off) as *mut ArcInner<T>
    }

    /// As `std`'s `Arc::into_raw`: leaks one strong count into a raw value
    /// pointer.
    pub fn into_raw(this: Self) -> *const T {
        // SAFETY: the handle keeps the allocation alive across the read.
        let ptr = unsafe { std::ptr::addr_of!((*this.ptr.as_ptr()).value) } as *const T;
        std::mem::forget(this);
        ptr
    }

    /// As `std`'s `Arc::from_raw`: reclaims the strong count leaked by
    /// [`Arc::into_raw`].
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Arc::into_raw` of this same `Arc` type, and the
    /// strong count it represents must not have been reclaimed already.
    /// In-model, violating the second clause is caught and reported.
    pub unsafe fn from_raw(ptr: *const T) -> Self {
        let inner = Self::inner_from_value_ptr(ptr);
        // Check liveness BEFORE constructing the handle: if this is a
        // use-after-free, constructing first would hand the failure unwind
        // an Arc whose drop underflows the already-zero count — a panic
        // inside a destructor during cleanup, which aborts.
        if (*inner).state.load(SeqCst) == FREED {
            report(format!(
                "use-after-free: Arc::from_raw on reclaimed Arc<{}> ({:#x})",
                std::any::type_name::<T>(),
                inner as usize
            ));
            // Only reachable mid-unwind (teardown): resurrect the count so
            // the handle's drop on the quarantined header stays balanced.
            (*inner).strong.fetch_add(1, SeqCst);
        }
        Arc { ptr: NonNull::new_unchecked(inner), _marker: PhantomData }
    }

    /// As `std`'s `Arc::increment_strong_count`. An interleaving point; the
    /// canonical reader-side op of the publication protocol.
    ///
    /// # Safety
    ///
    /// `ptr` must come from `Arc::into_raw`, and the allocation must still
    /// have at least one live strong count. In-model, incrementing a
    /// reclaimed allocation is caught and reported.
    pub unsafe fn increment_strong_count(ptr: *const T) {
        sched_point("arc-inc");
        let inner = Self::inner_from_value_ptr(ptr);
        if (*inner).state.load(SeqCst) == FREED {
            die(format!(
                "use-after-free: Arc::increment_strong_count on reclaimed Arc<{}> ({:#x})",
                std::any::type_name::<T>(),
                inner as usize
            ));
        }
        (*inner).strong.fetch_add(1, SeqCst);
    }

    /// As `std`'s `Arc::ptr_eq`.
    pub fn ptr_eq(this: &Self, other: &Self) -> bool {
        this.ptr == other.ptr
    }

    /// As `std`'s `Arc::strong_count`.
    pub fn strong_count(this: &Self) -> usize {
        this.inner().strong.load(SeqCst)
    }

    /// As `std`'s `Arc::try_unwrap`: moves the value out when this is the
    /// only handle, else hands the handle back. An interleaving point (it
    /// races clones and drops on other threads).
    pub fn try_unwrap(this: Self) -> Result<T, Self> {
        sched_point("arc-try-unwrap");
        if this.inner().state.load(SeqCst) == FREED {
            report(format!(
                "use-after-free: Arc::try_unwrap on reclaimed Arc<{}> ({:#x})",
                std::any::type_name::<T>(),
                this.ptr.as_ptr() as usize
            ));
            // Only reachable mid-unwind: leave the reclaimed payload alone.
            return Err(this);
        }
        if this.inner().strong.compare_exchange(1, 0, SeqCst, SeqCst).is_err() {
            return Err(this);
        }
        let inner = this.ptr.as_ptr();
        std::mem::forget(this);
        // SAFETY: the 1 -> 0 transition made this the unique owner, so the
        // value moves out exactly once; the allocation is freed here when
        // untracked, or quarantined (state flipped so the sweep won't drop
        // the moved-out payload again) when tracked.
        unsafe {
            let value = ManuallyDrop::take(&mut (*inner).value);
            match (*inner).state.compare_exchange(LIVE, FREED, SeqCst, SeqCst) {
                // Tracked: box stays quarantined for the sweep's phase 1.
                Ok(_) => {}
                Err(s) if s == UNTRACKED => drop(Box::from_raw(inner)),
                Err(_) => report(format!(
                    "double free of Arc<{}> ({:#x})",
                    std::any::type_name::<T>(),
                    inner as usize
                )),
            }
            Ok(value)
        }
    }
}

impl<T> Clone for Arc<T> {
    fn clone(&self) -> Self {
        sched_point("arc-clone");
        self.check_live("clone");
        let prev = self.inner().strong.fetch_add(1, SeqCst);
        if prev > isize::MAX as usize {
            die("Arc strong count overflow".to_string());
        }
        Arc { ptr: self.ptr, _marker: PhantomData }
    }
}

impl<T> Drop for Arc<T> {
    fn drop(&mut self) {
        sched_point("arc-drop");
        let prev = self.inner().strong.fetch_sub(1, SeqCst);
        if prev == 0 {
            // Drop runs during unwinds, so failures here must latch without
            // panicking (see `report`); restore the count and bail.
            self.inner().strong.fetch_add(1, SeqCst);
            report(format!(
                "Arc refcount underflow on Arc<{}> (double free)",
                std::any::type_name::<T>()
            ));
            return;
        }
        if prev != 1 {
            return;
        }
        match self.inner().state.compare_exchange(LIVE, FREED, SeqCst, SeqCst) {
            Ok(_) => {
                // Tracked: drop the payload now (outside the scheduler lock,
                // so destructors may themselves use shim types), quarantine
                // the box for the end-of-execution sweep.
                // SAFETY: the strong count reached zero through this handle
                // and the LIVE->FREED transition succeeded exactly once, so
                // this is the only payload drop.
                unsafe { ManuallyDrop::drop(&mut self.ptr.as_mut().value) };
            }
            Err(s) if s == UNTRACKED => {
                // Plain `std::sync::Arc` semantics.
                // SAFETY: last strong count of an untracked allocation; no
                // other handle or raw pointer can exist.
                unsafe {
                    ManuallyDrop::drop(&mut self.ptr.as_mut().value);
                    drop(Box::from_raw(self.ptr.as_ptr()));
                }
            }
            Err(_) => report(format!(
                "double free of Arc<{}> ({:#x})",
                std::any::type_name::<T>(),
                self.ptr.as_ptr() as usize
            )),
        }
    }
}

impl<T> Deref for Arc<T> {
    type Target = T;

    fn deref(&self) -> &T {
        // Not an interleaving point (plain reads through a held handle are
        // not synchronization), but touching a reclaimed allocation is still
        // caught: one header load.
        self.check_live("deref");
        &self.inner().value
    }
}

impl<T: Default> Default for Arc<T> {
    fn default() -> Self {
        Arc::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Arc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: fmt::Display> fmt::Display for Arc<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

impl<T> AsRef<T> for Arc<T> {
    fn as_ref(&self) -> &T {
        self
    }
}

impl<T> std::borrow::Borrow<T> for Arc<T> {
    fn borrow(&self) -> &T {
        self
    }
}

impl<T> From<T> for Arc<T> {
    fn from(value: T) -> Self {
        Arc::new(value)
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar
// ---------------------------------------------------------------------------

/// Uninhabited stand-in for `std::sync::PoisonError`, so `.lock().unwrap()`
/// keeps compiling against the shim. The shim swallows poisoning (a panicked
/// logical thread is already a model failure; outside a run, poison is
/// recovered with `into_inner`), so this error is never constructed.
pub struct PoisonError<T> {
    never: std::convert::Infallible,
    _marker: PhantomData<T>,
}

impl<T> fmt::Debug for PoisonError<T> {
    fn fmt(&self, _f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.never {}
    }
}

impl<T> fmt::Display for PoisonError<T> {
    fn fmt(&self, _f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.never {}
    }
}

/// Shim counterpart of `std::sync::LockResult`; always `Ok`.
pub type LockResult<T> = Result<T, PoisonError<T>>;

/// Model-checked `Mutex`: acquisition order is decided by the scheduler
/// inside a model run (contention blocks the logical thread, never the OS
/// thread); a plain `std::sync::Mutex` otherwise.
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex (not an interleaving point).
    pub const fn new(t: T) -> Self {
        Mutex { inner: StdMutex::new(t) }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// As `std`'s `Mutex::lock` (never returns `Err`; poisoning is
    /// swallowed — see [`PoisonError`]).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = with_sched(|s, _| {
            s.mutex_lock(self.addr());
        })
        .is_some();
        // In-model the scheduler has granted exclusive ownership, so the std
        // lock is free (the teardown fallback below tolerates unwinding
        // threads racing their guard drops); outside a run this is a plain
        // blocking acquire.
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                self.inner.lock().unwrap_or_else(|p| p.into_inner())
            }
        };
        Ok(MutexGuard { lock: self, guard: Some(guard), model })
    }

    /// As `std`'s `Mutex::get_mut`.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.inner.get_mut().unwrap_or_else(|p| p.into_inner()))
    }

    /// As `std`'s `Mutex::into_inner`.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.inner.into_inner().unwrap_or_else(|p| p.into_inner()))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. Dropping it releases the `std` lock *first*, then
/// the model-level ownership — the order matters: a logical thread must
/// never be descheduled while holding the OS-level lock another granted
/// thread is about to take.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    guard: Option<std::sync::MutexGuard<'a, T>>,
    model: bool,
}

impl<T> MutexGuard<'_, T> {
    /// Drops the `std` guard and disarms model-level release (used by
    /// condvar wait, which hands the model mutex to the scheduler itself).
    fn forget_for_wait(mut self) {
        self.guard.take();
        self.model = false;
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.guard.take());
        if self.model {
            with_sched(|s, _| s.mutex_unlock(self.lock.addr()));
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard accessed after release")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard accessed after release")
    }
}

/// Shim counterpart of `std::sync::WaitTimeoutResult`. In-model waits never
/// time out (the scheduler explores only schedules where a wake arrives, and
/// a missing wake is reported as a deadlock), so `timed_out` is then always
/// false.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Model-checked `Condvar`: waiters are parked logical threads; notify picks
/// them up in arrival order under the explored schedule.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    /// Creates the condvar (not an interleaving point).
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    fn addr(&self) -> usize {
        self as *const Self as usize
    }

    /// As `std`'s `Condvar::wait` (never returns `Err`).
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.model {
            let lock = guard.lock;
            let cv_addr = self.addr();
            let mx_addr = lock.addr();
            guard.forget_for_wait();
            with_sched(|s, _| s.condvar_wait(cv_addr, mx_addr))
                .expect("model-held guard waited on outside its model run");
            lock.lock()
        } else {
            let lock = guard.lock;
            let mut guard = guard;
            let std_guard = guard.guard.take().expect("guard accessed after release");
            std::mem::forget(guard);
            let g = self.inner.wait(std_guard).unwrap_or_else(|p| p.into_inner());
            Ok(MutexGuard { lock, guard: Some(g), model: false })
        }
    }

    /// As `std`'s `Condvar::wait_timeout`. In-model this is a plain
    /// [`Condvar::wait`]: the model has no clock, a missed wake surfaces as
    /// a detected deadlock rather than a timeout.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.model {
            let g = match self.wait(guard) {
                Ok(g) => g,
                Err(e) => match e.never {},
            };
            Ok((g, WaitTimeoutResult { timed_out: false }))
        } else {
            let lock = guard.lock;
            let mut guard = guard;
            let std_guard = guard.guard.take().expect("guard accessed after release");
            std::mem::forget(guard);
            let (g, t) = self
                .inner
                .wait_timeout(std_guard, dur)
                .unwrap_or_else(|p| p.into_inner());
            Ok((
                MutexGuard { lock, guard: Some(g), model: false },
                WaitTimeoutResult { timed_out: t.timed_out() },
            ))
        }
    }

    /// As `std`'s `Condvar::notify_one`.
    pub fn notify_one(&self) {
        if with_sched(|s, _| s.condvar_notify(self.addr(), false)).is_none() {
            self.inner.notify_one();
        }
    }

    /// As `std`'s `Condvar::notify_all`.
    pub fn notify_all(&self) {
        if with_sched(|s, _| s.condvar_notify(self.addr(), true)).is_none() {
            self.inner.notify_all();
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Model-checked `std::thread` subset: `spawn` creates a *logical* thread
/// inside a model run (scheduled cooperatively, joined through the model),
/// and a plain OS thread otherwise.
pub mod thread {
    pub use std::thread::{panicking, sleep, Result};

    use super::{ModelAbort, Sched};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc as StdArc;
    use std::sync::Mutex as StdMutex;

    struct ModelJoin<T> {
        sched: StdArc<Sched>,
        id: usize,
        slot: StdArc<StdMutex<Option<Result<T>>>>,
    }

    /// Join handle covering both modes (see [`spawn`]).
    pub struct JoinHandle<T> {
        model: Option<ModelJoin<T>>,
        real: Option<std::thread::JoinHandle<T>>,
    }

    impl<T> JoinHandle<T> {
        /// As `std`'s `JoinHandle::join`. In-model, joining an unfinished
        /// logical thread blocks the *logical* caller — a schedule point,
        /// not an OS-level wait.
        pub fn join(self) -> Result<T> {
            match self.model {
                None => self.real.expect("join handle in neither mode").join(),
                Some(m) => {
                    m.sched.join_thread(m.id);
                    m.slot
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .take()
                        .expect("joined logical thread left no result")
                }
            }
        }
    }

    /// As `std`'s `thread::spawn`, but inside a model run the new thread is
    /// a logical thread under the scheduler.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let sched = match crate::sched::with_sched(|s, _| s.clone()) {
            None => {
                return JoinHandle { model: None, real: Some(std::thread::spawn(f)) };
            }
            Some(s) => s,
        };
        let id = sched.spawn_thread();
        let slot: StdArc<StdMutex<Option<Result<T>>>> = StdArc::new(StdMutex::new(None));
        let slot2 = slot.clone();
        let sched2 = sched.clone();
        let real = std::thread::Builder::new()
            .name(format!("mc-{id}"))
            .spawn(move || {
                crate::sched::install(sched2.clone(), id);
                sched2.thread_started(id);
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        *slot2.lock().unwrap_or_else(|p| p.into_inner()) = Some(Ok(v));
                    }
                    Err(p) => {
                        if !p.is::<ModelAbort>() {
                            sched2.record_user_panic(id, crate::sched::panic_message(&*p));
                        }
                        *slot2.lock().unwrap_or_else(|p| p.into_inner()) = Some(Err(p));
                    }
                }
                sched2.finish_thread(id);
            })
            .expect("spawn model logical thread");
        sched.register_real(real);
        JoinHandle { model: Some(ModelJoin { sched, id, slot }), real: None }
    }

    /// As `std`'s `thread::yield_now`; in-model, a pure interleaving point.
    pub fn yield_now() {
        if crate::sched::model_active() {
            super::sched_point("yield");
        } else {
            std::thread::yield_now();
        }
    }
}
