//! A hand-rolled concurrency model checker for the lock-free publication
//! layer (loom-style, std-only).
//!
//! The crate has two faces, switched by the `model-check` feature:
//!
//! * **Off** (default): [`sync`] and [`thread`] are zero-cost re-exports of
//!   `std::sync` / `std::thread`. Code written against this crate compiles
//!   to exactly what it compiled to before — same types, same codegen —
//!   which is what keeps the production server benchmarks bit-identical.
//!
//! * **On**: the same paths resolve to shim types that route every atomic
//!   access, `Arc` refcount change, mutex acquire/release, condvar
//!   wait/notify, and thread spawn/join through a cooperative scheduler.
//!   `explore` then runs a scenario closure under *every* interleaving of
//!   those operations (up to a preemption bound), replaying a DFS over the
//!   schedule tree, and turns panics, deadlocks, leaks, double frees, and
//!   use-after-free on reclaimed `Arc` allocations into hard failures with
//!   schedule diagnostics. Outside an `explore` call the shim types
//!   behave like `std` (so one test binary can mix checked scenarios and
//!   ordinary tests).
//!
//! # Example
//!
//! ```
//! # #[cfg(feature = "model-check")] {
//! use skipflow_modelcheck::sync::atomic::{AtomicU64, Ordering::SeqCst};
//! use skipflow_modelcheck::sync::Arc;
//!
//! let report = skipflow_modelcheck::explore(Default::default(), || {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let n2 = n.clone();
//!     let t = skipflow_modelcheck::thread::spawn(move || {
//!         n2.fetch_add(1, SeqCst);
//!     });
//!     n.fetch_add(1, SeqCst);
//!     t.join().unwrap();
//!     assert_eq!(n.load(SeqCst), 2);
//! });
//! assert!(report.schedules >= 2);
//! # }
//! ```
//!
//! # What the model covers (and what it does not)
//!
//! The scheduler serializes logical threads, so every explored interleaving
//! is *sequentially consistent*. That models `SeqCst` atomics exactly — the
//! publication layer under test uses `SeqCst` throughout, precisely so its
//! correctness argument can lean on a total order — and explores a sound
//! subset (not all) of the behaviors of `Acquire`/`Release`/`Relaxed`
//! code. Timeouts never fire in-model (a missing wake-up is reported as a
//! deadlock instead), and spin loops must be bounded or the depth cap
//! reports a livelock.

#![warn(missing_docs)]

pub mod sync;

#[cfg(feature = "model-check")]
mod sched;
#[cfg(feature = "model-check")]
mod shim;

#[cfg(feature = "model-check")]
pub use sched::{explore, try_explore, Failure, Options, Report};

/// Thread API (`std::thread` or the model-checked subset, by feature).
#[cfg(not(feature = "model-check"))]
pub mod thread {
    pub use std::thread::*;
}

#[cfg(feature = "model-check")]
pub use shim::thread;

/// Yields: an explicit interleaving point inside a model run, a plain
/// `std::thread::yield_now` otherwise. Scenario code can sprinkle this into
/// compute-only stretches to let the explorer switch threads there.
pub fn yield_now() {
    thread::yield_now();
}
