//! Construction APIs: [`ProgramBuilder`] for declarations and [`BodyBuilder`]
//! for SSA method bodies.
//!
//! [`BodyBuilder`] offers structured helpers ([`BodyBuilder::if_else`],
//! [`BodyBuilder::while_loop`]) that emit the base language's
//! `label`/`merge`/φ discipline automatically, so client code never
//! constructs a malformed CFG. The low-level block operations remain
//! available for tests that need unusual shapes.

use crate::body::{Block, BlockBegin, Body, Phi, VarData};
use crate::ids::{BlockId, FieldId, MethodId, SelectorId, TypeId, VarId};
use crate::instr::{BlockEnd, Cond, Expr, Stmt};
use crate::program::Program;
use crate::types::{FieldData, MethodData, SelectorData, Signature, TypeData, TypeKind, TypeRef};
use crate::validate::{self, ValidationError};
use std::collections::HashMap;

/// Builds a [`Program`] incrementally.
///
/// Supertypes must be declared before their subtypes (the natural order);
/// this keeps the hierarchy acyclic by construction and lets
/// `Program::freeze` run in one pass.
///
/// # Examples
///
/// ```
/// use skipflow_ir::{ProgramBuilder, TypeRef};
///
/// let mut pb = ProgramBuilder::new();
/// let animal = pb.add_class("Animal");
/// let dog = pb.class("Dog").extends(animal).build();
/// let speak = pb.method(animal, "speak").returns(TypeRef::Prim).build();
/// pb.set_trivial_body(speak, Some(0));
/// let program = pb.finish()?;
/// assert!(program.is_subtype(dog, animal));
/// # Ok::<(), skipflow_ir::ValidationErrors>(())
/// ```
#[derive(Debug)]
pub struct ProgramBuilder {
    types: Vec<TypeData>,
    methods: Vec<MethodData>,
    fields: Vec<FieldData>,
    selectors: Vec<SelectorData>,
    selector_index: HashMap<(String, usize), SelectorId>,
    type_by_name: HashMap<String, TypeId>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates a builder with the reserved `null` pseudo-type pre-declared.
    pub fn new() -> Self {
        let mut b = ProgramBuilder {
            types: Vec::new(),
            methods: Vec::new(),
            fields: Vec::new(),
            selectors: Vec::new(),
            selector_index: HashMap::new(),
            type_by_name: HashMap::new(),
        };
        let null = b.push_type(TypeData {
            name: "null".to_string(),
            kind: TypeKind::AbstractClass,
            superclass: None,
            interfaces: Vec::new(),
            methods: Vec::new(),
            fields: Vec::new(),
        });
        debug_assert_eq!(null, TypeId::NULL);
        b
    }

    fn push_type(&mut self, data: TypeData) -> TypeId {
        assert!(
            !self.type_by_name.contains_key(&data.name),
            "duplicate type name {:?}",
            data.name
        );
        let id = TypeId::from_index(self.types.len());
        self.type_by_name.insert(data.name.clone(), id);
        self.types.push(data);
        id
    }

    /// Declares a concrete class with no superclass.
    pub fn add_class(&mut self, name: &str) -> TypeId {
        self.class(name).build()
    }

    /// Declares a concrete class extending `superclass`.
    pub fn add_class_extending(&mut self, name: &str, superclass: TypeId) -> TypeId {
        self.class(name).extends(superclass).build()
    }

    /// Declares an interface extending the given interfaces.
    pub fn add_interface(&mut self, name: &str, extends: &[TypeId]) -> TypeId {
        self.push_type(TypeData {
            name: name.to_string(),
            kind: TypeKind::Interface,
            superclass: None,
            interfaces: extends.to_vec(),
            methods: Vec::new(),
            fields: Vec::new(),
        })
    }

    /// Starts a fluent class declaration.
    pub fn class<'a>(&'a mut self, name: &str) -> ClassBuilder<'a> {
        ClassBuilder {
            pb: self,
            name: name.to_string(),
            kind: TypeKind::Class,
            superclass: None,
            interfaces: Vec::new(),
        }
    }

    /// Interns the selector `name/arity`.
    pub fn selector(&mut self, name: &str, arity: usize) -> SelectorId {
        let key = (name.to_string(), arity);
        if let Some(&id) = self.selector_index.get(&key) {
            return id;
        }
        let id = SelectorId::from_index(self.selectors.len());
        self.selectors.push(SelectorData {
            name: key.0.clone(),
            arity,
        });
        self.selector_index.insert(key, id);
        id
    }

    /// Declares an instance field.
    pub fn add_field(&mut self, owner: TypeId, name: &str, ty: TypeRef) -> FieldId {
        self.add_field_inner(owner, name, ty, false)
    }

    /// Declares a static field.
    pub fn add_static_field(&mut self, owner: TypeId, name: &str, ty: TypeRef) -> FieldId {
        self.add_field_inner(owner, name, ty, true)
    }

    fn add_field_inner(&mut self, owner: TypeId, name: &str, ty: TypeRef, is_static: bool) -> FieldId {
        let id = FieldId::from_index(self.fields.len());
        self.fields.push(FieldData {
            name: name.to_string(),
            owner,
            ty,
            is_static,
        });
        self.types[owner.index()].fields.push(id);
        id
    }

    /// Starts a fluent method declaration on `owner`.
    pub fn method<'a>(&'a mut self, owner: TypeId, name: &str) -> MethodDeclBuilder<'a> {
        MethodDeclBuilder {
            pb: self,
            owner,
            name: name.to_string(),
            is_static: false,
            is_abstract: false,
            sig: Signature::void(),
        }
    }

    /// Attaches a body to a previously declared method.
    ///
    /// # Panics
    ///
    /// Panics if the method is abstract or the parameter count disagrees with
    /// the declared signature.
    pub fn set_body(&mut self, m: MethodId, body: Body) {
        let md = &mut self.methods[m.index()];
        assert!(!md.is_abstract, "abstract method {:?} cannot have a body", md.name);
        assert_eq!(
            body.params().len(),
            md.param_count(),
            "body of {:?} declares the wrong parameter count",
            md.name
        );
        md.body = Some(body);
    }

    /// Builds a body for `m` with a [`BodyBuilder`] pre-seeded with the
    /// method's parameters, then attaches it.
    pub fn build_body(&mut self, m: MethodId, f: impl FnOnce(&mut BodyBuilder)) {
        let md = &self.methods[m.index()];
        let names: Vec<String> = (0..md.param_count())
            .map(|i| {
                if !md.is_static && i == 0 {
                    "this".to_string()
                } else {
                    format!("p{i}")
                }
            })
            .collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut bb = BodyBuilder::new(&refs);
        f(&mut bb);
        self.set_body(m, bb.finish());
    }

    /// Attaches the simplest possible body: `start(…); return [const]`.
    pub fn set_trivial_body(&mut self, m: MethodId, ret: Option<i64>) {
        self.build_body(m, |bb| {
            let v = ret.map(|n| bb.const_(n));
            bb.ret(v);
        });
    }

    /// Freezes, validates, and returns the program.
    ///
    /// # Errors
    ///
    /// Returns every validation failure found (SSA violations, malformed
    /// block discipline, bad references).
    pub fn finish(self) -> Result<Program, ValidationErrors> {
        let mut program = Program {
            types: self.types,
            methods: self.methods,
            fields: self.fields,
            selectors: self.selectors,
            type_by_name: self.type_by_name,
            subtype_mask: Vec::new(),
            dispatch: Vec::new(),
        };
        program.freeze();
        let errors = validate::validate_program(&program);
        if errors.is_empty() {
            Ok(program)
        } else {
            Err(ValidationErrors(errors))
        }
    }
}

/// The collection of validation failures returned by
/// [`ProgramBuilder::finish`].
#[derive(Debug)]
pub struct ValidationErrors(pub Vec<ValidationError>);

impl std::fmt::Display for ValidationErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} validation error(s):", self.0.len())?;
        for e in &self.0 {
            writeln!(f, "  - {e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidationErrors {}

/// Fluent class declaration, created by [`ProgramBuilder::class`].
#[derive(Debug)]
pub struct ClassBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    name: String,
    kind: TypeKind,
    superclass: Option<TypeId>,
    interfaces: Vec<TypeId>,
}

impl ClassBuilder<'_> {
    /// Sets the superclass.
    pub fn extends(mut self, superclass: TypeId) -> Self {
        self.superclass = Some(superclass);
        self
    }

    /// Adds an implemented interface.
    pub fn implements_(mut self, interface: TypeId) -> Self {
        self.interfaces.push(interface);
        self
    }

    /// Marks the class abstract (not instantiable).
    pub fn abstract_(mut self) -> Self {
        self.kind = TypeKind::AbstractClass;
        self
    }

    /// Declares the class and returns its id.
    pub fn build(self) -> TypeId {
        let ClassBuilder {
            pb,
            name,
            kind,
            superclass,
            interfaces,
        } = self;
        pb.push_type(TypeData {
            name,
            kind,
            superclass,
            interfaces,
            methods: Vec::new(),
            fields: Vec::new(),
        })
    }
}

/// Fluent method declaration, created by [`ProgramBuilder::method`].
#[derive(Debug)]
pub struct MethodDeclBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    owner: TypeId,
    name: String,
    is_static: bool,
    is_abstract: bool,
    sig: Signature,
}

impl MethodDeclBuilder<'_> {
    /// Sets the declared (non-receiver) parameter types.
    pub fn params(mut self, params: Vec<TypeRef>) -> Self {
        self.sig.params = params;
        self
    }

    /// Sets the declared return type (default: void).
    pub fn returns(mut self, ret: TypeRef) -> Self {
        self.sig.ret = ret;
        self
    }

    /// Marks the method static (no receiver, no dynamic dispatch).
    pub fn static_(mut self) -> Self {
        self.is_static = true;
        self
    }

    /// Marks the method abstract (no body; masks inherited implementations).
    pub fn abstract_(mut self) -> Self {
        self.is_abstract = true;
        self
    }

    /// Declares the method and returns its id.
    pub fn build(self) -> MethodId {
        let MethodDeclBuilder {
            pb,
            owner,
            name,
            is_static,
            is_abstract,
            sig,
        } = self;
        let selector = pb.selector(&name, sig.params.len());
        let id = MethodId::from_index(pb.methods.len());
        pb.methods.push(MethodData {
            name,
            owner,
            selector,
            is_static,
            is_abstract,
            sig,
            body: None,
        });
        pb.types[owner.index()].methods.push(id);
        id
    }
}

// ---------------------------------------------------------------------------
// Body construction
// ---------------------------------------------------------------------------

/// Outcome of one branch of an [`BodyBuilder::if_else`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BranchExit {
    /// The branch falls through, carrying these values to the join (both
    /// branches must carry the same number of values).
    Values(Vec<VarId>),
    /// The branch ends with `return` or `throw` and never reaches the join.
    Terminated,
}

impl BranchExit {
    /// A fall-through carrying no values.
    pub fn fallthrough() -> Self {
        BranchExit::Values(Vec::new())
    }

    /// A fall-through carrying one value.
    pub fn value(v: VarId) -> Self {
        BranchExit::Values(vec![v])
    }
}

struct BlockInProgress {
    begin: BlockBegin,
    stmts: Vec<Stmt>,
    end: Option<BlockEnd>,
}

/// Builds one SSA method body.
///
/// The builder maintains a *current block*; statement emitters append to it
/// and control-flow helpers replace it. Once the current block terminates
/// (`return`/`throw`, or an `if_else` whose branches both terminate), further
/// emission panics — structure the code so that dead statements are never
/// emitted.
pub struct BodyBuilder {
    blocks: Vec<BlockInProgress>,
    vars: Vec<VarData>,
    params: Vec<VarId>,
    current: Option<BlockId>,
}

impl BodyBuilder {
    /// Creates a builder whose entry block declares one parameter per name.
    pub fn new(param_names: &[&str]) -> Self {
        let mut vars = Vec::new();
        let params: Vec<VarId> = param_names
            .iter()
            .map(|n| {
                let id = VarId::from_index(vars.len());
                vars.push(VarData { name: (*n).to_string() });
                id
            })
            .collect();
        BodyBuilder {
            blocks: vec![BlockInProgress {
                begin: BlockBegin::Start { params: params.clone() },
                stmts: Vec::new(),
                end: None,
            }],
            vars,
            params,
            current: Some(BlockId::ENTRY),
        }
    }

    /// The parameter variables, receiver first for instance methods.
    pub fn params(&self) -> &[VarId] {
        &self.params
    }

    /// A shorthand for parameter `i`.
    pub fn param(&self, i: usize) -> VarId {
        self.params[i]
    }

    /// Returns `true` once all control paths have terminated; emitting more
    /// statements would panic.
    pub fn is_terminated(&self) -> bool {
        self.current.is_none()
    }

    fn fresh_var(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId::from_index(self.vars.len());
        self.vars.push(VarData { name: name.into() });
        id
    }

    fn cur(&mut self) -> &mut BlockInProgress {
        let id = self.current.expect("all control paths already terminated");
        &mut self.blocks[id.index()]
    }

    fn push_block(&mut self, begin: BlockBegin) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(BlockInProgress {
            begin,
            stmts: Vec::new(),
            end: None,
        });
        id
    }

    fn end_current(&mut self, end: BlockEnd) {
        let b = self.cur();
        assert!(b.end.is_none(), "current block already terminated");
        b.end = Some(end);
        self.current = None;
    }

    // ---- statement emitters ------------------------------------------------

    /// Emits `v ← e` and returns `v`.
    pub fn assign(&mut self, expr: Expr) -> VarId {
        let def = self.fresh_var("v");
        self.cur().stmts.push(Stmt::Assign { def, expr });
        def
    }

    /// Emits `v ← n` and returns `v`.
    pub fn const_(&mut self, n: i64) -> VarId {
        self.assign(Expr::Const(n))
    }

    /// Emits `v ← Any` (opaque arithmetic result) and returns `v`.
    pub fn any_prim(&mut self) -> VarId {
        self.assign(Expr::AnyPrim)
    }

    /// Emits `v ← new T` and returns `v`.
    pub fn new_obj(&mut self, ty: TypeId) -> VarId {
        self.assign(Expr::New(ty))
    }

    /// Emits `v ← null` and returns `v`.
    pub fn null_(&mut self) -> VarId {
        self.assign(Expr::Null)
    }

    /// Emits `v ← object.field` and returns `v`.
    pub fn load(&mut self, object: VarId, field: FieldId) -> VarId {
        let def = self.fresh_var("v");
        self.cur().stmts.push(Stmt::Load { def, object, field });
        def
    }

    /// Emits `object.field ← value`.
    pub fn store(&mut self, object: VarId, field: FieldId, value: VarId) {
        self.cur().stmts.push(Stmt::Store { object, field, value });
    }

    /// Emits a virtual invoke and returns the result variable.
    pub fn invoke(&mut self, receiver: VarId, selector: SelectorId, args: &[VarId]) -> VarId {
        let def = self.fresh_var("v");
        self.cur().stmts.push(Stmt::Invoke {
            def,
            receiver,
            selector,
            args: args.to_vec(),
        });
        def
    }

    /// Emits a static invoke and returns the result variable.
    pub fn invoke_static(&mut self, target: MethodId, args: &[VarId]) -> VarId {
        let def = self.fresh_var("v");
        self.cur().stmts.push(Stmt::InvokeStatic {
            def,
            target,
            args: args.to_vec(),
        });
        def
    }

    /// Emits `v ← catch T` (exception-handler entry) and returns `v`.
    pub fn catch_(&mut self, ty: TypeId) -> VarId {
        let def = self.fresh_var("ex");
        self.cur().stmts.push(Stmt::Catch { def, ty });
        def
    }

    // ---- terminators ---------------------------------------------------------

    /// Ends the body on the current path with `return [v]`.
    pub fn ret(&mut self, v: Option<VarId>) {
        self.end_current(BlockEnd::Return(v));
    }

    /// Ends the body on the current path with `throw v`.
    pub fn throw(&mut self, v: VarId) {
        self.end_current(BlockEnd::Throw(v));
    }

    // ---- structured control flow ----------------------------------------------

    /// Emits `if (cond) { then } else { else }` with a merge afterwards.
    ///
    /// Each closure returns a [`BranchExit`]; fall-through branches must carry
    /// the same number of values, which are joined with φ instructions at the
    /// merge. Returns the joined values (empty when both branches terminate —
    /// in that case the whole builder is terminated).
    ///
    /// # Panics
    ///
    /// Panics if the two fall-through branches carry different value counts.
    pub fn if_else(
        &mut self,
        cond: Cond,
        then_f: impl FnOnce(&mut Self) -> BranchExit,
        else_f: impl FnOnce(&mut Self) -> BranchExit,
    ) -> Vec<VarId> {
        let then_block = self.push_block(BlockBegin::Label);
        let else_block = self.push_block(BlockBegin::Label);
        self.end_current(BlockEnd::If {
            cond,
            then_block,
            else_block,
        });

        self.current = Some(then_block);
        let then_exit = then_f(self);
        let then_end = self.current; // block the branch fell out of, if any

        self.current = Some(else_block);
        let else_exit = else_f(self);
        let else_end = self.current;

        let mut incoming: Vec<(BlockId, Vec<VarId>)> = Vec::new();
        if let BranchExit::Values(vals) = &then_exit {
            incoming.push((then_end.expect("fall-through branch has a current block"), vals.clone()));
        }
        if let BranchExit::Values(vals) = &else_exit {
            incoming.push((else_end.expect("fall-through branch has a current block"), vals.clone()));
        }

        match incoming.len() {
            0 => {
                // Both branches terminated; the builder is now terminated.
                self.current = None;
                Vec::new()
            }
            1 => {
                // Single fall-through: a one-predecessor merge, no φs needed.
                let (pred, vals) = incoming.pop().unwrap();
                let merge = self.push_block(BlockBegin::Merge {
                    phis: Vec::new(),
                    preds: vec![pred],
                });
                self.blocks[pred.index()].end = Some(BlockEnd::Jump(merge));
                self.current = Some(merge);
                vals
            }
            2 => {
                let (then_pred, then_vals) = incoming.remove(0);
                let (else_pred, else_vals) = incoming.remove(0);
                assert_eq!(
                    then_vals.len(),
                    else_vals.len(),
                    "if_else branches must carry the same number of values"
                );
                let mut phis = Vec::new();
                let mut joined = Vec::new();
                for (&tv, &ev) in then_vals.iter().zip(&else_vals) {
                    if tv == ev {
                        joined.push(tv);
                    } else {
                        let def = self.fresh_var("phi");
                        phis.push(Phi {
                            def,
                            args: vec![tv, ev],
                        });
                        joined.push(def);
                    }
                }
                let merge = self.push_block(BlockBegin::Merge {
                    phis,
                    preds: vec![then_pred, else_pred],
                });
                self.blocks[then_pred.index()].end = Some(BlockEnd::Jump(merge));
                self.blocks[else_pred.index()].end = Some(BlockEnd::Jump(merge));
                self.current = Some(merge);
                joined
            }
            _ => unreachable!(),
        }
    }

    /// Emits `if (cond) { then }` with no else-branch values.
    pub fn if_then(&mut self, cond: Cond, then_f: impl FnOnce(&mut Self) -> BranchExit) {
        self.if_else(cond, then_f, |_| BranchExit::fallthrough());
    }

    /// Emits a while loop.
    ///
    /// `carried` are the loop-carried values (initial definitions from before
    /// the loop); the closures receive the corresponding φ definitions from
    /// the loop header. `cond_f` builds the loop condition (emitting into the
    /// header block); `body_f` builds the body and returns the next iteration's
    /// values (same count), or [`BranchExit::Terminated`] if the body never
    /// reaches the back edge.
    ///
    /// Returns the header φ definitions, which hold the values after the loop.
    pub fn while_loop(
        &mut self,
        carried: &[VarId],
        cond_f: impl FnOnce(&mut Self, &[VarId]) -> Cond,
        body_f: impl FnOnce(&mut Self, &[VarId]) -> BranchExit,
    ) -> Vec<VarId> {
        let preheader = self.current.expect("loop emitted on a terminated path");
        let phi_defs: Vec<VarId> = carried.iter().map(|_| self.fresh_var("loop")).collect();
        let phis: Vec<Phi> = phi_defs
            .iter()
            .zip(carried)
            .map(|(&def, &init)| Phi {
                def,
                args: vec![init],
            })
            .collect();
        let header = self.push_block(BlockBegin::Merge {
            phis,
            preds: vec![preheader],
        });
        self.blocks[preheader.index()].end = Some(BlockEnd::Jump(header));
        self.current = Some(header);

        let cond = cond_f(self, &phi_defs);
        let body_block = self.push_block(BlockBegin::Label);
        let exit_block = self.push_block(BlockBegin::Label);
        self.end_current(BlockEnd::If {
            cond,
            then_block: body_block,
            else_block: exit_block,
        });

        self.current = Some(body_block);
        let body_exit = body_f(self, &phi_defs);
        if let BranchExit::Values(next) = body_exit {
            assert_eq!(
                next.len(),
                carried.len(),
                "loop body must produce one value per carried variable"
            );
            let back = self.current.expect("fall-through body has a current block");
            self.blocks[back.index()].end = Some(BlockEnd::Jump(header));
            // Patch the header: add the back edge and the second φ arguments.
            match &mut self.blocks[header.index()].begin {
                BlockBegin::Merge { phis, preds } => {
                    preds.push(back);
                    for (phi, &n) in phis.iter_mut().zip(&next) {
                        phi.args.push(n);
                    }
                }
                _ => unreachable!(),
            }
        }

        self.current = Some(exit_block);
        phi_defs
    }

    // ---- low-level escape hatches -------------------------------------------

    /// Appends a raw statement to the current block.
    pub fn push_stmt(&mut self, stmt: Stmt) {
        self.cur().stmts.push(stmt);
    }

    /// Creates a detached label block (low-level API).
    pub fn raw_label_block(&mut self) -> BlockId {
        self.push_block(BlockBegin::Label)
    }

    /// Creates a detached merge block (low-level API).
    pub fn raw_merge_block(&mut self, phis: Vec<Phi>, preds: Vec<BlockId>) -> BlockId {
        self.push_block(BlockBegin::Merge { phis, preds })
    }

    /// Creates a fresh variable without a defining statement (low-level API;
    /// validation will reject the body unless a definition is added).
    pub fn raw_var(&mut self, name: &str) -> VarId {
        self.fresh_var(name)
    }

    /// Terminates the current block with an arbitrary terminator (low-level
    /// API).
    pub fn raw_end(&mut self, end: BlockEnd) {
        self.end_current(end);
    }

    /// Switches emission to the given block (low-level API).
    pub fn raw_switch_to(&mut self, block: BlockId) {
        self.current = Some(block);
    }

    /// The block currently receiving statements, if the path is live
    /// (low-level API).
    pub fn current_block(&self) -> Option<BlockId> {
        self.current
    }

    /// Terminates an arbitrary block (low-level API).
    ///
    /// # Panics
    ///
    /// Panics if the block is already terminated.
    pub fn raw_end_block(&mut self, block: BlockId, end: BlockEnd) {
        let b = &mut self.blocks[block.index()];
        assert!(b.end.is_none(), "block {block} already terminated");
        b.end = Some(end);
        if self.current == Some(block) {
            self.current = None;
        }
    }

    /// Adds a predecessor and one φ argument per φ to a merge block
    /// (low-level API used for loop back edges).
    ///
    /// # Panics
    ///
    /// Panics if `merge` is not a merge block or the argument count disagrees
    /// with the φ count.
    pub fn patch_merge(&mut self, merge: BlockId, pred: BlockId, args: &[VarId]) {
        match &mut self.blocks[merge.index()].begin {
            BlockBegin::Merge { phis, preds } => {
                assert_eq!(phis.len(), args.len(), "one argument per φ required");
                preds.push(pred);
                for (phi, &a) in phis.iter_mut().zip(args) {
                    phi.args.push(a);
                }
            }
            _ => panic!("{merge} is not a merge block"),
        }
    }

    /// Finalizes the body.
    ///
    /// # Panics
    ///
    /// Panics if any block lacks a terminator (i.e. some control path was
    /// left unfinished).
    pub fn finish(self) -> Body {
        let blocks: Vec<Block> = self
            .blocks
            .into_iter()
            .enumerate()
            .map(|(i, b)| Block {
                begin: b.begin,
                stmts: b.stmts,
                end: b
                    .end
                    .unwrap_or_else(|| panic!("block b{i} left unterminated")),
            })
            .collect();
        Body {
            blocks,
            vars: self.vars,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::CmpOp;

    #[test]
    fn straight_line_body() {
        let mut bb = BodyBuilder::new(&["this"]);
        let c = bb.const_(5);
        bb.ret(Some(c));
        let body = bb.finish();
        assert_eq!(body.blocks.len(), 1);
        assert_eq!(body.params().len(), 1);
        assert_eq!(body.instruction_count(), 2);
    }

    #[test]
    fn if_else_creates_diamond_with_phi() {
        let mut bb = BodyBuilder::new(&["this", "x"]);
        let x = bb.param(1);
        let ten = bb.const_(10);
        let joined = bb.if_else(
            Cond::Cmp { op: CmpOp::Lt, lhs: x, rhs: ten },
            |bb| BranchExit::value(bb.const_(1)),
            |bb| BranchExit::value(bb.const_(2)),
        );
        assert_eq!(joined.len(), 1);
        bb.ret(Some(joined[0]));
        let body = bb.finish();
        // entry, then-label, else-label, merge
        assert_eq!(body.blocks.len(), 4);
        match &body.blocks[3].begin {
            BlockBegin::Merge { phis, preds } => {
                assert_eq!(phis.len(), 1);
                assert_eq!(preds.len(), 2);
                assert_eq!(phis[0].args.len(), 2);
            }
            other => panic!("expected merge, got {other:?}"),
        }
    }

    #[test]
    fn if_else_same_value_skips_phi() {
        let mut bb = BodyBuilder::new(&["x"]);
        let x = bb.param(0);
        let zero = bb.const_(0);
        let joined = bb.if_else(
            Cond::Cmp { op: CmpOp::Eq, lhs: x, rhs: zero },
            |_| BranchExit::value(x),
            |_| BranchExit::value(x),
        );
        assert_eq!(joined, vec![x]);
        bb.ret(Some(joined[0]));
        let body = bb.finish();
        match &body.blocks[3].begin {
            BlockBegin::Merge { phis, .. } => assert!(phis.is_empty()),
            other => panic!("expected merge, got {other:?}"),
        }
    }

    #[test]
    fn if_else_one_branch_terminates() {
        let mut bb = BodyBuilder::new(&["x"]);
        let x = bb.param(0);
        let zero = bb.const_(0);
        bb.if_else(
            Cond::Cmp { op: CmpOp::Eq, lhs: x, rhs: zero },
            |bb| {
                bb.ret(None);
                BranchExit::Terminated
            },
            |_| BranchExit::fallthrough(),
        );
        bb.ret(None);
        let body = bb.finish();
        // entry, then, else, single-pred merge
        assert_eq!(body.blocks.len(), 4);
        match &body.blocks[3].begin {
            BlockBegin::Merge { preds, .. } => assert_eq!(preds.len(), 1),
            other => panic!("expected merge, got {other:?}"),
        }
    }

    #[test]
    fn both_branches_terminated_terminates_builder() {
        let mut bb = BodyBuilder::new(&["x"]);
        let x = bb.param(0);
        let zero = bb.const_(0);
        bb.if_else(
            Cond::Cmp { op: CmpOp::Eq, lhs: x, rhs: zero },
            |bb| {
                bb.ret(None);
                BranchExit::Terminated
            },
            |bb| {
                bb.ret(None);
                BranchExit::Terminated
            },
        );
        assert!(bb.is_terminated());
        let body = bb.finish();
        assert_eq!(body.blocks.len(), 3);
    }

    #[test]
    fn while_loop_builds_header_phis_and_back_edge() {
        let mut bb = BodyBuilder::new(&[]);
        let zero = bb.const_(0);
        let ten = bb.const_(10);
        let after = bb.while_loop(
            &[zero],
            |_, phis| Cond::Cmp { op: CmpOp::Lt, lhs: phis[0], rhs: ten },
            |bb, _| BranchExit::Values(vec![bb.any_prim()]),
        );
        bb.ret(Some(after[0]));
        let body = bb.finish();
        // entry, header(merge), body(label), exit(label)
        assert_eq!(body.blocks.len(), 4);
        match &body.blocks[1].begin {
            BlockBegin::Merge { phis, preds } => {
                assert_eq!(preds.len(), 2);
                assert_eq!(phis.len(), 1);
                assert_eq!(phis[0].args.len(), 2);
                // Back edge: second predecessor has a larger id than header.
                assert!(preds[1].index() > 1);
            }
            other => panic!("expected merge, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "terminated")]
    fn emitting_after_termination_panics() {
        let mut bb = BodyBuilder::new(&[]);
        bb.ret(None);
        let _ = bb.const_(1);
    }

    #[test]
    #[should_panic(expected = "unterminated")]
    fn finish_rejects_open_blocks() {
        let mut bb = BodyBuilder::new(&[]);
        let _ = bb.const_(1);
        let _ = bb.finish();
    }
}
