//! Types, fields, methods, and selectors of the base language.

use crate::ids::{FieldId, MethodId, SelectorId, TypeId};
use std::fmt;

/// The kind of a declared type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TypeKind {
    /// A concrete class; instantiable with `new`.
    Class,
    /// An abstract class; participates in dispatch but cannot be instantiated.
    AbstractClass,
    /// An interface; cannot be instantiated, cannot declare fields here.
    Interface,
}

impl TypeKind {
    /// Returns `true` if values of this type can be created with `new`.
    pub fn is_instantiable(self) -> bool {
        matches!(self, TypeKind::Class)
    }
}

/// A declared type (class or interface).
#[derive(Clone, Debug)]
pub struct TypeData {
    /// Source-level name, unique within a program.
    pub name: String,
    /// Class, abstract class, or interface.
    pub kind: TypeKind,
    /// Direct superclass. `None` for root classes, interfaces, and the
    /// reserved `null` pseudo-type.
    pub superclass: Option<TypeId>,
    /// Directly implemented (class) or extended (interface) interfaces.
    pub interfaces: Vec<TypeId>,
    /// Methods declared directly on this type.
    pub(crate) methods: Vec<MethodId>,
    /// Fields declared directly on this type.
    pub(crate) fields: Vec<FieldId>,
}

impl TypeData {
    /// Methods declared directly on this type (excluding inherited ones).
    pub fn declared_methods(&self) -> &[MethodId] {
        &self.methods
    }

    /// Fields declared directly on this type (excluding inherited ones).
    pub fn declared_fields(&self) -> &[FieldId] {
        &self.fields
    }
}

/// A declared (static) type annotation: the type of a parameter, field, or
/// return value.
///
/// The base language distinguishes only primitives and object references —
/// boolean values are integers 0/1 per the JVM specification (paper §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TypeRef {
    /// No value; only valid as a method return type. Per the paper, a void
    /// method still returns an artificial token so invokes act as predicates.
    Void,
    /// A primitive (integer-like) value.
    Prim,
    /// A reference of the given declared class/interface type (may be null).
    Object(TypeId),
}

impl TypeRef {
    /// Returns `true` for [`TypeRef::Object`].
    pub fn is_object(self) -> bool {
        matches!(self, TypeRef::Object(_))
    }

    /// Returns the object type id, if any.
    pub fn object_type(self) -> Option<TypeId> {
        match self {
            TypeRef::Object(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for TypeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeRef::Void => write!(f, "void"),
            TypeRef::Prim => write!(f, "int"),
            TypeRef::Object(t) => write!(f, "{t}"),
        }
    }
}

/// A field declaration.
#[derive(Clone, Debug)]
pub struct FieldData {
    /// Source-level name, unique within the declaring type.
    pub name: String,
    /// Declaring type.
    pub owner: TypeId,
    /// Declared type of the stored value.
    pub ty: TypeRef,
    /// Whether the field is static (one global location instead of one per
    /// object). Static fields still get a single flow in the analysis, which
    /// matches the context-insensitive treatment of instance fields.
    pub is_static: bool,
}

/// A method selector: dispatch key consisting of a name and an argument count
/// (receiver excluded).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SelectorData {
    /// Method name.
    pub name: String,
    /// Number of declared (non-receiver) parameters.
    pub arity: usize,
}

/// A method signature: declared parameter types (receiver excluded) and the
/// return type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Signature {
    /// Declared types of the non-receiver parameters.
    pub params: Vec<TypeRef>,
    /// Declared return type.
    pub ret: TypeRef,
}

impl Signature {
    /// A signature with no parameters and a void return.
    pub fn void() -> Self {
        Signature {
            params: Vec::new(),
            ret: TypeRef::Void,
        }
    }

    /// Creates a signature from parameter types and a return type.
    pub fn new(params: Vec<TypeRef>, ret: TypeRef) -> Self {
        Signature { params, ret }
    }
}

/// A method declaration, possibly with a body.
#[derive(Clone, Debug)]
pub struct MethodData {
    /// Source-level name.
    pub name: String,
    /// Declaring type.
    pub owner: TypeId,
    /// Dispatch selector (name + arity).
    pub selector: SelectorId,
    /// Static methods have no receiver and are not dispatched virtually.
    pub is_static: bool,
    /// Abstract methods have no body and make inherited concrete
    /// implementations invisible to resolution (as in Java).
    pub is_abstract: bool,
    /// Declared signature.
    pub sig: Signature,
    /// The SSA body; `None` for abstract methods.
    pub body: Option<crate::body::Body>,
}

impl MethodData {
    /// Number of formal parameters of the body, including the receiver for
    /// instance methods.
    pub fn param_count(&self) -> usize {
        self.sig.params.len() + usize::from(!self.is_static)
    }

    /// Declared type of body parameter `i` (receiver included for instance
    /// methods: index 0 is the receiver, typed as the owner).
    pub fn param_type(&self, i: usize) -> TypeRef {
        if self.is_static {
            self.sig.params[i]
        } else if i == 0 {
            TypeRef::Object(self.owner)
        } else {
            self.sig.params[i - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_kind_instantiable() {
        assert!(TypeKind::Class.is_instantiable());
        assert!(!TypeKind::AbstractClass.is_instantiable());
        assert!(!TypeKind::Interface.is_instantiable());
    }

    #[test]
    fn type_ref_accessors() {
        let t = TypeId::from_index(5);
        assert!(TypeRef::Object(t).is_object());
        assert_eq!(TypeRef::Object(t).object_type(), Some(t));
        assert_eq!(TypeRef::Prim.object_type(), None);
        assert!(!TypeRef::Void.is_object());
    }

    #[test]
    fn type_ref_display() {
        assert_eq!(TypeRef::Void.to_string(), "void");
        assert_eq!(TypeRef::Prim.to_string(), "int");
        assert_eq!(TypeRef::Object(TypeId::from_index(2)).to_string(), "t2");
    }

    #[test]
    fn method_param_indexing() {
        let owner = TypeId::from_index(1);
        let m = MethodData {
            name: "m".into(),
            owner,
            selector: SelectorId::from_index(0),
            is_static: false,
            is_abstract: false,
            sig: Signature::new(vec![TypeRef::Prim], TypeRef::Void),
            body: None,
        };
        assert_eq!(m.param_count(), 2);
        assert_eq!(m.param_type(0), TypeRef::Object(owner));
        assert_eq!(m.param_type(1), TypeRef::Prim);

        let s = MethodData { is_static: true, ..m };
        assert_eq!(s.param_count(), 1);
        assert_eq!(s.param_type(0), TypeRef::Prim);
    }
}
