//! Statements, expressions, conditions, and block terminators of the base
//! language (paper Appendix B.1, Figure 10).

use crate::ids::{BlockId, FieldId, MethodId, SelectorId, TypeId, VarId};

/// Right-hand side of a `v ← e` assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A primitive integer constant `n`. Booleans are 0/1.
    Const(i64),
    /// The result of arbitrary arithmetic: always produces the lattice value
    /// `Any`. The base language does not model arithmetic precisely
    /// (paper §3, "Abstractions for Primitive Values").
    AnyPrim,
    /// Object allocation `new T`. `T` must be an instantiable class.
    New(TypeId),
    /// The `null` reference.
    Null,
}

/// A statement inside a basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `v ← e`
    Assign {
        /// Defined variable.
        def: VarId,
        /// Right-hand side expression.
        expr: Expr,
    },
    /// Field load `v ← r.x`.
    Load {
        /// Defined variable.
        def: VarId,
        /// Receiver object.
        object: VarId,
        /// The accessed field.
        field: FieldId,
    },
    /// Field store `r.x ← v`.
    Store {
        /// Receiver object.
        object: VarId,
        /// The accessed field.
        field: FieldId,
        /// Stored value.
        value: VarId,
    },
    /// Virtual invocation `v ← v0.m(v1, …, vn)`; `def` also represents the
    /// returned value (or the artificial token for void callees).
    Invoke {
        /// Defined variable (call result / reachability token).
        def: VarId,
        /// Receiver `v0`.
        receiver: VarId,
        /// Dispatch selector.
        selector: SelectorId,
        /// Arguments `v1, …, vn` (receiver excluded).
        args: Vec<VarId>,
    },
    /// Static invocation `v ← T::m(v1, …, vn)` — an extension over the formal
    /// base language needed for always-throwing helpers such as
    /// `Assert.fail()` (paper §5, "Handling Exceptions").
    InvokeStatic {
        /// Defined variable (call result / reachability token).
        def: VarId,
        /// The statically-bound target method.
        target: MethodId,
        /// Arguments.
        args: Vec<VarId>,
    },
    /// `v ← catch T` — an exception-handler entry: receives every instantiated
    /// exception type that is a subtype of `T` thrown anywhere in the program
    /// (the paper's deliberately coarse exception policy, §5).
    Catch {
        /// Defined variable holding the caught exception.
        def: VarId,
        /// Handler type bound.
        ty: TypeId,
    },
}

impl Stmt {
    /// The variable defined by this statement, if any.
    pub fn def(&self) -> Option<VarId> {
        match self {
            Stmt::Assign { def, .. }
            | Stmt::Load { def, .. }
            | Stmt::Invoke { def, .. }
            | Stmt::InvokeStatic { def, .. }
            | Stmt::Catch { def, .. } => Some(*def),
            Stmt::Store { .. } => None,
        }
    }

    /// Variables used (read) by this statement.
    pub fn uses(&self) -> Vec<VarId> {
        match self {
            Stmt::Assign { .. } | Stmt::Catch { .. } => Vec::new(),
            Stmt::Load { object, .. } => vec![*object],
            Stmt::Store { object, value, .. } => vec![*object, *value],
            Stmt::Invoke { receiver, args, .. } => {
                let mut v = vec![*receiver];
                v.extend_from_slice(args);
                v
            }
            Stmt::InvokeStatic { args, .. } => args.clone(),
        }
    }
}

/// Comparison operators.
///
/// The formal base language only needs `=` and `<`; the rest are expressible
/// by [`CmpOp::invert`]ing (for else-branches) and [`CmpOp::flip`]ping (for
/// filtering the right operand), so the IR carries all six directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Logical negation, used for the else branch: `inv(<) = ≥`.
    pub fn invert(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Operand swap, used for filtering the right operand: `flip(<) = >`.
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluates the comparison on two concrete integers.
    pub fn eval(self, l: i64, r: i64) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }

    /// The source-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A branching condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cond {
    /// Binary comparison `lhs op rhs`. Null checks are `x == v` with
    /// `v ← null`; truth tests are `x != v` with `v ← 0`.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        lhs: VarId,
        /// Right operand.
        rhs: VarId,
    },
    /// Type test `var instanceof ty` (or its negation).
    InstanceOf {
        /// Tested variable.
        var: VarId,
        /// Tested type.
        ty: TypeId,
        /// `true` for `!(var instanceof ty)`.
        negated: bool,
    },
}

impl Cond {
    /// Logical negation of the condition (used for else branches).
    pub fn invert(self) -> Cond {
        match self {
            Cond::Cmp { op, lhs, rhs } => Cond::Cmp {
                op: op.invert(),
                lhs,
                rhs,
            },
            Cond::InstanceOf { var, ty, negated } => Cond::InstanceOf {
                var,
                ty,
                negated: !negated,
            },
        }
    }

    /// Variables read by the condition.
    pub fn uses(&self) -> Vec<VarId> {
        match self {
            Cond::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Cond::InstanceOf { var, .. } => vec![*var],
        }
    }
}

/// The terminator of a basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockEnd {
    /// `return v` / `return` (void).
    Return(Option<VarId>),
    /// `jump m` — unconditional jump to a merge block.
    Jump(BlockId),
    /// `if c then l_then else l_else` — both successors are label blocks.
    If {
        /// Branching condition.
        cond: Cond,
        /// Successor when the condition holds.
        then_block: BlockId,
        /// Successor when the condition does not hold.
        else_block: BlockId,
    },
    /// `throw v` — aborts the method; the value flows into the global thrown
    /// pool (extension; see [`Stmt::Catch`]).
    Throw(VarId),
}

impl BlockEnd {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            BlockEnd::Return(_) | BlockEnd::Throw(_) => Vec::new(),
            BlockEnd::Jump(t) => vec![*t],
            BlockEnd::If {
                then_block,
                else_block,
                ..
            } => vec![*then_block, *else_block],
        }
    }

    /// Variables read by this terminator.
    pub fn uses(&self) -> Vec<VarId> {
        match self {
            BlockEnd::Return(v) => v.iter().copied().collect(),
            BlockEnd::Jump(_) => Vec::new(),
            BlockEnd::If { cond, .. } => cond.uses(),
            BlockEnd::Throw(v) => vec![*v],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invert_is_involution() {
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.invert().invert(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn invert_and_flip_match_paper() {
        // Paper: inv(<) = ≥, flip(<) = >.
        assert_eq!(CmpOp::Lt.invert(), CmpOp::Ge);
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
    }

    #[test]
    fn eval_agrees_with_invert() {
        let vals = [-3, 0, 1, 7];
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for &l in &vals {
                for &r in &vals {
                    assert_eq!(op.eval(l, r), !op.invert().eval(l, r));
                    assert_eq!(op.eval(l, r), op.flip().eval(r, l));
                }
            }
        }
    }

    #[test]
    fn cond_invert() {
        let v = VarId::from_index(0);
        let w = VarId::from_index(1);
        let c = Cond::Cmp {
            op: CmpOp::Lt,
            lhs: v,
            rhs: w,
        };
        assert_eq!(
            c.invert(),
            Cond::Cmp {
                op: CmpOp::Ge,
                lhs: v,
                rhs: w
            }
        );
        let t = Cond::InstanceOf {
            var: v,
            ty: TypeId::from_index(1),
            negated: false,
        };
        match t.invert() {
            Cond::InstanceOf { negated, .. } => assert!(negated),
            _ => panic!("expected instanceof"),
        }
    }

    #[test]
    fn stmt_defs_and_uses() {
        let v = |i| VarId::from_index(i);
        let s = Stmt::Invoke {
            def: v(0),
            receiver: v(1),
            selector: SelectorId::from_index(0),
            args: vec![v(2), v(3)],
        };
        assert_eq!(s.def(), Some(v(0)));
        assert_eq!(s.uses(), vec![v(1), v(2), v(3)]);

        let st = Stmt::Store {
            object: v(1),
            field: FieldId::from_index(0),
            value: v(2),
        };
        assert_eq!(st.def(), None);
        assert_eq!(st.uses(), vec![v(1), v(2)]);
    }

    #[test]
    fn block_end_successors() {
        let b = BlockEnd::If {
            cond: Cond::InstanceOf {
                var: VarId::from_index(0),
                ty: TypeId::from_index(1),
                negated: false,
            },
            then_block: BlockId::from_index(1),
            else_block: BlockId::from_index(2),
        };
        assert_eq!(
            b.successors(),
            vec![BlockId::from_index(1), BlockId::from_index(2)]
        );
        assert!(BlockEnd::Return(None).successors().is_empty());
    }
}
