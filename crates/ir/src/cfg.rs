//! Control-flow-graph analyses: dominator trees (Cooper–Harvey–Kennedy) and
//! natural-loop detection.
//!
//! The validator uses a dataflow formulation of definite assignment; the
//! dominator tree here provides the classical formulation used by tests as a
//! cross-check, and the loop information feeds program statistics and the
//! workload generator's sanity checks.

use crate::body::Body;
use crate::ids::BlockId;

/// The dominator tree of a method body.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// Immediate dominator per block; `idom[entry] == entry`; unreachable
    /// blocks have `None`.
    idom: Vec<Option<BlockId>>,
    /// Reverse-postorder index per block (used for intersection).
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Computes the dominator tree with the Cooper–Harvey–Kennedy iterative
    /// algorithm.
    pub fn compute(body: &Body) -> Self {
        let n = body.block_count();
        let rpo = body.reverse_postorder();
        let preds = body.predecessors();

        // Restrict to reachable blocks: those before the appended
        // unreachable tail. Compute reachability from the entry.
        let mut reachable = vec![false; n];
        reachable[BlockId::ENTRY.index()] = true;
        for &b in &rpo {
            if reachable[b.index()] {
                for s in body.block(b).end.successors() {
                    reachable[s.index()] = true;
                }
            }
        }

        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[BlockId::ENTRY.index()] = Some(BlockId::ENTRY);

        let intersect = |idom: &[Option<BlockId>], rpo_index: &[usize], a: BlockId, b: BlockId| {
            let (mut x, mut y) = (a, b);
            while x != y {
                while rpo_index[x.index()] > rpo_index[y.index()] {
                    x = idom[x.index()].expect("processed block has an idom");
                }
                while rpo_index[y.index()] > rpo_index[x.index()] {
                    y = idom[y.index()].expect("processed block has an idom");
                }
            }
            x
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == BlockId::ENTRY || !reachable[b.index()] {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.index()] {
                    if idom[p.index()].is_none() {
                        continue; // predecessor not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        Dominators { idom, rpo_index }
    }

    /// The immediate dominator of `b` (`None` for the entry and for
    /// unreachable blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if b != BlockId::ENTRY => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexive). Unreachable blocks dominate
    /// nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() || self.idom[a.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == BlockId::ENTRY {
                return false;
            }
            cur = self.idom[cur.index()].expect("reachable chain");
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }

    /// The reverse-postorder index of a block.
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index[b.index()]
    }
}

/// One natural loop.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (always a merge block in the base language).
    pub header: BlockId,
    /// The source of the back edge.
    pub back_edge_from: BlockId,
    /// All blocks in the loop body (header included), ascending.
    pub blocks: Vec<BlockId>,
}

/// Finds all natural loops: for every edge `t → h` where `h` dominates `t`,
/// the loop is `h` plus every block that reaches `t` without passing
/// through `h`.
pub fn natural_loops(body: &Body, doms: &Dominators) -> Vec<NaturalLoop> {
    let preds = body.predecessors();
    let mut loops = Vec::new();
    for (t, block) in body.iter_blocks() {
        if !doms.is_reachable(t) {
            continue;
        }
        for h in block.end.successors() {
            if doms.dominates(h, t) {
                // Back edge t -> h: flood predecessors from t, stopping at h.
                let mut in_loop = vec![false; body.block_count()];
                in_loop[h.index()] = true;
                let mut stack = vec![t];
                while let Some(b) = stack.pop() {
                    if in_loop[b.index()] {
                        continue;
                    }
                    in_loop[b.index()] = true;
                    for &p in &preds[b.index()] {
                        stack.push(p);
                    }
                }
                let blocks: Vec<BlockId> = (0..body.block_count())
                    .filter(|i| in_loop[*i])
                    .map(BlockId::from_index)
                    .collect();
                loops.push(NaturalLoop {
                    header: h,
                    back_edge_from: t,
                    blocks,
                });
            }
        }
    }
    loops
}

/// Summary statistics of one body, used by reports and the generator's
/// self-checks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BodyStats {
    /// Basic blocks.
    pub blocks: usize,
    /// Statements plus terminators.
    pub instructions: usize,
    /// Natural loops.
    pub loops: usize,
    /// `if` terminators.
    pub branches: usize,
    /// Invoke statements (virtual + static).
    pub calls: usize,
    /// Field accesses (loads + stores).
    pub field_accesses: usize,
    /// `new` expressions.
    pub allocations: usize,
}

/// Computes [`BodyStats`].
pub fn body_stats(body: &Body) -> BodyStats {
    use crate::instr::{BlockEnd, Expr, Stmt};
    let doms = Dominators::compute(body);
    let mut s = BodyStats {
        blocks: body.block_count(),
        instructions: body.instruction_count(),
        loops: natural_loops(body, &doms).len(),
        ..BodyStats::default()
    };
    for (_, block) in body.iter_blocks() {
        if matches!(block.end, BlockEnd::If { .. }) {
            s.branches += 1;
        }
        for stmt in &block.stmts {
            match stmt {
                Stmt::Invoke { .. } | Stmt::InvokeStatic { .. } => s.calls += 1,
                Stmt::Load { .. } | Stmt::Store { .. } => s.field_accesses += 1,
                Stmt::Assign { expr: Expr::New(_), .. } => s.allocations += 1,
                _ => {}
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BodyBuilder, BranchExit};
    use crate::instr::{CmpOp, Cond};

    fn b(i: usize) -> BlockId {
        BlockId::from_index(i)
    }

    fn diamond() -> Body {
        let mut bb = BodyBuilder::new(&["x"]);
        let x = bb.param(0);
        let zero = bb.const_(0);
        let j = bb.if_else(
            Cond::Cmp { op: CmpOp::Eq, lhs: x, rhs: zero },
            |bb| BranchExit::value(bb.const_(1)),
            |bb| BranchExit::value(bb.const_(2)),
        );
        bb.ret(Some(j[0]));
        bb.finish()
    }

    fn looped() -> Body {
        let mut bb = BodyBuilder::new(&[]);
        let zero = bb.const_(0);
        let ten = bb.const_(10);
        let after = bb.while_loop(
            &[zero],
            |_, p| Cond::Cmp { op: CmpOp::Lt, lhs: p[0], rhs: ten },
            |bb, _| BranchExit::Values(vec![bb.any_prim()]),
        );
        bb.ret(Some(after[0]));
        bb.finish()
    }

    #[test]
    fn diamond_dominators() {
        let body = diamond();
        let doms = Dominators::compute(&body);
        // entry (b0) dominates everything; branches dominate only themselves;
        // the merge (b3) is dominated by the entry, not by either branch.
        assert_eq!(doms.idom(b(1)), Some(b(0)));
        assert_eq!(doms.idom(b(2)), Some(b(0)));
        assert_eq!(doms.idom(b(3)), Some(b(0)));
        assert!(doms.dominates(b(0), b(3)));
        assert!(!doms.dominates(b(1), b(3)));
        assert!(doms.dominates(b(1), b(1)));
        assert_eq!(doms.idom(b(0)), None, "entry has no idom");
    }

    #[test]
    fn loop_header_dominates_body_and_exit() {
        let body = looped();
        let doms = Dominators::compute(&body);
        // b0 entry, b1 header, b2 body, b3 exit.
        assert!(doms.dominates(b(1), b(2)));
        assert!(doms.dominates(b(1), b(3)));
        assert_eq!(doms.idom(b(2)), Some(b(1)));
    }

    #[test]
    fn natural_loop_detection() {
        let body = looped();
        let doms = Dominators::compute(&body);
        let loops = natural_loops(&body, &doms);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, b(1));
        assert_eq!(loops[0].back_edge_from, b(2));
        assert_eq!(loops[0].blocks, vec![b(1), b(2)]);
    }

    #[test]
    fn diamond_has_no_loops() {
        let body = diamond();
        let doms = Dominators::compute(&body);
        assert!(natural_loops(&body, &doms).is_empty());
    }

    #[test]
    fn unreachable_blocks_have_no_dominators() {
        let mut body = diamond();
        body.blocks.push(crate::body::Block {
            begin: crate::body::BlockBegin::Label,
            stmts: vec![],
            end: crate::instr::BlockEnd::Return(None),
        });
        let doms = Dominators::compute(&body);
        let dead = b(body.blocks.len() - 1);
        assert!(!doms.is_reachable(dead));
        assert!(!doms.dominates(b(0), dead));
    }

    #[test]
    fn defs_dominate_uses_in_valid_bodies() {
        // Cross-check the validator's dataflow check with the dominator
        // tree: for every use, the defining block dominates the using block
        // (or they are the same block with the def first — which block-local
        // ordering already guarantees for builder output).
        let body = looped();
        let doms = Dominators::compute(&body);
        let mut def_block = std::collections::HashMap::new();
        for (id, block) in body.iter_blocks() {
            match &block.begin {
                crate::body::BlockBegin::Start { params } => {
                    for p in params {
                        def_block.insert(*p, id);
                    }
                }
                crate::body::BlockBegin::Merge { phis, .. } => {
                    for phi in phis {
                        def_block.insert(phi.def, id);
                    }
                }
                crate::body::BlockBegin::Label => {}
            }
            for stmt in &block.stmts {
                if let Some(d) = stmt.def() {
                    def_block.insert(d, id);
                }
            }
        }
        for (id, block) in body.iter_blocks() {
            for stmt in &block.stmts {
                for u in stmt.uses() {
                    assert!(doms.dominates(def_block[&u], id));
                }
            }
            for u in block.end.uses() {
                assert!(doms.dominates(def_block[&u], id));
            }
        }
    }

    #[test]
    fn body_stats_counts_shapes() {
        let stats = body_stats(&looped());
        assert_eq!(stats.blocks, 4);
        assert_eq!(stats.loops, 1);
        assert_eq!(stats.branches, 1);
        assert_eq!(stats.calls, 0);

        let stats = body_stats(&diamond());
        assert_eq!(stats.loops, 0);
        assert_eq!(stats.branches, 1);
    }
}
