//! Pretty-printing of programs and bodies in the base-language syntax of
//! Appendix B.1 (Figure 10). Useful for debugging, golden tests, and the
//! examples.

use crate::body::{BlockBegin, Body};
use crate::ids::{MethodId, TypeId, VarId};
use crate::instr::{BlockEnd, Cond, Expr, Stmt};
use crate::program::Program;
use std::fmt::Write as _;

/// Renders the whole program.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for t in program.iter_types() {
        if t.is_null() {
            continue;
        }
        out.push_str(&print_type(program, t));
        out.push('\n');
    }
    out
}

/// Renders one type declaration with its fields and methods.
pub fn print_type(program: &Program, t: TypeId) -> String {
    let td = program.type_data(t);
    let mut out = String::new();
    let kw = match td.kind {
        crate::types::TypeKind::Class => "class",
        crate::types::TypeKind::AbstractClass => "abstract class",
        crate::types::TypeKind::Interface => "interface",
    };
    let _ = write!(out, "{kw} {}", td.name);
    if let Some(s) = td.superclass {
        let _ = write!(out, " extends {}", program.type_data(s).name);
    }
    if !td.interfaces.is_empty() {
        let names: Vec<_> = td
            .interfaces
            .iter()
            .map(|i| program.type_data(*i).name.as_str())
            .collect();
        let _ = write!(out, " implements {}", names.join(", "));
    }
    out.push_str(" {\n");
    for &f in td.declared_fields() {
        let fd = program.field(f);
        let stat = if fd.is_static { "static " } else { "" };
        let _ = writeln!(out, "  {stat}var {}: {};", fd.name, type_ref_name(program, fd.ty));
    }
    for &m in td.declared_methods() {
        out.push_str(&print_method(program, m));
    }
    out.push_str("}\n");
    out
}

fn type_ref_name(program: &Program, t: crate::types::TypeRef) -> String {
    match t {
        crate::types::TypeRef::Void => "void".to_string(),
        crate::types::TypeRef::Prim => "int".to_string(),
        crate::types::TypeRef::Object(id) => program.type_data(id).name.clone(),
    }
}

/// Renders one method declaration (header plus SSA body).
pub fn print_method(program: &Program, m: MethodId) -> String {
    let md = program.method(m);
    let mut out = String::new();
    let stat = if md.is_static { "static " } else { "" };
    let abst = if md.is_abstract { "abstract " } else { "" };
    let params: Vec<String> = md
        .sig
        .params
        .iter()
        .map(|p| type_ref_name(program, *p))
        .collect();
    let _ = write!(
        out,
        "  {stat}{abst}method {}({}): {}",
        md.name,
        params.join(", "),
        type_ref_name(program, md.sig.ret)
    );
    match &md.body {
        None => out.push_str(";\n"),
        Some(body) => {
            out.push_str(" {\n");
            out.push_str(&indent(&print_body(program, body), 4));
            out.push_str("  }\n");
        }
    }
    out
}

fn indent(s: &str, n: usize) -> String {
    let pad = " ".repeat(n);
    s.lines()
        .map(|l| format!("{pad}{l}\n"))
        .collect::<Vec<_>>()
        .join("")
}

/// Renders an SSA body block by block.
pub fn print_body(program: &Program, body: &Body) -> String {
    let mut out = String::new();
    for (id, block) in body.iter_blocks() {
        match &block.begin {
            BlockBegin::Start { params } => {
                let ps: Vec<String> = params.iter().map(|p| var_name(body, *p)).collect();
                let _ = writeln!(out, "{id}: start({})", ps.join(", "));
            }
            BlockBegin::Merge { phis, preds } => {
                let ps: Vec<String> = phis
                    .iter()
                    .map(|phi| {
                        let args: Vec<String> =
                            phi.args.iter().map(|a| var_name(body, *a)).collect();
                        format!("{} <- phi({})", var_name(body, phi.def), args.join(", "))
                    })
                    .collect();
                let preds_s: Vec<String> = preds.iter().map(|p| p.to_string()).collect();
                let _ = writeln!(out, "{id}: merge [{}] from [{}]", ps.join(", "), preds_s.join(", "));
            }
            BlockBegin::Label => {
                let _ = writeln!(out, "{id}: label");
            }
        }
        for stmt in &block.stmts {
            let _ = writeln!(out, "  {}", print_stmt(program, body, stmt));
        }
        let _ = writeln!(out, "  {}", print_end(program, body, &block.end));
    }
    out
}

fn var_name(body: &Body, v: VarId) -> String {
    let name = &body.vars[v.index()].name;
    if name.is_empty() {
        v.to_string()
    } else {
        format!("{name}{}", v.index())
    }
}

fn print_stmt(program: &Program, body: &Body, stmt: &Stmt) -> String {
    match stmt {
        Stmt::Assign { def, expr } => {
            let rhs = match expr {
                Expr::Const(n) => n.to_string(),
                Expr::AnyPrim => "any".to_string(),
                Expr::New(t) => format!("new {}", program.type_data(*t).name),
                Expr::Null => "null".to_string(),
            };
            format!("{} <- {rhs}", var_name(body, *def))
        }
        Stmt::Load { def, object, field } => format!(
            "{} <- {}.{}",
            var_name(body, *def),
            var_name(body, *object),
            program.field(*field).name
        ),
        Stmt::Store { object, field, value } => format!(
            "{}.{} <- {}",
            var_name(body, *object),
            program.field(*field).name,
            var_name(body, *value)
        ),
        Stmt::Invoke { def, receiver, selector, args } => {
            let a: Vec<String> = args.iter().map(|v| var_name(body, *v)).collect();
            format!(
                "{} <- {}.{}({})",
                var_name(body, *def),
                var_name(body, *receiver),
                program.selector(*selector).name,
                a.join(", ")
            )
        }
        Stmt::InvokeStatic { def, target, args } => {
            let a: Vec<String> = args.iter().map(|v| var_name(body, *v)).collect();
            format!(
                "{} <- {}({})",
                var_name(body, *def),
                program.method_label(*target),
                a.join(", ")
            )
        }
        Stmt::Catch { def, ty } => format!(
            "{} <- catch {}",
            var_name(body, *def),
            program.type_data(*ty).name
        ),
    }
}

fn print_cond(program: &Program, body: &Body, cond: &Cond) -> String {
    match cond {
        Cond::Cmp { op, lhs, rhs } => format!(
            "{} {} {}",
            var_name(body, *lhs),
            op.symbol(),
            var_name(body, *rhs)
        ),
        Cond::InstanceOf { var, ty, negated } => {
            let bang = if *negated { "!" } else { "" };
            format!(
                "{bang}({} instanceof {})",
                var_name(body, *var),
                program.type_data(*ty).name
            )
        }
    }
}

fn print_end(program: &Program, body: &Body, end: &BlockEnd) -> String {
    match end {
        BlockEnd::Return(None) => "return".to_string(),
        BlockEnd::Return(Some(v)) => format!("return {}", var_name(body, *v)),
        BlockEnd::Jump(t) => format!("jump {t}"),
        BlockEnd::If { cond, then_block, else_block } => format!(
            "if {} then {then_block} else {else_block}",
            print_cond(program, body, cond)
        ),
        BlockEnd::Throw(v) => format!("throw {}", var_name(body, *v)),
    }
}

/// Convenience: render the body of method `m`.
///
/// # Panics
///
/// Panics if `m` is abstract.
pub fn print_method_body(program: &Program, m: MethodId) -> String {
    print_body(
        program,
        program.method(m).body.as_ref().expect("abstract method has no body"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BranchExit, ProgramBuilder};
    use crate::instr::CmpOp;
    use crate::types::TypeRef;

    #[test]
    fn prints_a_small_program() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let b = pb.class("B").extends(a).build();
        pb.add_field(a, "x", TypeRef::Prim);
        let m = pb
            .method(a, "decide")
            .params(vec![TypeRef::Prim])
            .returns(TypeRef::Object(a))
            .build();
        pb.build_body(m, |bb| {
            let p = bb.param(1);
            let zero = bb.const_(0);
            let j = bb.if_else(
                crate::instr::Cond::Cmp { op: CmpOp::Eq, lhs: p, rhs: zero },
                |bb| BranchExit::value(bb.new_obj(b)),
                |bb| BranchExit::value(bb.null_()),
            );
            bb.ret(Some(j[0]));
        });
        let p = pb.finish().unwrap();
        let text = print_program(&p);
        assert!(text.contains("class A"), "{text}");
        assert!(text.contains("class B extends A"), "{text}");
        assert!(text.contains("var x: int;"), "{text}");
        assert!(text.contains("new B"), "{text}");
        assert!(text.contains("phi("), "{text}");
        assert!(text.contains("if "), "{text}");
    }

    #[test]
    fn prints_instanceof_and_throw() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let exc = pb.add_class("Error");
        let m = pb.method(a, "check").params(vec![TypeRef::Object(a)]).returns(TypeRef::Void).build();
        pb.build_body(m, |bb| {
            let x = bb.param(1);
            bb.if_then(
                crate::instr::Cond::InstanceOf { var: x, ty: a, negated: true },
                |bb| {
                    let e = bb.new_obj(exc);
                    bb.throw(e);
                    BranchExit::Terminated
                },
            );
            bb.ret(None);
        });
        let p = pb.finish().unwrap();
        let text = print_method_body(&p, p.method_by_name(a, "check").unwrap());
        assert!(text.contains("instanceof A"), "{text}");
        assert!(text.contains("throw"), "{text}");
    }
}
