//! A compact binary serialization of programs — the "class-file" format of
//! the base language.
//!
//! GraalVM Native Image consumes Java class files; this module provides the
//! equivalent distribution format for the reproduction: benchmark corpora
//! can be encoded once and shipped/loaded without re-running the generator
//! or the frontend. The format (`SFBC`, *SkipFlow bytecode*) is:
//!
//! ```text
//! magic "SFBC"  u32 version
//! string table  (shared by all names)
//! type table    (kind, superclass, interfaces)
//! selector table
//! field table
//! method table  (flags, signature, optional body)
//! ```
//!
//! Decoding rebuilds the program through [`ProgramBuilder`], so every
//! decoded program passes the same validation as freshly built ones, and
//! ids round-trip exactly (tables are written in id order).

use crate::body::{Block, BlockBegin, Body, Phi, VarData};
use crate::builder::ProgramBuilder;
use crate::ids::{BlockId, FieldId, MethodId, SelectorId, TypeId, VarId};
use crate::instr::{BlockEnd, CmpOp, Cond, Expr, Stmt};
use crate::program::Program;
use crate::types::{TypeKind, TypeRef};
use std::collections::HashMap;
use std::fmt;

const MAGIC: &[u8; 4] = b"SFBC";
const VERSION: u32 = 1;

/// A decoding failure.
#[derive(Debug)]
pub enum DecodeError {
    /// Wrong magic bytes or version.
    BadHeader,
    /// Input ended early or an index was out of range.
    Truncated(&'static str),
    /// An enum tag byte had no meaning.
    BadTag(&'static str, u8),
    /// A string was not valid UTF-8.
    BadString,
    /// An id referenced an entity that does not exist, or tables are
    /// structurally inconsistent.
    Malformed(&'static str),
    /// The decoded program failed IR validation.
    Invalid(crate::builder::ValidationErrors),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadHeader => write!(f, "bad magic or unsupported version"),
            DecodeError::Truncated(what) => write!(f, "truncated input while reading {what}"),
            DecodeError::BadTag(what, tag) => write!(f, "invalid tag {tag} for {what}"),
            DecodeError::BadString => write!(f, "invalid UTF-8 in string table"),
            DecodeError::Malformed(what) => write!(f, "malformed reference: {what}"),
            DecodeError::Invalid(e) => write!(f, "decoded program failed validation: {e}"),
        }
    }
}

impl std::error::Error for DecodeError {}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
    strings: Vec<String>,
    string_index: HashMap<String, u32>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str_ref(&mut self, s: &str) {
        let idx = match self.string_index.get(s) {
            Some(&i) => i,
            None => {
                let i = self.strings.len() as u32;
                self.strings.push(s.to_string());
                self.string_index.insert(s.to_string(), i);
                i
            }
        };
        self.u32(idx);
    }
    fn opt_u32(&mut self, v: Option<u32>) {
        self.u32(v.unwrap_or(u32::MAX));
    }
    fn type_ref(&mut self, t: TypeRef) {
        match t {
            TypeRef::Void => self.u8(0),
            TypeRef::Prim => self.u8(1),
            TypeRef::Object(id) => {
                self.u8(2);
                self.u32(id.as_u32());
            }
        }
    }
}

/// Serializes a program to the `SFBC` byte format.
///
/// # Examples
///
/// ```
/// use skipflow_ir::encode::{decode, encode};
/// use skipflow_ir::frontend::compile;
///
/// let program = compile("class Main { static method main(): void { return; } }")?;
/// let bytes = encode(&program);
/// assert!(bytes.starts_with(b"SFBC"));
/// let back = decode(&bytes).expect("round-trips");
/// assert_eq!(program.method_count(), back.method_count());
/// # Ok::<(), skipflow_ir::frontend::FrontendError>(())
/// ```
pub fn encode(program: &Program) -> Vec<u8> {
    let mut w = Writer {
        buf: Vec::new(),
        strings: Vec::new(),
        string_index: HashMap::new(),
    };
    // Body payload is written after the header tables, but string refs are
    // interned while writing, so assemble payload first, then splice the
    // string table in front.
    let mut payload = Writer {
        buf: Vec::new(),
        strings: std::mem::take(&mut w.strings),
        string_index: std::mem::take(&mut w.string_index),
    };
    let p = &mut payload;

    // Types (skipping the reserved null pseudo-type).
    p.u32(program.type_count() as u32 - 1);
    for t in program.iter_types().skip(1) {
        let td = program.type_data(t);
        p.str_ref(&td.name);
        p.u8(match td.kind {
            TypeKind::Class => 0,
            TypeKind::AbstractClass => 1,
            TypeKind::Interface => 2,
        });
        p.opt_u32(td.superclass.map(|s| s.as_u32()));
        p.u32(td.interfaces.len() as u32);
        for i in &td.interfaces {
            p.u32(i.as_u32());
        }
    }

    // Selectors.
    p.u32(program.selector_count() as u32);
    for i in 0..program.selector_count() {
        let s = program.selector(SelectorId::from_index(i));
        p.str_ref(&s.name);
        p.u32(s.arity as u32);
    }

    // Fields.
    p.u32(program.field_count() as u32);
    for f in program.iter_fields() {
        let fd = program.field(f);
        p.str_ref(&fd.name);
        p.u32(fd.owner.as_u32());
        p.type_ref(fd.ty);
        p.u8(fd.is_static as u8);
    }

    // Methods.
    p.u32(program.method_count() as u32);
    for m in program.iter_methods() {
        let md = program.method(m);
        p.str_ref(&md.name);
        p.u32(md.owner.as_u32());
        p.u8(md.is_static as u8 | ((md.is_abstract as u8) << 1));
        p.u32(md.sig.params.len() as u32);
        for param in &md.sig.params {
            p.type_ref(*param);
        }
        p.type_ref(md.sig.ret);
        match &md.body {
            None => p.u8(0),
            Some(body) => {
                p.u8(1);
                encode_body(p, body);
            }
        }
    }

    // Header + string table + payload.
    w.buf.extend_from_slice(MAGIC);
    w.u32(VERSION);
    w.u32(payload.strings.len() as u32);
    for s in &payload.strings {
        w.u32(s.len() as u32);
        w.buf.extend_from_slice(s.as_bytes());
    }
    w.buf.extend_from_slice(&payload.buf);
    w.buf
}

fn encode_body(p: &mut Writer, body: &Body) {
    p.u32(body.vars.len() as u32);
    for v in &body.vars {
        p.str_ref(&v.name);
    }
    p.u32(body.blocks.len() as u32);
    for block in &body.blocks {
        match &block.begin {
            BlockBegin::Start { params } => {
                p.u8(0);
                p.u32(params.len() as u32);
                for v in params {
                    p.u32(v.as_u32());
                }
            }
            BlockBegin::Merge { phis, preds } => {
                p.u8(1);
                p.u32(preds.len() as u32);
                for b in preds {
                    p.u32(b.as_u32());
                }
                p.u32(phis.len() as u32);
                for phi in phis {
                    p.u32(phi.def.as_u32());
                    for a in &phi.args {
                        p.u32(a.as_u32());
                    }
                }
            }
            BlockBegin::Label => p.u8(2),
        }
        p.u32(block.stmts.len() as u32);
        for stmt in &block.stmts {
            encode_stmt(p, stmt);
        }
        encode_end(p, &block.end);
    }
}

fn encode_stmt(p: &mut Writer, stmt: &Stmt) {
    match stmt {
        Stmt::Assign { def, expr } => {
            p.u8(0);
            p.u32(def.as_u32());
            match expr {
                Expr::Const(n) => {
                    p.u8(0);
                    p.i64(*n);
                }
                Expr::AnyPrim => p.u8(1),
                Expr::New(t) => {
                    p.u8(2);
                    p.u32(t.as_u32());
                }
                Expr::Null => p.u8(3),
            }
        }
        Stmt::Load { def, object, field } => {
            p.u8(1);
            p.u32(def.as_u32());
            p.u32(object.as_u32());
            p.u32(field.as_u32());
        }
        Stmt::Store { object, field, value } => {
            p.u8(2);
            p.u32(object.as_u32());
            p.u32(field.as_u32());
            p.u32(value.as_u32());
        }
        Stmt::Invoke { def, receiver, selector, args } => {
            p.u8(3);
            p.u32(def.as_u32());
            p.u32(receiver.as_u32());
            p.u32(selector.as_u32());
            p.u32(args.len() as u32);
            for a in args {
                p.u32(a.as_u32());
            }
        }
        Stmt::InvokeStatic { def, target, args } => {
            p.u8(4);
            p.u32(def.as_u32());
            p.u32(target.as_u32());
            p.u32(args.len() as u32);
            for a in args {
                p.u32(a.as_u32());
            }
        }
        Stmt::Catch { def, ty } => {
            p.u8(5);
            p.u32(def.as_u32());
            p.u32(ty.as_u32());
        }
    }
}

fn encode_end(p: &mut Writer, end: &BlockEnd) {
    match end {
        BlockEnd::Return(v) => {
            p.u8(0);
            p.opt_u32(v.map(|v| v.as_u32()));
        }
        BlockEnd::Jump(t) => {
            p.u8(1);
            p.u32(t.as_u32());
        }
        BlockEnd::If { cond, then_block, else_block } => {
            p.u8(2);
            match cond {
                Cond::Cmp { op, lhs, rhs } => {
                    p.u8(0);
                    p.u8(match op {
                        CmpOp::Eq => 0,
                        CmpOp::Ne => 1,
                        CmpOp::Lt => 2,
                        CmpOp::Le => 3,
                        CmpOp::Gt => 4,
                        CmpOp::Ge => 5,
                    });
                    p.u32(lhs.as_u32());
                    p.u32(rhs.as_u32());
                }
                Cond::InstanceOf { var, ty, negated } => {
                    p.u8(1);
                    p.u32(var.as_u32());
                    p.u32(ty.as_u32());
                    p.u8(*negated as u8);
                }
            }
            p.u32(then_block.as_u32());
            p.u32(else_block.as_u32());
        }
        BlockEnd::Throw(v) => {
            p.u8(3);
            p.u32(v.as_u32());
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    strings: Vec<String>,
}

impl Reader<'_> {
    fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        let v = *self.buf.get(self.pos).ok_or(DecodeError::Truncated(what))?;
        self.pos += 1;
        Ok(v)
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let bytes = self
            .buf
            .get(self.pos..self.pos + 4)
            .ok_or(DecodeError::Truncated(what))?;
        self.pos += 4;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }
    fn i64(&mut self, what: &'static str) -> Result<i64, DecodeError> {
        let bytes = self
            .buf
            .get(self.pos..self.pos + 8)
            .ok_or(DecodeError::Truncated(what))?;
        self.pos += 8;
        Ok(i64::from_le_bytes(bytes.try_into().unwrap()))
    }
    fn str_ref(&mut self, what: &'static str) -> Result<String, DecodeError> {
        let idx = self.u32(what)? as usize;
        self.strings
            .get(idx)
            .cloned()
            .ok_or(DecodeError::Truncated(what))
    }
    fn opt_u32(&mut self, what: &'static str) -> Result<Option<u32>, DecodeError> {
        let v = self.u32(what)?;
        Ok(if v == u32::MAX { None } else { Some(v) })
    }
    fn type_ref(&mut self) -> Result<TypeRef, DecodeError> {
        match self.u8("type-ref tag")? {
            0 => Ok(TypeRef::Void),
            1 => Ok(TypeRef::Prim),
            2 => Ok(TypeRef::Object(TypeId::from_index(
                self.u32("type-ref id")? as usize,
            ))),
            t => Err(DecodeError::BadTag("type-ref", t)),
        }
    }
    fn var(&mut self, what: &'static str) -> Result<VarId, DecodeError> {
        Ok(VarId::from_index(self.u32(what)? as usize))
    }
    fn block(&mut self, what: &'static str) -> Result<BlockId, DecodeError> {
        Ok(BlockId::from_index(self.u32(what)? as usize))
    }
}

/// Deserializes a program from the `SFBC` byte format, re-running full
/// validation.
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input or if the decoded program
/// fails IR validation.
pub fn decode(bytes: &[u8]) -> Result<Program, DecodeError> {
    let mut r = Reader {
        buf: bytes,
        pos: 0,
        strings: Vec::new(),
    };
    if bytes.len() < 8 || &bytes[..4] != MAGIC {
        return Err(DecodeError::BadHeader);
    }
    r.pos = 4;
    if r.u32("version")? != VERSION {
        return Err(DecodeError::BadHeader);
    }
    let n_strings = r.u32("string count")? as usize;
    for _ in 0..n_strings {
        let len = r.u32("string length")? as usize;
        let bytes = r
            .buf
            .get(r.pos..r.pos + len)
            .ok_or(DecodeError::Truncated("string bytes"))?;
        r.pos += len;
        r.strings
            .push(String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadString)?);
    }

    let mut pb = ProgramBuilder::new();

    // Types. All indices are range-checked against the tables decoded so
    // far (or, for forward-referencing tables, the declared totals), so
    // corrupted inputs fail with an error rather than a panic deeper in the
    // builder.
    let n_types = r.u32("type count")? as usize;
    let total_types = n_types + 1; // + the reserved null pseudo-type
    let mut seen_names = std::collections::HashSet::new();
    for declared in 0..n_types {
        let name = r.str_ref("type name")?;
        if !seen_names.insert(name.clone()) {
            return Err(DecodeError::Malformed("duplicate type name"));
        }
        let kind = r.u8("type kind")?;
        let superclass = r.opt_u32("superclass")?;
        let n_ifaces = r.u32("interface count")? as usize;
        if n_ifaces > n_types {
            return Err(DecodeError::Malformed("interface list longer than type table"));
        }
        let mut ifaces = Vec::with_capacity(n_ifaces);
        for _ in 0..n_ifaces {
            let i = r.u32("interface id")? as usize;
            // Supertypes must precede subtypes: only earlier ids are legal.
            if i == 0 || i > declared {
                return Err(DecodeError::Malformed("interface id out of range"));
            }
            ifaces.push(TypeId::from_index(i));
        }
        match kind {
            2 => {
                pb.add_interface(&name, &ifaces);
            }
            k @ (0 | 1) => {
                let mut cb = pb.class(&name);
                if let Some(s) = superclass {
                    let s = s as usize;
                    if s == 0 || s > declared {
                        return Err(DecodeError::Malformed("superclass id out of range"));
                    }
                    cb = cb.extends(TypeId::from_index(s));
                }
                for i in ifaces {
                    cb = cb.implements_(i);
                }
                if k == 1 {
                    cb = cb.abstract_();
                }
                cb.build();
            }
            t => return Err(DecodeError::BadTag("type kind", t)),
        }
    }

    let check_type = |idx: u32| -> Result<TypeId, DecodeError> {
        if (idx as usize) < total_types {
            Ok(TypeId::from_index(idx as usize))
        } else {
            Err(DecodeError::Malformed("type id out of range"))
        }
    };
    let check_type_ref = |t: TypeRef| -> Result<TypeRef, DecodeError> {
        if let TypeRef::Object(id) = t {
            if id.index() >= total_types {
                return Err(DecodeError::Malformed("type id out of range"));
            }
        }
        Ok(t)
    };

    // Selectors (interned in id order so ids round-trip).
    let n_selectors = r.u32("selector count")? as usize;
    for _ in 0..n_selectors {
        let name = r.str_ref("selector name")?;
        let arity = r.u32("selector arity")? as usize;
        pb.selector(&name, arity);
    }

    // Fields.
    let n_fields = r.u32("field count")? as usize;
    for _ in 0..n_fields {
        let name = r.str_ref("field name")?;
        let owner = check_type(r.u32("field owner")?)?;
        let ty = check_type_ref(r.type_ref()?)?;
        let is_static = r.u8("field static flag")? != 0;
        if is_static {
            pb.add_static_field(owner, &name, ty);
        } else {
            pb.add_field(owner, &name, ty);
        }
    }

    // Methods: declarations first, bodies collected then attached (bodies
    // may reference later methods).
    let n_methods = r.u32("method count")? as usize;
    let limits = Limits {
        types: total_types,
        selectors: n_selectors,
        fields: n_fields,
        methods: n_methods,
    };
    let mut bodies: Vec<(MethodId, usize, Body)> = Vec::new();
    for _ in 0..n_methods {
        let name = r.str_ref("method name")?;
        let owner = check_type(r.u32("method owner")?)?;
        let flags = r.u8("method flags")?;
        let n_params = r.u32("param count")? as usize;
        if n_params > 1 << 16 {
            return Err(DecodeError::Malformed("absurd parameter count"));
        }
        let mut params = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            params.push(check_type_ref(r.type_ref()?)?);
        }
        let ret = check_type_ref(r.type_ref()?)?;
        let is_static = flags & 1 != 0;
        let is_abstract = flags & 2 != 0;
        let expected_body_params = n_params + usize::from(!is_static);
        let mut mb = pb.method(owner, &name).params(params).returns(ret);
        if is_static {
            mb = mb.static_();
        }
        if is_abstract {
            mb = mb.abstract_();
        }
        let mid = mb.build();
        if r.u8("body flag")? != 0 {
            if is_abstract {
                return Err(DecodeError::Malformed("abstract method with a body"));
            }
            bodies.push((mid, expected_body_params, decode_body(&mut r, &limits)?));
        }
    }
    for (m, expected_params, body) in bodies {
        // Pre-check what set_body asserts, so corruption errors cleanly.
        match body.blocks.first().map(|b| &b.begin) {
            Some(BlockBegin::Start { params }) if params.len() == expected_params => {}
            _ => return Err(DecodeError::Malformed("body entry/parameter mismatch")),
        }
        pb.set_body(m, body);
    }
    pb.finish().map_err(DecodeError::Invalid)
}

/// Table sizes used for id range checks while decoding bodies.
struct Limits {
    types: usize,
    selectors: usize,
    fields: usize,
    methods: usize,
}

/// Id range checks inside one body.
struct BodyLimits {
    vars: usize,
    blocks: usize,
}

impl BodyLimits {
    fn var(&self, v: VarId) -> Result<VarId, DecodeError> {
        if v.index() < self.vars {
            Ok(v)
        } else {
            Err(DecodeError::Malformed("variable id out of range"))
        }
    }
    fn block(&self, b: BlockId) -> Result<BlockId, DecodeError> {
        if b.index() < self.blocks {
            Ok(b)
        } else {
            Err(DecodeError::Malformed("block id out of range"))
        }
    }
}

impl Limits {
    fn ty(&self, idx: u32) -> Result<TypeId, DecodeError> {
        if (idx as usize) < self.types {
            Ok(TypeId::from_index(idx as usize))
        } else {
            Err(DecodeError::Malformed("type id out of range"))
        }
    }
    fn selector(&self, idx: u32) -> Result<SelectorId, DecodeError> {
        if (idx as usize) < self.selectors {
            Ok(SelectorId::from_index(idx as usize))
        } else {
            Err(DecodeError::Malformed("selector id out of range"))
        }
    }
    fn field(&self, idx: u32) -> Result<FieldId, DecodeError> {
        if (idx as usize) < self.fields {
            Ok(FieldId::from_index(idx as usize))
        } else {
            Err(DecodeError::Malformed("field id out of range"))
        }
    }
    fn method(&self, idx: u32) -> Result<MethodId, DecodeError> {
        if (idx as usize) < self.methods {
            Ok(MethodId::from_index(idx as usize))
        } else {
            Err(DecodeError::Malformed("method id out of range"))
        }
    }
}

fn decode_body(r: &mut Reader<'_>, limits: &Limits) -> Result<Body, DecodeError> {
    let n_vars = r.u32("var count")? as usize;
    if n_vars > r.buf.len() {
        return Err(DecodeError::Malformed("absurd variable count"));
    }
    let mut vars = Vec::with_capacity(n_vars);
    for _ in 0..n_vars {
        vars.push(VarData {
            name: r.str_ref("var name")?,
        });
    }
    let n_blocks = r.u32("block count")? as usize;
    if n_blocks > r.buf.len() {
        return Err(DecodeError::Malformed("absurd block count"));
    }
    let bl = BodyLimits {
        vars: n_vars,
        blocks: n_blocks,
    };
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let begin = match r.u8("block begin tag")? {
            0 => {
                let n = r.u32("param count")? as usize;
                if n > n_vars {
                    return Err(DecodeError::Malformed("param count exceeds variables"));
                }
                let mut params = Vec::with_capacity(n);
                for _ in 0..n {
                    params.push(bl.var(r.var("param var")?)?);
                }
                BlockBegin::Start { params }
            }
            1 => {
                let n_preds = r.u32("pred count")? as usize;
                if n_preds > n_blocks {
                    return Err(DecodeError::Malformed("pred count exceeds blocks"));
                }
                let mut preds = Vec::with_capacity(n_preds);
                for _ in 0..n_preds {
                    preds.push(bl.block(r.block("pred block")?)?);
                }
                let n_phis = r.u32("phi count")? as usize;
                if n_phis > n_vars {
                    return Err(DecodeError::Malformed("phi count exceeds variables"));
                }
                let mut phis = Vec::with_capacity(n_phis);
                for _ in 0..n_phis {
                    let def = bl.var(r.var("phi def")?)?;
                    let mut args = Vec::with_capacity(n_preds);
                    for _ in 0..n_preds {
                        args.push(bl.var(r.var("phi arg")?)?);
                    }
                    phis.push(Phi { def, args });
                }
                BlockBegin::Merge { phis, preds }
            }
            2 => BlockBegin::Label,
            t => return Err(DecodeError::BadTag("block begin", t)),
        };
        let n_stmts = r.u32("stmt count")? as usize;
        let mut stmts = Vec::with_capacity(n_stmts.min(r.buf.len()));
        for _ in 0..n_stmts {
            stmts.push(decode_stmt(r, limits, &bl)?);
        }
        let end = decode_end(r, limits, &bl)?;
        blocks.push(Block { begin, stmts, end });
    }
    Ok(Body { blocks, vars })
}

fn decode_stmt(
    r: &mut Reader<'_>,
    limits: &Limits,
    bl: &BodyLimits,
) -> Result<Stmt, DecodeError> {
    Ok(match r.u8("stmt tag")? {
        0 => {
            let def = bl.var(r.var("assign def")?)?;
            let expr = match r.u8("expr tag")? {
                0 => Expr::Const(r.i64("const value")?),
                1 => Expr::AnyPrim,
                2 => Expr::New(limits.ty(r.u32("new type")?)?),
                3 => Expr::Null,
                t => return Err(DecodeError::BadTag("expr", t)),
            };
            Stmt::Assign { def, expr }
        }
        1 => Stmt::Load {
            def: bl.var(r.var("load def")?)?,
            object: bl.var(r.var("load object")?)?,
            field: limits.field(r.u32("load field")?)?,
        },
        2 => Stmt::Store {
            object: bl.var(r.var("store object")?)?,
            field: limits.field(r.u32("store field")?)?,
            value: bl.var(r.var("store value")?)?,
        },
        3 => {
            let def = bl.var(r.var("invoke def")?)?;
            let receiver = bl.var(r.var("invoke receiver")?)?;
            let selector = limits.selector(r.u32("invoke selector")?)?;
            let n = r.u32("invoke arg count")? as usize;
            if n > bl.vars {
                return Err(DecodeError::Malformed("invoke arg count exceeds variables"));
            }
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(bl.var(r.var("invoke arg")?)?);
            }
            Stmt::Invoke { def, receiver, selector, args }
        }
        4 => {
            let def = bl.var(r.var("static invoke def")?)?;
            let target = limits.method(r.u32("static target")?)?;
            let n = r.u32("static arg count")? as usize;
            if n > bl.vars {
                return Err(DecodeError::Malformed("static arg count exceeds variables"));
            }
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(bl.var(r.var("static arg")?)?);
            }
            Stmt::InvokeStatic { def, target, args }
        }
        5 => Stmt::Catch {
            def: bl.var(r.var("catch def")?)?,
            ty: limits.ty(r.u32("catch type")?)?,
        },
        t => return Err(DecodeError::BadTag("stmt", t)),
    })
}

fn decode_end(
    r: &mut Reader<'_>,
    limits: &Limits,
    bl: &BodyLimits,
) -> Result<BlockEnd, DecodeError> {
    Ok(match r.u8("end tag")? {
        0 => BlockEnd::Return(match r.opt_u32("return var")? {
            Some(v) => Some(bl.var(VarId::from_index(v as usize))?),
            None => None,
        }),
        1 => BlockEnd::Jump(bl.block(r.block("jump target")?)?),
        2 => {
            let cond = match r.u8("cond tag")? {
                0 => {
                    let op = match r.u8("cmp op")? {
                        0 => CmpOp::Eq,
                        1 => CmpOp::Ne,
                        2 => CmpOp::Lt,
                        3 => CmpOp::Le,
                        4 => CmpOp::Gt,
                        5 => CmpOp::Ge,
                        t => return Err(DecodeError::BadTag("cmp op", t)),
                    };
                    Cond::Cmp {
                        op,
                        lhs: bl.var(r.var("cmp lhs")?)?,
                        rhs: bl.var(r.var("cmp rhs")?)?,
                    }
                }
                1 => Cond::InstanceOf {
                    var: bl.var(r.var("instanceof var")?)?,
                    ty: limits.ty(r.u32("instanceof type")?)?,
                    negated: r.u8("instanceof negated")? != 0,
                },
                t => return Err(DecodeError::BadTag("cond", t)),
            };
            BlockEnd::If {
                cond,
                then_block: bl.block(r.block("then block")?)?,
                else_block: bl.block(r.block("else block")?)?,
            }
        }
        3 => BlockEnd::Throw(bl.var(r.var("throw var")?)?),
        t => return Err(DecodeError::BadTag("end", t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::compile;
    use crate::printer::print_program;

    fn roundtrip(src: &str) {
        let original = compile(src).expect("compiles");
        let bytes = encode(&original);
        let decoded = decode(&bytes).expect("decodes");
        assert_eq!(original.type_count(), decoded.type_count());
        assert_eq!(original.method_count(), decoded.method_count());
        assert_eq!(original.field_count(), decoded.field_count());
        assert_eq!(original.selector_count(), decoded.selector_count());
        assert_eq!(
            print_program(&original),
            print_program(&decoded),
            "printed form must round-trip exactly"
        );
    }

    #[test]
    fn roundtrips_the_kitchen_sink() {
        roundtrip(
            "interface Pet { method speak(): int; }
             abstract class Animal implements Pet { }
             class Dog extends Animal {
               var friend: Animal;
               static var count: int;
               method speak(): int {
                 var f = this.friend;
                 if (f != null) { return f.speak(); }
                 return 1;
               }
             }
             class Err { }
             class Main {
               static method main(): int {
                 var d = new Dog();
                 d.friend = d;
                 Dog.count = 3;
                 var i = 0;
                 while (i < Dog.count) { i = any(); }
                 if (d instanceof Pet) { return d.speak(); }
                 throw new Err();
               }
               static method handler(): Err {
                 var e = catch (Err);
                 return e;
               }
             }",
        );
    }

    #[test]
    fn roundtrips_minimal_program() {
        roundtrip("class Main { static method main(): void { return; } }");
    }

    #[test]
    fn decoded_programs_behave_identically() {
        let src = "
            class Main {
              static method fib(): int {
                var a = 0;
                var b = 1;
                var i = 0;
                while (i < 10) {
                  var t = b;
                  b = any();
                  a = t;
                  i = any();
                }
                return a;
              }
              static method main(): int { return Main.fib(); }
            }";
        let original = compile(src).unwrap();
        let decoded = decode(&encode(&original)).unwrap();
        let main_o = original
            .method_by_name(original.type_by_name("Main").unwrap(), "main")
            .unwrap();
        let main_d = decoded
            .method_by_name(decoded.type_by_name("Main").unwrap(), "main")
            .unwrap();
        let cfg = crate::interp::InterpConfig { seed: 3, ..Default::default() };
        let a = crate::interp::run(&original, main_o, &[], &cfg);
        let b = crate::interp::run(&decoded, main_d, &[], &cfg);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(matches!(decode(b"JUNK\0\0\0\0"), Err(DecodeError::BadHeader)));
        assert!(matches!(decode(b"SF"), Err(DecodeError::BadHeader)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = encode(&compile("class A { static method m(): void { return; } }").unwrap());
        bytes[4] = 99;
        assert!(matches!(decode(&bytes), Err(DecodeError::BadHeader)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = encode(
            &compile(
                "class Main { static method main(): int { var x = 1; return x; } }",
            )
            .unwrap(),
        );
        // Chopping the stream at any point must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn rejects_corrupted_tags() {
        let bytes = encode(
            &compile("class Main { static method main(): void { return; } }").unwrap(),
        );
        // Flip every byte one at a time; decoding must never panic (it may
        // still succeed when the byte is not load-bearing).
        for i in 0..bytes.len() {
            let mut m = bytes.clone();
            m[i] ^= 0xFF;
            let _ = decode(&m);
        }
    }
}
