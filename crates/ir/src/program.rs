//! The whole-program container: types, methods, fields, selectors, and the
//! frozen hierarchy caches (subtype masks and virtual-dispatch tables).
//!
//! SkipFlow is a closed-world analysis (it ships inside an ahead-of-time
//! compiler), so the program is immutable once built: [`Program`] values are
//! only produced by [`crate::builder::ProgramBuilder::finish`], which
//! validates the IR and precomputes the caches.

use crate::bitset::BitSet;
use crate::ids::{FieldId, MethodId, SelectorId, TypeId};
use crate::types::{FieldData, MethodData, SelectorData, TypeData};
use std::collections::HashMap;

/// An immutable, validated whole program.
#[derive(Clone, Debug)]
pub struct Program {
    pub(crate) types: Vec<TypeData>,
    pub(crate) methods: Vec<MethodData>,
    pub(crate) fields: Vec<FieldData>,
    pub(crate) selectors: Vec<SelectorData>,
    pub(crate) type_by_name: HashMap<String, TypeId>,
    /// For each type `t`: the set of types `s` with `s <: t` (including `t`
    /// itself; `null` is never included — nullness is tracked separately in
    /// value states).
    pub(crate) subtype_mask: Vec<BitSet>,
    /// Virtual-dispatch tables: for each type, the concrete method reached by
    /// each selector (`None` entries mark selectors made abstract again).
    pub(crate) dispatch: Vec<HashMap<SelectorId, Option<MethodId>>>,
}

impl Program {
    // ---- basic accessors -------------------------------------------------

    /// The data of type `t`.
    pub fn type_data(&self, t: TypeId) -> &TypeData {
        &self.types[t.index()]
    }

    /// The data of method `m`.
    pub fn method(&self, m: MethodId) -> &MethodData {
        &self.methods[m.index()]
    }

    /// The data of field `f`.
    pub fn field(&self, f: FieldId) -> &FieldData {
        &self.fields[f.index()]
    }

    /// The data of selector `s`.
    pub fn selector(&self, s: SelectorId) -> &SelectorData {
        &self.selectors[s.index()]
    }

    /// Number of declared types, including the `null` pseudo-type.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Number of declared methods.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Number of declared fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Number of selectors.
    pub fn selector_count(&self) -> usize {
        self.selectors.len()
    }

    /// Iterates over all type ids (including [`TypeId::NULL`]).
    pub fn iter_types(&self) -> impl Iterator<Item = TypeId> {
        (0..self.types.len()).map(TypeId::from_index)
    }

    /// Iterates over all method ids.
    pub fn iter_methods(&self) -> impl Iterator<Item = MethodId> {
        (0..self.methods.len()).map(MethodId::from_index)
    }

    /// Iterates over all field ids.
    pub fn iter_fields(&self) -> impl Iterator<Item = FieldId> {
        (0..self.fields.len()).map(FieldId::from_index)
    }

    /// Looks a type up by name.
    pub fn type_by_name(&self, name: &str) -> Option<TypeId> {
        self.type_by_name.get(name).copied()
    }

    /// Looks a method up by `owner` and name (first match in declaration
    /// order; convenient for tests and examples).
    pub fn method_by_name(&self, owner: TypeId, name: &str) -> Option<MethodId> {
        self.types[owner.index()]
            .methods
            .iter()
            .copied()
            .find(|&m| self.methods[m.index()].name == name)
    }

    /// Looks a field up by `owner` and name (declared fields only).
    pub fn field_by_name(&self, owner: TypeId, name: &str) -> Option<FieldId> {
        self.types[owner.index()]
            .fields
            .iter()
            .copied()
            .find(|&f| self.fields[f.index()].name == name)
    }

    /// A human-readable `Owner.name` label for a method.
    pub fn method_label(&self, m: MethodId) -> String {
        let md = self.method(m);
        format!("{}.{}", self.type_data(md.owner).name, md.name)
    }

    // ---- hierarchy queries -----------------------------------------------

    /// Returns `true` if `sub <: sup` (reflexive; considers superclass chains
    /// and transitively implemented interfaces). The `null` pseudo-type is a
    /// subtype of nothing and has no subtypes.
    pub fn is_subtype(&self, sub: TypeId, sup: TypeId) -> bool {
        self.subtype_mask[sup.index()].contains(sub.index())
    }

    /// The set of subtypes of `t` (including `t`; excluding `null`).
    pub fn subtypes(&self, t: TypeId) -> &BitSet {
        &self.subtype_mask[t.index()]
    }

    /// Returns `true` if `t` can be instantiated with `new`.
    pub fn is_instantiable(&self, t: TypeId) -> bool {
        !t.is_null() && self.types[t.index()].kind.is_instantiable()
    }

    /// JVM-style virtual method resolution: the concrete method invoked when
    /// calling `selector` on a receiver of *runtime* type `t`.
    ///
    /// Returns `None` when `t` is `null`, the selector is not understood by
    /// `t`, or resolution reaches an abstract declaration.
    pub fn resolve(&self, t: TypeId, selector: SelectorId) -> Option<MethodId> {
        if t.is_null() {
            return None;
        }
        self.dispatch[t.index()].get(&selector).copied().flatten()
    }

    /// The field named like `field` reached from runtime type `t`, walking
    /// the superclass chain (the paper's `LookUp : T × F ⇀ N`, resolved to
    /// the declaring class so one flow exists per declaration).
    pub fn lookup_field(&self, t: TypeId, field: FieldId) -> Option<FieldId> {
        let owner = self.fields[field.index()].owner;
        if self.is_subtype(t, owner) {
            Some(field)
        } else {
            None
        }
    }

    /// All concrete methods any subtype of `declared` resolves `selector` to
    /// — the dispatch cone used by CHA and by devirtualization reports.
    pub fn dispatch_cone(&self, declared: TypeId, selector: SelectorId) -> Vec<MethodId> {
        let mut out = Vec::new();
        for sub in self.subtypes(declared).iter() {
            let t = TypeId::from_index(sub);
            if let Some(m) = self.resolve(t, selector) {
                if !out.contains(&m) {
                    out.push(m);
                }
            }
        }
        out.sort_unstable();
        out
    }

    // ---- construction helpers (crate-internal) ----------------------------

    /// Builds the subtype masks and dispatch tables. Called by the builder
    /// after all declarations are in place; `types` must be topologically
    /// ordered (supertypes before subtypes), which the builder guarantees.
    pub(crate) fn freeze(&mut self) {
        let n = self.types.len();
        // Direct supertypes of each type.
        let mut supers: Vec<Vec<TypeId>> = vec![Vec::new(); n];
        for (i, td) in self.types.iter().enumerate() {
            if let Some(s) = td.superclass {
                supers[i].push(s);
            }
            supers[i].extend(td.interfaces.iter().copied());
        }
        // subtype_mask[t] = { s | s <: t }. Every non-null type is a subtype
        // of itself; propagate memberships upward. Since supertypes have
        // smaller ids, a single pass over increasing ids suffices when we add
        // each type to the masks of all its (transitive) supertypes via its
        // direct supertypes' already-complete *supertype sets*. We instead
        // compute supertype closures first, then invert.
        let mut supertype_closure: Vec<BitSet> = vec![BitSet::with_capacity(n); n];
        for i in 0..n {
            if TypeId::from_index(i).is_null() {
                continue;
            }
            supertype_closure[i].insert(i);
            let direct = supers[i].clone();
            for s in direct {
                let closure = supertype_closure[s.index()].clone();
                supertype_closure[i].union_with(&closure);
            }
        }
        let mut masks = vec![BitSet::with_capacity(n); n];
        for (i, closure) in supertype_closure.iter().enumerate() {
            for sup in closure.iter() {
                masks[sup].insert(i);
            }
        }
        self.subtype_mask = masks;

        // Dispatch tables: inherit from the superclass, then overlay own
        // declarations (concrete => Some, abstract => None).
        let mut dispatch: Vec<HashMap<SelectorId, Option<MethodId>>> = vec![HashMap::new(); n];
        for i in 0..n {
            if TypeId::from_index(i).is_null() {
                continue;
            }
            if let Some(sup) = self.types[i].superclass {
                dispatch[i] = dispatch[sup.index()].clone();
            }
            for &m in &self.types[i].methods {
                let md = &self.methods[m.index()];
                if md.is_static {
                    continue;
                }
                let entry = if md.is_abstract { None } else { Some(m) };
                dispatch[i].insert(md.selector, entry);
            }
        }
        self.dispatch = dispatch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::{Signature, TypeRef};

    /// Object <- A <- B; interface I implemented by B; A.m concrete,
    /// B overrides m; A.n concrete, B re-abstracts? (covered separately)
    fn sample() -> (Program, TypeId, TypeId, TypeId, TypeId, SelectorId) {
        let mut pb = ProgramBuilder::new();
        let object = pb.add_class("Object");
        let i = pb.add_interface("I", &[]);
        let a = pb.class("A").extends(object).build();
        let b = pb.class("B").extends(a).implements_(i).build();
        let sel = pb.selector("m", 0);
        let ma = pb.method(a, "m").returns(TypeRef::Prim).build();
        pb.set_trivial_body(ma, Some(1));
        let mb = pb.method(b, "m").returns(TypeRef::Prim).build();
        pb.set_trivial_body(mb, Some(2));
        let p = pb.finish().expect("valid program");
        (p, object, i, a, b, sel)
    }

    #[test]
    fn subtyping_reflexive_and_transitive() {
        let (p, object, i, a, b, _) = sample();
        assert!(p.is_subtype(a, a));
        assert!(p.is_subtype(b, a));
        assert!(p.is_subtype(b, object));
        assert!(p.is_subtype(b, i));
        assert!(!p.is_subtype(a, i));
        assert!(!p.is_subtype(a, b));
        assert!(!p.is_subtype(TypeId::NULL, object));
    }

    #[test]
    fn subtypes_sets() {
        let (p, object, _, a, b, _) = sample();
        let subs: Vec<_> = p.subtypes(a).iter().map(TypeId::from_index).collect();
        assert_eq!(subs, vec![a, b]);
        assert_eq!(p.subtypes(object).len(), 3); // Object, A, B
    }

    #[test]
    fn resolve_walks_overrides() {
        let (p, _, _, a, b, sel) = sample();
        let ma = p.method_by_name(a, "m").unwrap();
        let mb = p.method_by_name(b, "m").unwrap();
        assert_eq!(p.resolve(a, sel), Some(ma));
        assert_eq!(p.resolve(b, sel), Some(mb));
        assert_eq!(p.resolve(TypeId::NULL, sel), None);
    }

    #[test]
    fn resolve_inherits_from_superclass() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let b = pb.class("B").extends(a).build();
        let m = pb.method(a, "m").returns(TypeRef::Void).build();
        pb.set_trivial_body(m, None);
        let sel = pb.selector("m", 0);
        let p = pb.finish().unwrap();
        assert_eq!(p.resolve(b, sel), Some(p.method_by_name(a, "m").unwrap()));
    }

    #[test]
    fn abstract_declaration_masks_inherited_concrete() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let b = pb.class("B").extends(a).abstract_().build();
        let c = pb.class("C").extends(b).build();
        let m = pb.method(a, "m").returns(TypeRef::Void).build();
        pb.set_trivial_body(m, None);
        // B re-declares m abstract.
        pb.method(b, "m").returns(TypeRef::Void).abstract_().build();
        let sel = pb.selector("m", 0);
        let p = pb.finish().unwrap();
        assert_eq!(p.resolve(b, sel), None);
        // C inherits the abstract entry, not A's concrete one.
        assert_eq!(p.resolve(c, sel), None);
        assert!(p.resolve(a, sel).is_some());
    }

    #[test]
    fn dispatch_cone_collects_targets() {
        let (p, _, _, a, _, sel) = sample();
        let cone = p.dispatch_cone(a, sel);
        assert_eq!(cone.len(), 2);
    }

    #[test]
    fn lookup_field_requires_subtype() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let b = pb.class("B").extends(a).build();
        let c = pb.add_class("C");
        let f = pb.add_field(a, "x", TypeRef::Prim);
        let p = pb.finish().unwrap();
        assert_eq!(p.lookup_field(a, f), Some(f));
        assert_eq!(p.lookup_field(b, f), Some(f));
        assert_eq!(p.lookup_field(c, f), None);
    }

    #[test]
    fn method_signature_helpers() {
        let mut pb = ProgramBuilder::new();
        let a = pb.add_class("A");
        let m = pb
            .method(a, "f")
            .params(vec![TypeRef::Prim, TypeRef::Object(a)])
            .returns(TypeRef::Prim)
            .build();
        pb.set_trivial_body(m, Some(0));
        let p = pb.finish().unwrap();
        let md = p.method(m);
        assert_eq!(md.sig, Signature::new(vec![TypeRef::Prim, TypeRef::Object(a)], TypeRef::Prim));
        assert_eq!(md.param_count(), 3);
    }
}
