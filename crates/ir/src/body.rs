//! Method bodies: basic blocks in SSA form plus CFG utilities.
//!
//! The block discipline follows the paper's base language (Appendix B.1):
//!
//! * the entry block begins with `start(p0, …, pn)`;
//! * blocks beginning with `merge […] m` are the targets of `jump`
//!   instructions and may form loops;
//! * blocks beginning with `label l` mark the two branches of an `if` and
//!   have exactly one predecessor;
//! * consequently the CFG has no critical edges.

use crate::ids::{BlockId, VarId};
use crate::instr::{BlockEnd, Stmt};

/// A φ instruction at a merge: `def ← φ(args…)`, one argument per incoming
/// jump (in [`BlockBegin::Merge::preds`] order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phi {
    /// The variable defined by the φ.
    pub def: VarId,
    /// One argument per predecessor, positionally aligned with the merge's
    /// predecessor list.
    pub args: Vec<VarId>,
}

/// The header pseudo-instruction of a basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockBegin {
    /// `start(p0, …, pn)`: defines the method parameters. Entry block only.
    Start {
        /// Parameter variables; `params[0]` is the receiver for instance
        /// methods.
        params: Vec<VarId>,
    },
    /// `merge [φs] m`: a control-flow join, target of `jump`s.
    Merge {
        /// φ instructions joining values from the predecessors.
        phis: Vec<Phi>,
        /// Incoming jump blocks, in φ-argument order. Back edges (loops) list
        /// blocks with a larger id than the merge itself.
        preds: Vec<BlockId>,
    },
    /// `label l`: beginning of one branch of an `if`; single predecessor.
    Label,
}

/// A basic block: header, straight-line statements, terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Header pseudo-instruction.
    pub begin: BlockBegin,
    /// Straight-line statements.
    pub stmts: Vec<Stmt>,
    /// Terminator.
    pub end: BlockEnd,
}

/// Debug information for one SSA variable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarData {
    /// A printable name (not necessarily unique; SSA identity is the id).
    pub name: String,
}

/// An SSA method body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Body {
    /// Basic blocks; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
    /// Variable debug data, indexed by [`VarId`].
    pub vars: Vec<VarData>,
}

impl Body {
    /// The formal parameters declared by the entry block's `start`.
    ///
    /// # Panics
    ///
    /// Panics if the entry block does not begin with `start` (validation
    /// rejects such bodies).
    pub fn params(&self) -> &[VarId] {
        match &self.blocks[BlockId::ENTRY.index()].begin {
            BlockBegin::Start { params } => params,
            _ => panic!("entry block must begin with start"),
        }
    }

    /// Returns the block with the given id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Iterates over `(BlockId, &Block)` pairs in id order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// Total number of statements plus block terminators — the "instruction
    /// count" used by the binary-size proxy.
    pub fn instruction_count(&self) -> usize {
        self.blocks.iter().map(|b| b.stmts.len() + 1).sum()
    }

    /// Computes the predecessor lists of all blocks from the terminators.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (id, block) in self.iter_blocks() {
            for succ in block.end.successors() {
                preds[succ.index()].push(id);
            }
        }
        preds
    }

    /// Computes a reverse postorder over the CFG starting from the entry
    /// block. Unreachable blocks are appended at the end in id order so every
    /// block receives a position (the PVPG builder still creates flows for
    /// them; they simply stay disabled).
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        // Iterative DFS to avoid recursion depth limits on deep CFGs.
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::ENTRY, 0)];
        visited[BlockId::ENTRY.index()] = true;
        while let Some((block, child)) = stack.pop() {
            let succs = self.blocks[block.index()].end.successors();
            if child < succs.len() {
                stack.push((block, child + 1));
                let s = succs[child];
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(block);
            }
        }
        postorder.reverse();
        for (i, seen) in visited.iter().enumerate() {
            if !seen {
                postorder.push(BlockId::from_index(i));
            }
        }
        postorder
    }

    /// All variables defined in the body, in definition order: parameters,
    /// then φs and statement defs in block order.
    pub fn definitions(&self) -> Vec<VarId> {
        let mut defs = Vec::new();
        for (_, block) in self.iter_blocks() {
            match &block.begin {
                BlockBegin::Start { params } => defs.extend_from_slice(params),
                BlockBegin::Merge { phis, .. } => defs.extend(phis.iter().map(|p| p.def)),
                BlockBegin::Label => {}
            }
            defs.extend(block.stmts.iter().filter_map(|s| s.def()));
        }
        defs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Cond, Expr};
    use crate::TypeId;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }
    fn b(i: usize) -> BlockId {
        BlockId::from_index(i)
    }

    /// start(p0); if (p0 instanceof T) then b1 else b2;
    /// b1: jump b3; b2: jump b3; b3: merge [x ← φ(p0, p0)]; return x
    fn diamond() -> Body {
        Body {
            blocks: vec![
                Block {
                    begin: BlockBegin::Start { params: vec![v(0)] },
                    stmts: vec![],
                    end: BlockEnd::If {
                        cond: Cond::InstanceOf {
                            var: v(0),
                            ty: TypeId::from_index(1),
                            negated: false,
                        },
                        then_block: b(1),
                        else_block: b(2),
                    },
                },
                Block {
                    begin: BlockBegin::Label,
                    stmts: vec![],
                    end: BlockEnd::Jump(b(3)),
                },
                Block {
                    begin: BlockBegin::Label,
                    stmts: vec![],
                    end: BlockEnd::Jump(b(3)),
                },
                Block {
                    begin: BlockBegin::Merge {
                        phis: vec![Phi {
                            def: v(1),
                            args: vec![v(0), v(0)],
                        }],
                        preds: vec![b(1), b(2)],
                    },
                    stmts: vec![],
                    end: BlockEnd::Return(Some(v(1))),
                },
            ],
            vars: vec![VarData::default(); 2],
        }
    }

    #[test]
    fn params_of_entry() {
        assert_eq!(diamond().params(), &[v(0)]);
    }

    #[test]
    fn predecessors_of_diamond() {
        let preds = diamond().predecessors();
        assert!(preds[0].is_empty());
        assert_eq!(preds[1], vec![b(0)]);
        assert_eq!(preds[2], vec![b(0)]);
        assert_eq!(preds[3], vec![b(1), b(2)]);
    }

    #[test]
    fn rpo_visits_entry_first_and_merge_last() {
        let rpo = diamond().reverse_postorder();
        assert_eq!(rpo[0], b(0));
        assert_eq!(rpo[3], b(3));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn rpo_appends_unreachable_blocks() {
        let mut body = diamond();
        body.blocks.push(Block {
            begin: BlockBegin::Label,
            stmts: vec![],
            end: BlockEnd::Return(None),
        });
        let rpo = body.reverse_postorder();
        assert_eq!(rpo.len(), 5);
        assert_eq!(*rpo.last().unwrap(), b(4));
    }

    #[test]
    fn definitions_include_params_and_phis() {
        let mut body = diamond();
        body.blocks[1].stmts.push(Stmt::Assign {
            def: v(2),
            expr: Expr::Const(1),
        });
        let defs = body.definitions();
        assert_eq!(defs, vec![v(0), v(2), v(1)]);
    }

    #[test]
    fn instruction_count_counts_terminators() {
        assert_eq!(diamond().instruction_count(), 4);
    }
}
