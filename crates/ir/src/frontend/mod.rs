//! The Java-like source frontend: lexer, parser, and SSA-constructing
//! lowering.
//!
//! GraalVM Native Image obtains its analysis IR by parsing Java bytecode;
//! this module is the corresponding substrate in the reproduction. The
//! surface syntax is a deliberately small Java subset sufficient for the
//! paper's code patterns (see `DESIGN.md`):
//!
//! ```text
//! abstract class Display { abstract method imageBegin(): void; }
//! class FrameDisplay extends Display {
//!   method imageBegin(): void { return; }
//! }
//! class Scene {
//!   method render(display: Display): void {
//!     var d = display;
//!     if (d == null) { d = new FrameDisplay(); }
//!     d.imageBegin();
//!   }
//! }
//! ```
//!
//! Use [`compile`] to go from source text to a validated
//! [`crate::Program`].

pub mod ast;
pub mod lexer;
mod lower;
pub mod parser;

pub use lower::LowerError;

use crate::builder::ValidationErrors;
use crate::program::Program;
use std::fmt;

/// Any failure on the source-to-IR path.
#[derive(Debug)]
pub enum FrontendError {
    /// Tokenization failure.
    Lex(lexer::LexError),
    /// Parse failure.
    Parse(parser::ParseError),
    /// Name-resolution / structure failure during lowering.
    Lower(LowerError),
    /// The lowered program failed IR validation (frontend bug or unsupported
    /// construct).
    Validation(ValidationErrors),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Lex(e) => write!(f, "{e}"),
            FrontendError::Parse(e) => write!(f, "{e}"),
            FrontendError::Lower(e) => write!(f, "{e}"),
            FrontendError::Validation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

/// Parses source text into an AST.
///
/// # Errors
///
/// Returns [`FrontendError::Lex`] or [`FrontendError::Parse`].
pub fn parse_source(src: &str) -> Result<ast::AstProgram, FrontendError> {
    let tokens = lexer::tokenize(src).map_err(FrontendError::Lex)?;
    parser::parse(tokens).map_err(FrontendError::Parse)
}

/// Compiles source text all the way to a validated [`Program`].
///
/// # Errors
///
/// Returns the first failure on the lex → parse → lower → validate path.
///
/// # Examples
///
/// ```
/// let program = skipflow_ir::frontend::compile(
///     "class Main {
///        static method main(): int { return 42; }
///      }",
/// )?;
/// let main_class = program.type_by_name("Main").unwrap();
/// assert!(program.method_by_name(main_class, "main").is_some());
/// # Ok::<(), skipflow_ir::frontend::FrontendError>(())
/// ```
pub fn compile(src: &str) -> Result<Program, FrontendError> {
    let ast = parse_source(src)?;
    lower::lower(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BlockBegin;
    use crate::instr::{BlockEnd, Stmt};

    #[test]
    fn compiles_hierarchy_in_any_declaration_order() {
        let p = compile(
            "class Dog extends Animal { method speak(): int { return 1; } }
             class Animal implements Pet { method speak(): int { return 0; } }
             interface Pet { }",
        )
        .unwrap();
        let animal = p.type_by_name("Animal").unwrap();
        let dog = p.type_by_name("Dog").unwrap();
        let pet = p.type_by_name("Pet").unwrap();
        assert!(p.is_subtype(dog, animal));
        assert!(p.is_subtype(dog, pet));
        let sel = p.method(p.method_by_name(animal, "speak").unwrap()).selector;
        assert_eq!(p.resolve(dog, sel), p.method_by_name(dog, "speak"));
    }

    #[test]
    fn ssa_construction_inserts_phis_for_branch_assignments() {
        let p = compile(
            "class Main {
               static method pick(c: int): int {
                 var x = 0;
                 if (c == 0) { x = 1; } else { x = 2; }
                 return x;
               }
             }",
        )
        .unwrap();
        let main = p.type_by_name("Main").unwrap();
        let m = p.method_by_name(main, "pick").unwrap();
        let body = p.method(m).body.as_ref().unwrap();
        let merge = body
            .blocks
            .iter()
            .find_map(|b| match &b.begin {
                BlockBegin::Merge { phis, .. } if !phis.is_empty() => Some(phis),
                _ => None,
            })
            .expect("expected a merge with φs");
        assert_eq!(merge.len(), 1);
        assert_eq!(merge[0].args.len(), 2);
    }

    #[test]
    fn ssa_construction_handles_loops() {
        let p = compile(
            "class Main {
               static method count(n: int): int {
                 var i = 0;
                 while (i < n) { i = any(); }
                 return i;
               }
             }",
        )
        .unwrap();
        let main = p.type_by_name("Main").unwrap();
        let m = p.method_by_name(main, "count").unwrap();
        let body = p.method(m).body.as_ref().unwrap();
        // The loop header must be a merge with a back edge.
        let (header_preds, phis) = body
            .blocks
            .iter()
            .enumerate()
            .find_map(|(i, b)| match &b.begin {
                BlockBegin::Merge { phis, preds } if preds.len() == 2 => {
                    Some((preds.iter().map(|p| p.index() > i).collect::<Vec<_>>(), phis))
                }
                _ => None,
            })
            .expect("expected loop header");
        assert_eq!(header_preds, vec![false, true], "second pred is the back edge");
        assert_eq!(phis.len(), 1);
    }

    #[test]
    fn no_phi_when_branches_agree() {
        let p = compile(
            "class Main {
               static method same(c: int): int {
                 var x = 7;
                 if (c == 0) { Main.noop(); } else { Main.noop(); }
                 return x;
               }
               static method noop(): void { return; }
             }",
        )
        .unwrap();
        let main = p.type_by_name("Main").unwrap();
        let m = p.method_by_name(main, "same").unwrap();
        let body = p.method(m).body.as_ref().unwrap();
        for b in &body.blocks {
            if let BlockBegin::Merge { phis, .. } = &b.begin {
                assert!(phis.is_empty());
            }
        }
    }

    #[test]
    fn truthy_condition_desugars_to_compare_with_zero() {
        let p = compile(
            "class T {
               method isOn(): int { return 1; }
               method use(t: T): void {
                 if (t.isOn()) { return; }
                 return;
               }
             }",
        )
        .unwrap();
        let t = p.type_by_name("T").unwrap();
        let m = p.method_by_name(t, "use").unwrap();
        let body = p.method(m).body.as_ref().unwrap();
        let entry = &body.blocks[0];
        assert!(matches!(
            entry.end,
            BlockEnd::If {
                cond: crate::instr::Cond::Cmp { op: crate::instr::CmpOp::Ne, .. },
                ..
            }
        ));
        // The invoke result feeds the comparison.
        assert!(entry.stmts.iter().any(|s| matches!(s, Stmt::Invoke { .. })));
    }

    #[test]
    fn static_members_resolve_through_the_superclass_chain() {
        let p = compile(
            "class Base { static var flag: int; static method get(): int { return Base.flag; } }
             class Sub extends Base {
               static method read(): int { return Sub.get(); }
             }",
        )
        .unwrap();
        let sub = p.type_by_name("Sub").unwrap();
        assert!(p.method_by_name(sub, "read").is_some());
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = compile("class A { static method m(): int { return nope; } }").unwrap_err();
        assert!(matches!(e, FrontendError::Lower(_)), "{e}");
    }

    #[test]
    fn rejects_unreachable_code() {
        let e = compile(
            "class A { static method m(): void { return; var x = 1; } }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("unreachable"), "{e}");
    }

    #[test]
    fn rejects_falling_off_non_void_method() {
        let e = compile("class A { static method m(): int { var x = 1; } }").unwrap_err();
        assert!(e.to_string().contains("fall off"), "{e}");
    }

    #[test]
    fn rejects_inheritance_cycle() {
        let e = compile("class A extends B { } class B extends A { }").unwrap_err();
        assert!(e.to_string().contains("cycle"), "{e}");
    }

    #[test]
    fn rejects_ambiguous_instance_field() {
        let e = compile(
            "class A { var f: int; method m(): int { return this.f; } }
             class B { var f: int; }",
        )
        .unwrap_err();
        assert!(e.to_string().contains("ambiguous"), "{e}");
    }

    #[test]
    fn void_methods_get_implicit_return() {
        let p = compile("class A { static method m(): void { var x = 1; } }").unwrap();
        let a = p.type_by_name("A").unwrap();
        let m = p.method_by_name(a, "m").unwrap();
        let body = p.method(m).body.as_ref().unwrap();
        assert!(matches!(body.blocks.last().unwrap().end, BlockEnd::Return(None)));
    }

    #[test]
    fn compiles_the_fig2_jdk_example() {
        // The paper's Figure 2, transcribed into the surface syntax.
        let p = compile(
            "class Object { }
             abstract class BaseVirtualThread extends Thread { }
             class Thread extends Object {
               method isVirtual(): int {
                 if (this instanceof BaseVirtualThread) { return 1; }
                 return 0;
               }
             }
             class VirtualThread extends BaseVirtualThread { }
             class ThreadSet extends Object { method remove(t: Thread): void { return; } }
             class SharedThreadContainer extends Object {
               var virtualThreads: ThreadSet;
               method onExit(thread: Thread): void {
                 if (thread.isVirtual()) {
                   var s = this.virtualThreads;
                   s.remove(thread);
                 }
               }
             }",
        );
        match p {
            Ok(p) => {
                let stc = p.type_by_name("SharedThreadContainer").unwrap();
                assert!(p.method_by_name(stc, "onExit").is_some());
            }
            Err(e) => panic!("{e}"),
        }
    }
}
