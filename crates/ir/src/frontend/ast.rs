//! Abstract syntax tree of the Java-like surface syntax.

use crate::instr::CmpOp;

/// A parsed program: a list of class/interface declarations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AstProgram {
    /// Declarations in source order.
    pub classes: Vec<ClassDecl>,
}

/// The kind of a declared type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AstTypeKind {
    /// `class`
    Class,
    /// `abstract class`
    AbstractClass,
    /// `interface`
    Interface,
}

/// A class or interface declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassDecl {
    /// Type name.
    pub name: String,
    /// Class / abstract class / interface.
    pub kind: AstTypeKind,
    /// `extends` clause (superclass for classes, ignored-for-now list head
    /// for interfaces is represented via `implements`).
    pub extends: Option<String>,
    /// `implements` clause (interfaces).
    pub implements: Vec<String>,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Method declarations.
    pub methods: Vec<MethodDecl>,
}

/// A declared type annotation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstType {
    /// `void` (return types only).
    Void,
    /// `int`.
    Int,
    /// A class or interface name.
    Named(String),
}

/// A field declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: AstType,
    /// `static` flag.
    pub is_static: bool,
}

/// A method declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodDecl {
    /// Method name.
    pub name: String,
    /// `static` flag.
    pub is_static: bool,
    /// `abstract` flag.
    pub is_abstract: bool,
    /// Parameters (name, declared type), receiver excluded.
    pub params: Vec<(String, AstType)>,
    /// Declared return type.
    pub ret: AstType,
    /// Body statements; `None` for abstract methods.
    pub body: Option<Vec<AstStmt>>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstStmt {
    /// `var name = expr;`
    VarDecl {
        /// Declared local name.
        name: String,
        /// Initializer.
        init: AstExpr,
    },
    /// `name = expr;`
    Assign {
        /// Assigned local name.
        name: String,
        /// New value.
        value: AstExpr,
    },
    /// `recv.field = expr;` (instance) or `Class.field = expr;` (static).
    FieldStore {
        /// Receiver expression (a class name resolves to a static store).
        recv: AstExpr,
        /// Field name.
        field: String,
        /// Stored value.
        value: AstExpr,
    },
    /// An expression evaluated for effect (a call).
    Expr(AstExpr),
    /// `if (cond) { … } [else { … }]`
    If {
        /// Branch condition.
        cond: AstCond,
        /// Then branch.
        then_body: Vec<AstStmt>,
        /// Else branch (possibly empty).
        else_body: Vec<AstStmt>,
    },
    /// `while (cond) { … }`
    While {
        /// Loop condition.
        cond: AstCond,
        /// Loop body.
        body: Vec<AstStmt>,
    },
    /// `return [expr];`
    Return(Option<AstExpr>),
    /// `throw expr;`
    Throw(AstExpr),
}

/// An expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstExpr {
    /// Integer literal.
    Int(i64),
    /// `null`.
    Null,
    /// `any()` — opaque arithmetic producing lattice `Any`.
    Any,
    /// `this`.
    This,
    /// `new Class()`.
    New(String),
    /// A name: local variable, parameter, or (as a receiver) a class name.
    Var(String),
    /// `recv.field` — instance load, or static load when `recv` names a class.
    Load {
        /// Receiver.
        recv: Box<AstExpr>,
        /// Field name.
        field: String,
    },
    /// `recv.m(args)` — virtual call, or static call when `recv` names a class.
    Call {
        /// Receiver.
        recv: Box<AstExpr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<AstExpr>,
    },
    /// `catch (Class)` — exception-handler entry.
    Catch(String),
}

/// A branch condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AstCond {
    /// `lhs op rhs`
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        lhs: AstExpr,
        /// Right operand.
        rhs: AstExpr,
    },
    /// `expr instanceof Class` (possibly negated).
    InstanceOf {
        /// Tested expression.
        expr: AstExpr,
        /// Tested class name.
        class: String,
        /// Negation flag.
        negated: bool,
    },
    /// A bare (or `!`-prefixed) expression used as a condition; desugars to
    /// `expr != 0` (or `expr == 0`), matching the paper's boolean encoding.
    Truthy {
        /// Tested expression.
        expr: AstExpr,
        /// Negation flag (`!expr`).
        negated: bool,
    },
    /// Short-circuit conjunction `a && b`; lowering duplicates the else
    /// branch (the base language has no boolean values).
    And(Box<AstCond>, Box<AstCond>),
    /// Short-circuit disjunction `a || b`; lowering duplicates the then
    /// branch.
    Or(Box<AstCond>, Box<AstCond>),
}
