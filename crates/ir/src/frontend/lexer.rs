//! Tokenizer for the Java-like surface syntax.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal (optionally negative).
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(n) => write!(f, "{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, "="),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Bang => write!(f, "!"),
            Token::AndAnd => write!(f, "&&"),
            Token::OrOr => write!(f, "||"),
        }
    }
}

/// A token together with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A tokenization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Description of the failure.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`. Line comments start with `//`.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            tokens.push(Spanned { token: $tok, line, col });
            i += $len;
            col += $len as u32;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => push!(Token::LParen, 1),
            ')' => push!(Token::RParen, 1),
            '{' => push!(Token::LBrace, 1),
            '}' => push!(Token::RBrace, 1),
            ',' => push!(Token::Comma, 1),
            ';' => push!(Token::Semi, 1),
            ':' => push!(Token::Colon, 1),
            '.' => push!(Token::Dot, 1),
            '=' if bytes.get(i + 1) == Some(&b'=') => push!(Token::EqEq, 2),
            '=' => push!(Token::Assign, 1),
            '&' if bytes.get(i + 1) == Some(&b'&') => push!(Token::AndAnd, 2),
            '|' if bytes.get(i + 1) == Some(&b'|') => push!(Token::OrOr, 2),
            '!' if bytes.get(i + 1) == Some(&b'=') => push!(Token::NotEq, 2),
            '!' => push!(Token::Bang, 1),
            '<' if bytes.get(i + 1) == Some(&b'=') => push!(Token::Le, 2),
            '<' => push!(Token::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&b'=') => push!(Token::Ge, 2),
            '>' => push!(Token::Gt, 1),
            '-' | '0'..='9' => {
                let start = i;
                let start_col = col;
                if c == '-' {
                    i += 1;
                    col += 1;
                    if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
                        return Err(LexError {
                            message: "expected digits after '-'".to_string(),
                            line,
                            col: start_col,
                        });
                    }
                }
                while matches!(bytes.get(i), Some(b'0'..=b'9')) {
                    i += 1;
                    col += 1;
                }
                let text = &src[start..i];
                let value: i64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal {text:?} out of range"),
                    line,
                    col: start_col,
                })?;
                tokens.push(Spanned {
                    token: Token::Int(value),
                    line,
                    col: start_col,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let start_col = col;
                while matches!(bytes.get(i), Some(b) if (*b as char).is_ascii_alphanumeric() || *b == b'_')
                {
                    i += 1;
                    col += 1;
                }
                tokens.push(Spanned {
                    token: Token::Ident(src[start..i].to_string()),
                    line,
                    col: start_col,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                    col,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_punctuation_and_operators() {
        assert_eq!(
            toks("(){};,.: = == != < <= > >= !"),
            vec![
                Token::LParen,
                Token::RParen,
                Token::LBrace,
                Token::RBrace,
                Token::Semi,
                Token::Comma,
                Token::Dot,
                Token::Colon,
                Token::Assign,
                Token::EqEq,
                Token::NotEq,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Bang,
            ]
        );
    }

    #[test]
    fn lexes_idents_and_ints() {
        assert_eq!(
            toks("foo _bar x1 42 -7"),
            vec![
                Token::Ident("foo".into()),
                Token::Ident("_bar".into()),
                Token::Ident("x1".into()),
                Token::Int(42),
                Token::Int(-7),
            ]
        );
    }

    #[test]
    fn skips_comments_and_tracks_lines() {
        let spanned = tokenize("a // comment\n  b").unwrap();
        assert_eq!(spanned.len(), 2);
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[1].col, 3);
    }

    #[test]
    fn rejects_unknown_characters() {
        let err = tokenize("a @ b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.col, 3);
    }

    #[test]
    fn rejects_bare_minus() {
        assert!(tokenize("x = - ;").is_err());
    }
}
